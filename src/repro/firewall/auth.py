"""Signing and trust: the firewall's "first level authentication".

The paper's firewall authenticates arriving agents *"based on parameters
such as the presence of a signed agent core or the presence of an
authenticated and trusted sender"*, and ``vm_bin`` *"executes binaries
directly on top of the operating system, provided the binary is signed by
a trusted principal"*.

We substitute HMAC-SHA256 for public-key signatures (stdlib-only; the
trust *decision* — who signed it, and do we trust them — is identical).
A :class:`KeyChain` holds the secrets principals sign with; a
:class:`TrustStore` is each site's local policy: which principals' keys
it knows, and which of those it trusts to run native code.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.errors import TrustError
from repro.core.identity import validate_principal


def _mac(secret: bytes, data: bytes) -> str:
    return hmac.new(secret, data, hashlib.sha256).hexdigest()


@dataclass(frozen=True)
class Signature:
    """A detached signature: who claims to have signed, and the MAC."""

    principal: str
    mac: str

    def to_text(self) -> str:
        return f"{self.principal}:{self.mac}"

    @classmethod
    def from_text(cls, text: str) -> "Signature":
        principal, sep, mac = text.rpartition(":")
        if not sep or not principal or not mac:
            raise TrustError(f"malformed signature {text!r}")
        return cls(validate_principal(principal), mac)


class KeyChain:
    """Principal → signing secret (the private side)."""

    def __init__(self):
        self._secrets: Dict[str, bytes] = {}

    def create_key(self, principal: str, secret: Optional[bytes] = None
                   ) -> bytes:
        principal = validate_principal(principal)
        if secret is None:
            secret = hashlib.sha256(f"key:{principal}".encode()).digest()
        self._secrets[principal] = secret
        return secret

    def secret_for(self, principal: str) -> bytes:
        try:
            return self._secrets[principal]
        except KeyError:
            raise TrustError(f"no signing key for {principal!r}") from None

    def sign(self, principal: str, data: bytes) -> Signature:
        return Signature(principal, _mac(self.secret_for(principal), data))


class TrustStore:
    """One site's verification keys and trust policy (the public side).

    ``known`` principals can be *verified*; ``trusted`` principals are
    additionally allowed to run unrestricted code (vm_bin).
    """

    def __init__(self):
        self._verify_secrets: Dict[str, bytes] = {}
        self._trusted: Set[str] = set()

    def add_principal(self, principal: str, secret: bytes,
                      trusted: bool = False) -> None:
        principal = validate_principal(principal)
        self._verify_secrets[principal] = secret
        if trusted:
            self._trusted.add(principal)

    def knows(self, principal: str) -> bool:
        return principal in self._verify_secrets

    def is_trusted(self, principal: str) -> bool:
        return principal in self._trusted

    def trust(self, principal: str) -> None:
        if principal not in self._verify_secrets:
            raise TrustError(
                f"cannot trust unknown principal {principal!r}")
        self._trusted.add(principal)

    def revoke(self, principal: str) -> None:
        self._trusted.discard(principal)

    def verify(self, signature: Signature, data: bytes) -> str:
        """Check a signature; returns the verified principal name.

        Raises :class:`TrustError` when the principal is unknown or the
        MAC does not match.
        """
        secret = self._verify_secrets.get(signature.principal)
        if secret is None:
            raise TrustError(
                f"signature by unknown principal {signature.principal!r}")
        expected = _mac(secret, data)
        if not hmac.compare_digest(expected, signature.mac):
            raise TrustError(
                f"bad signature claimed by {signature.principal!r}")
        return signature.principal

    def verify_trusted(self, signature: Signature, data: bytes) -> str:
        """Verify and additionally require the signer to be trusted."""
        principal = self.verify(signature, data)
        if not self.is_trusted(principal):
            raise TrustError(
                f"principal {principal!r} is verified but not trusted "
                "to run native code")
        return principal


def request_signing_bytes(briefcase) -> bytes:
    """The byte string a *request* signature covers: every folder except
    the signature itself, names and contents, in sorted order.

    Code-carrying briefcases sign their CODE (see
    :func:`repro.firewall.firewall.code_signing_bytes`); codeless
    control-plane requests — admin ops like ``kill``/``tombstone``, sent
    cross-host by rear guards and migration origins — have no CODE to
    cover, so the signature binds the whole request instead.  Folder
    names are length-prefixed so ``("AB", "C")`` and ``("A", "BC")``
    cannot collide.
    """
    from repro.core import wellknown
    parts = []
    for name in sorted(briefcase.names()):
        if name == wellknown.SIGNATURE:
            continue
        encoded = name.encode()
        parts.append(len(encoded).to_bytes(4, "big") + encoded)
        for element in briefcase.get(name):
            parts.append(len(element.data).to_bytes(4, "big") +
                         element.data)
    return b"".join(parts)


def sign_request(briefcase, keychain: KeyChain, principal: str) -> None:
    """Stamp a codeless request briefcase with a sender signature.

    Replaces any existing request signature (retries mutate meet tokens,
    so each attempt must be re-signed).  Code-carrying briefcases are
    left alone — their signature was made by the payload packager and
    covers the code.
    """
    from repro.core import wellknown
    if briefcase.has(wellknown.CODE) or briefcase.has(wellknown.CODE_KIND):
        return
    briefcase.drop(wellknown.SIGNATURE)
    signature = keychain.sign(principal, request_signing_bytes(briefcase))
    briefcase.put(wellknown.SIGNATURE, signature.to_text())


def build_shared_trust(principals: Dict[str, bool]) -> "tuple[KeyChain, TrustStore]":
    """Convenience for tests/experiments: one keychain + a trust store
    knowing every principal; the bool marks trusted ones."""
    keychain = KeyChain()
    store = TrustStore()
    for principal, trusted in principals.items():
        secret = keychain.create_key(principal)
        store.add_principal(principal, secret, trusted=trusted)
    return keychain, store
