"""Firewall admin operations, addressed to the firewall itself.

Paper section 3.2: *"agents with sufficient privileges need support for
operations such as listing running agents, determining their run time,
and killing or stopping agents.  All this is achieved by addressing
messages directly to the firewall."*

The admin endpoint is a service agent registered under the name
``firewall``; every operation is gated by ``policy.can_admin``.
"""

from __future__ import annotations

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError
from repro.core import wellknown
from repro.firewall.message import Message
from repro.services.base import ServiceAgent


class FirewallAdmin(ServiceAgent):
    """list / stat / kill / stop / resume / tombstone, with access
    control."""

    name = "firewall"

    def authorize(self, message: Message, op: str) -> bool:
        if op == "tombstone" and self._may_tombstone(message):
            return True
        return self.firewall.policy.can_admin(message.sender)

    def _may_tombstone(self, message: Message) -> bool:
        """Landing ids are ``host:instance:n`` — minted by the origin
        host, whose name in the id acts as a capability: the
        authenticated origin may abort its own migration without full
        admin rights (nobody else can have a legitimate reason to)."""
        if not message.sender.authenticated:
            return False
        args = message.briefcase.get_json(wellknown.ARGS, {})
        landing_id = args.get("landing_id") if isinstance(args, dict) \
            else None
        return isinstance(landing_id, str) and \
            landing_id.startswith(f"{message.sender.host}:")

    def op_list(self, message: Message):
        yield self.kernel.timeout(0)
        agents = [{
            "name": reg.name,
            "instance": reg.instance,
            "principal": reg.principal,
            "vm": reg.vm_name,
            "runtime": self.kernel.now - reg.start_time,
            "paused": reg.paused,
        } for reg in self.firewall.admin_list()]
        response = Briefcase()
        response.put(wellknown.RESULTS, {"agents": agents})
        return response

    def _instance_arg(self, message: Message) -> str:
        args = message.briefcase.get_json(wellknown.ARGS, {})
        instance = args.get("instance") if isinstance(args, dict) else None
        if not instance:
            raise ServiceError("admin op needs ARGS {'instance': ...}")
        return instance

    def op_stat(self, message: Message):
        args = message.briefcase.get_json(wellknown.ARGS, {})
        instance = args.get("instance") if isinstance(args, dict) else None
        if not instance:
            # Firewall-level stat: delivery counters, queue depth, and
            # the dead-letter records (expired / crashed messages).
            yield self.kernel.timeout(0)
            response = Briefcase()
            response.put(wellknown.RESULTS, self.firewall.stats_dict())
            return response
        yield self.kernel.timeout(0)
        registration = self.firewall.registry.by_instance(instance)
        if registration is None:
            raise ServiceError(f"no agent with instance {instance!r}")
        process = registration.process
        response = Briefcase()
        response.put(wellknown.RESULTS, {
            "name": registration.name,
            "instance": registration.instance,
            "principal": registration.principal,
            "vm": registration.vm_name,
            "runtime": self.kernel.now - registration.start_time,
            "paused": registration.paused,
            "alive": bool(getattr(process, "is_alive", False)),
            # Per-agent counters from the system registry: messages
            # in/out, bytes moved, hops, charged seconds.
            "telemetry": self.kernel.telemetry.agent_stats(
                registration.name),
        })
        return response

    def op_kill(self, message: Message):
        instance = self._instance_arg(message)
        yield self.kernel.timeout(0)
        killed = self.firewall.admin_kill(instance)
        response = Briefcase()
        response.put(wellknown.RESULTS, {"killed": killed})
        return response

    def op_tombstone(self, message: Message):
        """Abort a migration landing (exactly-once safety valve).

        The origin of a ``go``/``spawn`` whose ack was lost cannot tell
        whether the agent landed; tombstoning the landing id resolves
        the ambiguity — a landed instance is killed, a still-in-flight
        transport will be refused on arrival.
        """
        args = message.briefcase.get_json(wellknown.ARGS, {})
        landing_id = args.get("landing_id") if isinstance(args, dict) \
            else None
        if not landing_id:
            raise ServiceError("tombstone needs ARGS {'landing_id': ...}")
        reason = args.get("reason", "aborted") if isinstance(args, dict) \
            else "aborted"
        yield self.kernel.timeout(0)
        result = self.firewall.tombstone_landing(landing_id, reason)
        response = Briefcase()
        response.put(wellknown.RESULTS, result)
        return response

    def op_stop(self, message: Message):
        instance = self._instance_arg(message)
        yield self.kernel.timeout(0)
        stopped = self.firewall.admin_pause(instance)
        response = Briefcase()
        response.put(wellknown.RESULTS, {"stopped": stopped})
        return response

    def op_resume(self, message: Message):
        instance = self._instance_arg(message)
        yield self.kernel.timeout(0)
        resumed = self.firewall.admin_resume(instance)
        response = Briefcase()
        response.put(wellknown.RESULTS, {"resumed": resumed})
        return response
