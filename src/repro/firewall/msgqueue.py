"""Pending-message queue: parking for messages whose receiver is absent.

Paper section 3.2: *"Messages passing through the firewall are queued
with a timeout value if the receiving agent is not ready to receive, or
has not yet arrived at the site."*  The second clause is what makes
itinerant agents addressable: a message can be sent *ahead* of the agent
and will be waiting when it lands.

Each queued message carries its own expiry; when an agent registers, the
firewall offers it every queued message and delivers the matching ones.

Messages that leave the queue without being delivered do not vanish:
they become :class:`DeadLetter` records (reason ``expired`` or
``host-crash``), retrievable through the firewall-admin ``stat``
operation and eligible for retransmission when the host restarts (see
:meth:`repro.firewall.firewall.Firewall.retransmit_dead_letters`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.uri import AgentUri
from repro.firewall.message import Message
from repro.sim.eventloop import Kernel

#: Retained dead-letter records per queue (oldest dropped beyond this).
DEAD_LETTER_LIMIT = 1000


@dataclass
class _Pending:
    message: Message
    enqueued_at: float
    expires_at: float
    expired: bool = False
    span: object = None
    #: Times this message has already been retransmitted after dying.
    retransmits: int = 0


@dataclass
class DeadLetter:
    """A parked message that left the queue undelivered."""

    message: Message
    enqueued_at: float
    died_at: float
    reason: str
    retransmits: int = 0

    def to_dict(self) -> dict:
        return {
            "target": str(self.message.target),
            "sender": self.message.sender.principal,
            "enqueued_at": self.enqueued_at,
            "died_at": self.died_at,
            "reason": self.reason,
            "retransmits": self.retransmits,
        }


class PendingQueue:
    """Messages waiting for a matching registration, with per-message TTL.

    Each parked message opens a ``fw.queue_wait`` span on the owning
    firewall's track (``host`` label), closed with the outcome —
    delivered, expired, or crashed — so queue residency is visible in
    traces.
    """

    def __init__(self, kernel: Kernel,
                 on_expire: Optional[Callable[[Message], None]] = None,
                 host: str = ""):
        self.kernel = kernel
        self.on_expire = on_expire
        self.host = host
        self._pending: List[_Pending] = []
        self.expired_count = 0
        self.dead_letters: List[DeadLetter] = []

    def __len__(self) -> int:
        return len(self._pending)

    def park(self, message: Message, retransmits: int = 0) -> None:
        """Queue a message until a receiver appears or the TTL runs out."""
        entry = _Pending(
            message=message,
            enqueued_at=self.kernel.now,
            expires_at=self.kernel.now + message.queue_timeout,
            retransmits=retransmits)
        entry.span = self.kernel.telemetry.tracer.begin(
            "fw.queue_wait", category="fw", track=f"fw:{self.host}",
            target=str(message.target))
        self._pending.append(entry)
        self.kernel.spawn(self._expiry_watch(entry),
                          name=f"queue-ttl:{message.target}")

    def _observe_wait(self, entry: _Pending, outcome: str) -> None:
        telemetry = self.kernel.telemetry
        if entry.span is not None:
            entry.span.end(outcome=outcome)
        if telemetry.enabled:
            telemetry.metrics.observe(
                "fw.queue_wait_seconds",
                self.kernel.now - entry.enqueued_at,
                host=self.host, outcome=outcome)

    def _dead_letter(self, entry: _Pending, reason: str) -> DeadLetter:
        record = DeadLetter(message=entry.message,
                            enqueued_at=entry.enqueued_at,
                            died_at=self.kernel.now, reason=reason,
                            retransmits=entry.retransmits)
        self.dead_letters.append(record)
        if len(self.dead_letters) > DEAD_LETTER_LIMIT:
            del self.dead_letters[0]
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("fw.dead_letters", host=self.host,
                                  reason=reason)
        return record

    def _expiry_watch(self, entry: _Pending):
        yield self.kernel.timeout(entry.expires_at - self.kernel.now)
        if entry in self._pending:
            self._pending.remove(entry)
            entry.expired = True
            self.expired_count += 1
            self._observe_wait(entry, "expired")
            self._dead_letter(entry, "expired")
            if self.on_expire is not None:
                self.on_expire(entry.message)

    def claim(self, accepts: Callable[[AgentUri], bool]) -> List[Message]:
        """Remove and return all queued messages whose target the new
        registration ``accepts`` (oldest first)."""
        claimed, remaining = [], []
        for entry in self._pending:
            if accepts(entry.message.target):
                claimed.append(entry.message)
                self._observe_wait(entry, "delivered")
            else:
                remaining.append(entry)
        self._pending = remaining
        return claimed

    def crash_flush(self) -> List[DeadLetter]:
        """Host crash: every parked message becomes a dead letter."""
        crashed, self._pending = self._pending, []
        records = []
        for entry in crashed:
            self._observe_wait(entry, "crashed")
            records.append(self._dead_letter(entry, "host-crash"))
        return records

    def take_retransmittable(self,
                             max_retransmits: int = 2) -> List[DeadLetter]:
        """Remove and return dead letters still eligible for another try."""
        eligible, remaining = [], []
        for record in self.dead_letters:
            if record.retransmits < max_retransmits:
                eligible.append(record)
            else:
                remaining.append(record)
        self.dead_letters = remaining
        return eligible

    def dead_letter_records(self) -> List[dict]:
        return [record.to_dict() for record in self.dead_letters]

    def peek_targets(self) -> List[AgentUri]:
        return [entry.message.target for entry in self._pending]
