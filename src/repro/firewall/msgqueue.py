"""Pending-message queue: parking for messages whose receiver is absent.

Paper section 3.2: *"Messages passing through the firewall are queued
with a timeout value if the receiving agent is not ready to receive, or
has not yet arrived at the site."*  The second clause is what makes
itinerant agents addressable: a message can be sent *ahead* of the agent
and will be waiting when it lands.

Each queued message carries its own expiry; when an agent registers, the
firewall offers it every queued message and delivers the matching ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.uri import AgentUri
from repro.firewall.message import Message
from repro.sim.eventloop import Kernel


@dataclass
class _Pending:
    message: Message
    enqueued_at: float
    expires_at: float
    expired: bool = False
    span: object = None


class PendingQueue:
    """Messages waiting for a matching registration, with per-message TTL.

    Each parked message opens a ``fw.queue_wait`` span on the owning
    firewall's track (``host`` label), closed with the outcome —
    delivered or expired — so queue residency is visible in traces.
    """

    def __init__(self, kernel: Kernel,
                 on_expire: Optional[Callable[[Message], None]] = None,
                 host: str = ""):
        self.kernel = kernel
        self.on_expire = on_expire
        self.host = host
        self._pending: List[_Pending] = []
        self.expired_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    def park(self, message: Message) -> None:
        """Queue a message until a receiver appears or the TTL runs out."""
        entry = _Pending(
            message=message,
            enqueued_at=self.kernel.now,
            expires_at=self.kernel.now + message.queue_timeout)
        entry.span = self.kernel.telemetry.tracer.begin(
            "fw.queue_wait", category="fw", track=f"fw:{self.host}",
            target=str(message.target))
        self._pending.append(entry)
        self.kernel.spawn(self._expiry_watch(entry),
                          name=f"queue-ttl:{message.target}")

    def _observe_wait(self, entry: _Pending, outcome: str) -> None:
        telemetry = self.kernel.telemetry
        if entry.span is not None:
            entry.span.end(outcome=outcome)
        if telemetry.enabled:
            telemetry.metrics.observe(
                "fw.queue_wait_seconds",
                self.kernel.now - entry.enqueued_at,
                host=self.host, outcome=outcome)

    def _expiry_watch(self, entry: _Pending):
        yield self.kernel.timeout(entry.expires_at - self.kernel.now)
        if entry in self._pending:
            self._pending.remove(entry)
            entry.expired = True
            self.expired_count += 1
            self._observe_wait(entry, "expired")
            if self.on_expire is not None:
                self.on_expire(entry.message)

    def claim(self, accepts: Callable[[AgentUri], bool]) -> List[Message]:
        """Remove and return all queued messages whose target the new
        registration ``accepts`` (oldest first)."""
        claimed, remaining = [], []
        for entry in self._pending:
            if accepts(entry.message.target):
                claimed.append(entry.message)
                self._observe_wait(entry, "delivered")
            else:
                remaining.append(entry)
        self._pending = remaining
        return claimed

    def peek_targets(self) -> List[AgentUri]:
        return [entry.message.target for entry in self._pending]
