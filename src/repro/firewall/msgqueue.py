"""Pending-message queue: parking for messages whose receiver is absent.

Paper section 3.2: *"Messages passing through the firewall are queued
with a timeout value if the receiving agent is not ready to receive, or
has not yet arrived at the site."*  The second clause is what makes
itinerant agents addressable: a message can be sent *ahead* of the agent
and will be waiting when it lands.

Each queued message carries its own expiry; when an agent registers, the
firewall offers it every queued message and delivers the matching ones.

The queue is **bounded and backpressured**: configurable capacity in
both message count and encoded bytes (:class:`~repro.core.limits.
QueueLimits`), with a pluggable overflow policy —

- ``reject`` (default): new arrivals beyond capacity raise the
  *transient* :class:`~repro.core.errors.QueueFullError`, which the
  sender's :class:`~repro.core.retry.RetryPolicy` absorbs with backoff;
- ``drop-oldest``: the oldest parked messages are evicted (becoming
  ``evicted`` dead letters) to make room;
- ``shed-priority``: lower-priority parked messages are shed for a
  higher-priority arrival; equal-or-higher parked traffic rejects the
  newcomer.

Occupancy is exported as ``fw.queue_depth``/``fw.queue_bytes`` gauges
with ``fw.queue_peak_*`` high watermarks, and the accounting identity
``offered == accepted + rejected`` / ``accepted == claimed + expired +
crashed + evicted + len(queue)`` holds at every instant (property
tested).

Messages that leave the queue without being delivered do not vanish:
they become :class:`DeadLetter` records (reason ``expired``,
``host-crash``, or ``evicted``), retrievable through the firewall-admin
``stat`` operation and eligible for retransmission when the host
restarts (see :meth:`repro.firewall.firewall.Firewall.
retransmit_dead_letters`).  The dead-letter ledger itself is capped
(configurable ``dead_letter_limit``); trimming is *visible* — each
trimmed record increments ``fw.dead_letter_evictions`` and logs the
evicted message's sender and target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.errors import QueueFullError
from repro.core.limits import QueueLimits
from repro.core.uri import AgentUri
from repro.firewall.governor import (
    DEFAULT_DEAD_LETTER_LIMIT,
    OVERFLOW_DROP_OLDEST,
    OVERFLOW_POLICIES,
    OVERFLOW_REJECT,
    OVERFLOW_SHED_PRIORITY,
)
from repro.firewall.message import Message
from repro.obs.propagation import link_args
from repro.sim.eventloop import Kernel

#: Retained dead-letter records per queue (kept as the historical name;
#: the limit is per-queue configurable now).
DEAD_LETTER_LIMIT = DEFAULT_DEAD_LETTER_LIMIT


@dataclass
class _Pending:
    message: Message
    enqueued_at: float
    expires_at: float
    wire_bytes: int = 0
    expired: bool = False
    span: object = None
    #: Times this message has already been retransmitted after dying.
    retransmits: int = 0
    #: Per-queue monotonic park id; the write-ahead journal keys park /
    #: claim / dead-letter records by it.  0 when unjournaled.
    park_id: int = 0


@dataclass
class DeadLetter:
    """A parked message that left the queue undelivered."""

    message: Message
    enqueued_at: float
    died_at: float
    reason: str
    retransmits: int = 0
    park_id: int = 0

    def to_dict(self) -> dict:
        return {
            "target": str(self.message.target),
            "sender": self.message.sender.principal,
            "enqueued_at": self.enqueued_at,
            "died_at": self.died_at,
            "reason": self.reason,
            "retransmits": self.retransmits,
        }


class PendingQueue:
    """Messages waiting for a matching registration, with per-message TTL.

    Each parked message opens a ``fw.queue_wait`` span on the owning
    firewall's track (``host`` label), closed with the outcome —
    delivered, expired, evicted, or crashed — so queue residency is
    visible in traces.
    """

    def __init__(self, kernel: Kernel,
                 on_expire: Optional[Callable[[Message], None]] = None,
                 host: str = "",
                 limits: Optional[QueueLimits] = None,
                 overflow: str = OVERFLOW_REJECT,
                 dead_letter_limit: int = DEAD_LETTER_LIMIT,
                 log: Optional[Callable[[str], None]] = None):
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {overflow!r}")
        if dead_letter_limit < 1:
            raise ValueError("dead_letter_limit must be positive")
        self.kernel = kernel
        self.on_expire = on_expire
        self.host = host
        self.limits = limits or QueueLimits()
        self.overflow = overflow
        self.dead_letter_limit = dead_letter_limit
        self.log = log
        self._pending: List[_Pending] = []
        self._bytes = 0
        #: Optional write-ahead journal of a durable host (installed by
        #: ``repro.durability``; duck-typed so this module never
        #: imports that package).
        self.journal = None
        #: Next park id (monotonic across restarts — replay re-anchors
        #: it from the journal).
        self.park_seq = 1
        self.expired_count = 0
        self.dead_letters: List[DeadLetter] = []
        self.dead_letter_evictions = 0
        # Accounting (the conservation invariant the property tests pin):
        # offered == accepted + rejected, and
        # accepted == claimed + expired + crashed + evicted + len(self).
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.evicted = 0
        self.claimed = 0
        self.crashed = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def bytes(self) -> int:
        """Encoded bytes currently parked."""
        return self._bytes

    def bytes_for_principal(self, principal: str) -> int:
        """Parked bytes owned by one sender principal (quota input)."""
        return sum(entry.wire_bytes for entry in self._pending
                   if entry.message.sender.principal == principal)

    # -- telemetry helpers -----------------------------------------------------------

    def _note(self, text: str) -> None:
        if self.log is not None:
            self.log(text)

    def _update_watermarks(self) -> None:
        telemetry = self.kernel.telemetry
        if not telemetry.enabled:
            return
        metrics = telemetry.metrics
        depth = len(self._pending)
        metrics.set_gauge("fw.queue_depth", depth, host=self.host)
        metrics.set_gauge("fw.queue_bytes", self._bytes, host=self.host)
        metrics.gauge("fw.queue_peak_depth").set_max(depth, host=self.host)
        metrics.gauge("fw.queue_peak_bytes").set_max(self._bytes,
                                                     host=self.host)

    # -- admission -------------------------------------------------------------------

    def _would_fit(self, extra_bytes: int) -> bool:
        return self.limits.admits(len(self._pending) + 1,
                                  self._bytes + extra_bytes)

    def _evict_entry(self, entry: _Pending, policy: str) -> None:
        self._pending.remove(entry)
        self._bytes -= entry.wire_bytes
        self.evicted += 1
        self._observe_wait(entry, "evicted")
        self._dead_letter(entry, "evicted")
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("fw.queue_evictions", host=self.host,
                                  policy=policy)
        self._note(f"queue evicted message for {entry.message.target} "
                   f"(policy={policy})")

    def _reject(self, message: Message, wire_bytes: int,
                reason: str) -> None:
        self.rejected += 1
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("fw.queue_rejected", host=self.host,
                                  policy=self.overflow)
        if self.journal is not None:
            self.journal.record("queue-reject",
                                target=str(message.target))
        raise QueueFullError(
            f"pending queue at {self.host or '?'} is full "
            f"({len(self._pending)} msgs / {self._bytes} bytes; "
            f"{reason}; message for {message.target} was {wire_bytes} "
            f"bytes)")

    def _make_room(self, message: Message, wire_bytes: int) -> None:
        """Apply the overflow policy; raises or evicts until it fits."""
        alone_fits = self.limits.admits(1, wire_bytes)
        if self.overflow == OVERFLOW_REJECT or not alone_fits:
            self._reject(message, wire_bytes,
                         "policy rejects new arrivals" if alone_fits
                         else "message alone exceeds the queue capacity")
        if self.overflow == OVERFLOW_DROP_OLDEST:
            while self._pending and not self._would_fit(wire_bytes):
                self._evict_entry(self._pending[0], OVERFLOW_DROP_OLDEST)
            return
        # shed-priority: evict strictly lower-priority entries
        # (lowest priority first, oldest first within a priority).
        while not self._would_fit(wire_bytes):
            sheddable = [e for e in self._pending
                         if e.message.priority < message.priority]
            if not sheddable:
                self._reject(message, wire_bytes,
                             "no lower-priority traffic to shed")
            victim = min(sheddable,
                         key=lambda e: (e.message.priority, e.enqueued_at))
            self._evict_entry(victim, OVERFLOW_SHED_PRIORITY)

    def park(self, message: Message, retransmits: int = 0,
             wire_bytes: Optional[int] = None) -> None:
        """Queue a message until a receiver appears or the TTL runs out.

        Raises :class:`~repro.core.errors.QueueFullError` when the queue
        is bounded, full, and the overflow policy cannot make room.
        """
        if wire_bytes is None:
            from repro.core import codec
            wire_bytes = codec.encoded_size(message.briefcase)
        self.offered += 1
        if self.limits.bounded and not self._would_fit(wire_bytes):
            self._make_room(message, wire_bytes)
        self.accepted += 1
        entry = _Pending(
            message=message,
            enqueued_at=self.kernel.now,
            expires_at=self.kernel.now + message.queue_timeout,
            wire_bytes=wire_bytes,
            retransmits=retransmits,
            park_id=self.park_seq)
        self.park_seq += 1
        entry.span = self.kernel.telemetry.tracer.begin(
            "fw.queue_wait", category="fw", track=f"fw:{self.host}",
            target=str(message.target), **link_args(message.trace))
        self._pending.append(entry)
        self._bytes += wire_bytes
        if self.journal is not None:
            self.journal.record_message(
                "queue-park", message, park=entry.park_id,
                expires_at=entry.expires_at, retransmits=retransmits)
        self._update_watermarks()
        self.kernel.spawn(self._expiry_watch(entry),
                          name=f"queue-ttl:{message.target}")

    def _observe_wait(self, entry: _Pending, outcome: str) -> None:
        telemetry = self.kernel.telemetry
        if entry.span is not None:
            entry.span.end(outcome=outcome)
        if telemetry.enabled:
            telemetry.metrics.observe(
                "fw.queue_wait_seconds",
                self.kernel.now - entry.enqueued_at,
                host=self.host, outcome=outcome)

    def _dead_letter(self, entry: _Pending, reason: str) -> DeadLetter:
        record = DeadLetter(message=entry.message,
                            enqueued_at=entry.enqueued_at,
                            died_at=self.kernel.now, reason=reason,
                            retransmits=entry.retransmits,
                            park_id=entry.park_id)
        self.dead_letters.append(record)
        if self.journal is not None:
            self.journal.record("queue-dead-letter", park=entry.park_id,
                                reason=reason)
        auditor = getattr(self.kernel, "auditor", None)
        if auditor is not None and entry.message.landing_id:
            # A migration transport died in this queue: the departing
            # agent it carried is accounted for, not silently lost.
            auditor.transport_dead_lettered(entry.message.landing_id)
        telemetry = self.kernel.telemetry
        if len(self.dead_letters) > self.dead_letter_limit:
            trimmed = self.dead_letters.pop(0)
            self.dead_letter_evictions += 1
            if self.journal is not None:
                self.journal.record("dead-letter-evict",
                                    park=trimmed.park_id)
            if telemetry.enabled:
                telemetry.metrics.inc("fw.dead_letter_evictions",
                                      host=self.host)
            self._note(
                f"dead-letter ledger full ({self.dead_letter_limit}): "
                f"dropped record from "
                f"{trimmed.message.sender.principal!r} for "
                f"{trimmed.message.target} (reason={trimmed.reason})")
        if telemetry.enabled:
            telemetry.metrics.inc("fw.dead_letters", host=self.host,
                                  reason=reason)
        return record

    def _expiry_watch(self, entry: _Pending):
        yield self.kernel.timeout(entry.expires_at - self.kernel.now)
        if entry in self._pending:
            self._pending.remove(entry)
            self._bytes -= entry.wire_bytes
            entry.expired = True
            self.expired_count += 1
            self._observe_wait(entry, "expired")
            self._dead_letter(entry, "expired")
            self._update_watermarks()
            if self.on_expire is not None:
                self.on_expire(entry.message)

    def claim(self, accepts: Callable[[AgentUri], bool]) -> List[Message]:
        """Remove and return all queued messages whose target the new
        registration ``accepts`` (oldest first)."""
        claimed, remaining = [], []
        for entry in self._pending:
            if accepts(entry.message.target):
                claimed.append(entry.message)
                self.claimed += 1
                self._bytes -= entry.wire_bytes
                if self.journal is not None:
                    self.journal.record("queue-claim",
                                        park=entry.park_id)
                self._observe_wait(entry, "delivered")
            else:
                remaining.append(entry)
        self._pending = remaining
        if claimed:
            self._update_watermarks()
        return claimed

    def crash_flush(self) -> List[DeadLetter]:
        """Host crash: every parked message becomes a dead letter."""
        crashed, self._pending = self._pending, []
        self._bytes = 0
        records = []
        for entry in crashed:
            self.crashed += 1
            self._observe_wait(entry, "crashed")
            records.append(self._dead_letter(entry, "host-crash"))
        if records:
            self._update_watermarks()
        return records

    def take_retransmittable(self,
                             max_retransmits: int = 2) -> List[DeadLetter]:
        """Remove and return dead letters still eligible for another try."""
        eligible, remaining = [], []
        for record in self.dead_letters:
            if record.retransmits < max_retransmits:
                eligible.append(record)
                if self.journal is not None:
                    self.journal.record("dead-letter-take",
                                        park=record.park_id)
            else:
                remaining.append(record)
        self.dead_letters = remaining
        return eligible

    def dead_letter_records(self) -> List[dict]:
        return [record.to_dict() for record in self.dead_letters]

    # -- durability ------------------------------------------------------------------

    def parked_entries(self) -> List[_Pending]:
        """The open parks, oldest first (durable-snapshot input)."""
        return list(self._pending)

    def restore_durable(self, counters: dict, dead_letters: List[DeadLetter],
                        park_seq: int) -> None:
        """Durability-API transition: replace this queue's state with the
        image replayed from a write-ahead journal.

        The process that owned the live parks died with the host; replay
        turns them into ``host-crash`` dead letters, so the restored
        queue starts empty but with the ledger and the accounting
        counters intact.  Only :mod:`repro.durability.recovery` calls
        this (lint rule DUR001 guards other writers).
        """
        self._pending = []
        self._bytes = 0
        self.offered = int(counters.get("offered", 0))
        self.accepted = int(counters.get("accepted", 0))
        self.rejected = int(counters.get("rejected", 0))
        self.claimed = int(counters.get("claimed", 0))
        self.expired_count = int(counters.get("expired", 0))
        self.crashed = int(counters.get("crashed", 0))
        self.evicted = int(counters.get("evicted", 0))
        self.dead_letter_evictions = int(
            counters.get("dead_letter_evictions", 0))
        self.dead_letters = list(dead_letters)
        self.park_seq = max(self.park_seq, int(park_seq))
        self._update_watermarks()

    def peek_targets(self) -> List[AgentUri]:
        return [entry.message.target for entry in self._pending]

    def accounting(self) -> dict:
        """The conservation counters (see the class docstring)."""
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "claimed": self.claimed,
            "expired": self.expired_count,
            "crashed": self.crashed,
            "evicted": self.evicted,
            "parked_now": len(self._pending),
            "parked_bytes": self._bytes,
            "dead_letter_evictions": self.dead_letter_evictions,
        }
