"""Idempotent receive and exactly-once landing bookkeeping.

PR 2's retry/dead-letter machinery made delivery *at-least-once*: a
retry after a delivered-but-unacked attempt, a restart retransmit, or an
injected duplicate can all present the same message twice.  This module
holds the receiver-side state that turns that into *exactly-once
processing*:

- :class:`DedupWindow` — a bounded per-peer window over per-sender
  monotonic sequence numbers.  The sending firewall stamps each remote
  message once (``Message.seq`` / ``Message.seq_src``); retries reuse
  the stamp, so the receiver can tell "same message again" from "next
  message".  Conservation holds by construction:
  ``offered == accepted + duplicates + rejected``.
- :class:`LandingRegistry` — per-host memory of agent landings.  Every
  ``go``/``spawn`` transport carries a unique landing id; a duplicate
  launch request is answered with the *existing* agent's URI instead of
  a second clone, and a tombstoned id (the origin aborted, or the host
  crashed after launching) is refused outright.

Like the trace context, the sequence number and landing id ride the
:class:`~repro.firewall.message.Message` envelope in-simulation (zero
wire bytes — telemetry-off runs stay byte-identical) and travel in the
reserved wire-only folders :data:`~repro.core.wellknown.DELIVERY_SEQ` /
:data:`~repro.core.wellknown.LANDING_ID` on the raw-bytes path, which
``Firewall.receive_wire`` always strips.

Both structures are deliberately *not* reset by host crash: the firewall
object survives a :meth:`~repro.firewall.firewall.Firewall.crash`, so a
restarted host still refuses the duplicates and re-landings that the
outage produced.

On a *durable* host (PR 8) that in-process survival is no longer the
load-bearing mechanism: both structures carry an optional ``journal``
(a :class:`~repro.durability.journal.HostJournal`, duck-typed so this
module stays durability-free) and append a write-ahead record for every
state transition.  Restart-time replay rebuilds equivalent structures
from storage alone via :meth:`to_durable` / :meth:`from_durable` plus
record re-application — the recovery path the real-transport backend
will need, where a process crash destroys the objects outright.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core import wellknown
from repro.core.errors import BriefcaseError

#: Sequence numbers remembered per peer; anything older than
#: ``max_seen - capacity`` is conservatively rejected (we can no longer
#: prove it was not already delivered).
DEFAULT_WINDOW_CAPACITY = 512

#: Landing/tombstone records retained per host before FIFO trimming.
LANDING_CAPACITY = 4096


class DedupWindow:
    """Bounded per-peer duplicate suppression over monotonic sequences.

    ``observe(peer, seq)`` returns one of:

    - ``"accept"``    — first sight of this sequence; deliver it;
    - ``"duplicate"`` — seen before; acknowledge but do not re-deliver;
    - ``"reject"``    — below the window (or not a plausible sequence):
      delivery can no longer be proven fresh, so it is refused — the
      invariant is *never double-deliver*, even at the cost of a
      retransmit falling on the floor.
    """

    def __init__(self, capacity: int = DEFAULT_WINDOW_CAPACITY):
        if capacity < 1:
            raise ValueError("dedup window capacity must be >= 1")
        self.capacity = capacity
        self._max_seen: Dict[str, int] = {}
        self._seen: Dict[str, Set[int]] = {}
        self.offered = 0
        self.accepted = 0
        self.duplicates = 0
        self.rejected = 0
        #: Write-ahead journal of a durable host, or None (volatile).
        self.journal = None

    def observe(self, peer: str, seq: int) -> str:
        verdict = self._observe(peer, seq)
        if self.journal is not None:
            # Replay re-runs ``observe`` on the restored window, so the
            # record needs only the inputs — the verdict and every
            # counter are recomputed identically.  Journaled *after*
            # the mutation (atomic in virtual time) so a snapshot
            # triggered by this record already includes it.
            self.journal.record("dedup-observe", peer=peer, seq=seq)
        return verdict

    def _observe(self, peer: str, seq: int) -> str:
        self.offered += 1
        if not isinstance(seq, int) or seq < 1:
            self.rejected += 1
            return "reject"
        max_seen = self._max_seen.get(peer, 0)
        seen = self._seen.setdefault(peer, set())
        if seq in seen:
            self.duplicates += 1
            return "duplicate"
        if seq <= max_seen - self.capacity:
            self.rejected += 1
            return "reject"
        seen.add(seq)
        if seq > max_seen:
            self._max_seen[peer] = max_seen = seq
        floor = max_seen - self.capacity
        if floor > 0 and len(seen) > self.capacity:
            self._seen[peer] = {s for s in seen if s > floor}
        self.accepted += 1
        return "accept"

    def forget(self, peer: str, seq: int) -> None:
        """Roll back an accepted sequence whose *processing* failed.

        Delivery rejected by the governor, the queue, or policy did not
        happen — remembering its sequence would make the sender's retry
        look like a duplicate and silently lose the message.  The
        accepted count is reclassified as rejected, so conservation
        still holds.
        """
        seen = self._seen.get(peer)
        if seen is not None and seq in seen:
            seen.discard(seq)
            self.accepted -= 1
            self.rejected += 1
            if self.journal is not None:
                self.journal.record("dedup-forget", peer=peer, seq=seq)

    def window_size(self, peer: str) -> int:
        return len(self._seen.get(peer, ()))

    def conservation_holds(self) -> bool:
        return self.offered == self.accepted + self.duplicates + \
            self.rejected

    def snapshot(self) -> dict:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "conservation_holds": self.conservation_holds(),
            "peers": {peer: {"max_seen": self._max_seen.get(peer, 0),
                             "window": len(seen)}
                      for peer, seen in sorted(self._seen.items())},
        }

    # -- durability ----------------------------------------------------------------

    def to_durable(self) -> dict:
        """The full window as canonical JSON-safe state (snapshots)."""
        return {
            "capacity": self.capacity,
            "offered": self.offered,
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "max_seen": {peer: self._max_seen[peer]
                         for peer in sorted(self._max_seen)},
            "seen": {peer: sorted(seqs)
                     for peer, seqs in sorted(self._seen.items())},
        }

    @classmethod
    def from_durable(cls, state: dict) -> "DedupWindow":
        window = cls(capacity=int(state.get(
            "capacity", DEFAULT_WINDOW_CAPACITY)))
        window.offered = int(state.get("offered", 0))
        window.accepted = int(state.get("accepted", 0))
        window.duplicates = int(state.get("duplicates", 0))
        window.rejected = int(state.get("rejected", 0))
        window._max_seen = {peer: int(value) for peer, value in
                            state.get("max_seen", {}).items()}
        window._seen = {peer: {int(s) for s in seqs} for peer, seqs in
                        state.get("seen", {}).items()}
        return window


class LandingRegistry:
    """Exactly-once landing state for one host's VMs.

    A landing id moves through ``pending`` (launch in progress) to
    either ``launched`` (remembering the agent URI for idempotent
    re-acks) or ``tombstoned`` (the landing must never run here:
    origin-side abort, or a crash destroyed the launched instance).
    """

    def __init__(self, capacity: int = LANDING_CAPACITY):
        self.capacity = capacity
        self._pending: Set[str] = set()
        self._launched: Dict[str, str] = {}
        self._tombstones: Dict[str, str] = {}
        self.launches = 0
        self.duplicate_landings = 0
        self.tombstone_refusals = 0
        self.aborts = 0
        self.evicted = 0
        #: Write-ahead journal of a durable host, or None (volatile).
        self.journal = None

    def acquire(self, landing_id: str) -> Tuple[str, Optional[str]]:
        """Claim a landing slot; returns ``(state, info)``.

        ``("new", None)`` means the caller now holds the pending slot
        and must finish with :meth:`record_launch` or :meth:`release`.
        ``("launched", uri)`` / ``("tombstoned", reason)`` report an
        already-decided landing; ``("pending", None)`` asks the caller
        to wait for the in-flight launch to resolve.
        """
        if landing_id in self._tombstones:
            self.tombstone_refusals += 1
            if self.journal is not None:
                # Decided-landing observations are journaled so the
                # suppression counters survive replay (the verdict is
                # recomputed by re-running ``acquire``).
                self.journal.record("landing-observe", id=landing_id)
            return "tombstoned", self._tombstones[landing_id]
        if landing_id in self._launched:
            self.duplicate_landings += 1
            if self.journal is not None:
                self.journal.record("landing-observe", id=landing_id)
            return "launched", self._launched[landing_id]
        if landing_id in self._pending:
            return "pending", None
        self._pending.add(landing_id)
        return "new", None

    def release(self, landing_id: str) -> None:
        """Launch failed: free the slot so a retry may try again."""
        self._pending.discard(landing_id)
        if self.journal is not None:
            self.journal.record("landing-release", id=landing_id)

    def record_launch(self, landing_id: str, agent_uri: str) -> None:
        self._pending.discard(landing_id)
        self._launched[landing_id] = agent_uri
        self.launches += 1
        self._trim(self._launched)
        if self.journal is not None:
            self.journal.record("landing-launch", id=landing_id,
                                uri=agent_uri)

    def tombstone(self, landing_id: str,
                  reason: str = "aborted") -> Optional[str]:
        """Forbid (future) execution of ``landing_id`` on this host.

        Returns the launched agent URI if that landing already ran here
        (the caller should kill the instance), else None.
        """
        self.aborts += 1
        self._pending.discard(landing_id)
        uri = self._launched.pop(landing_id, None)
        self._tombstones[landing_id] = reason
        self._trim(self._tombstones)
        if self.journal is not None:
            self.journal.record("landing-tombstone", id=landing_id,
                                reason=reason)
        return uri

    def forget_launch(self, landing_id: str) -> None:
        """Durability-API transition: drop a landing from the launched
        table *without* tombstoning it, so journal replay can re-land
        the same id when it resurrects the instance that crashed."""
        self._launched.pop(landing_id, None)
        if self.journal is not None:
            self.journal.record("landing-forget", id=landing_id)

    def crash_all(self, reason: str = "host-crash") -> int:
        """Host crash: every launched/pending landing becomes a
        tombstone, so a retried landing after restart is refused rather
        than silently resurrecting a twin."""
        converted = 0
        for landing_id in list(self._launched):
            self._launched.pop(landing_id)
            self._tombstones[landing_id] = reason
            converted += 1
        for landing_id in list(self._pending):
            self._pending.discard(landing_id)
            self._tombstones[landing_id] = reason
            converted += 1
        self._trim(self._tombstones)
        return converted

    def status(self, landing_id: str) -> str:
        if landing_id in self._tombstones:
            return "tombstoned"
        if landing_id in self._launched:
            return "launched"
        if landing_id in self._pending:
            return "pending"
        return "unknown"

    def _trim(self, table: Dict[str, str]) -> None:
        while len(table) > self.capacity:
            table.pop(next(iter(table)))
            self.evicted += 1

    def snapshot(self) -> dict:
        return {
            "launches": self.launches,
            "duplicate_landings": self.duplicate_landings,
            "tombstone_refusals": self.tombstone_refusals,
            "aborts": self.aborts,
            "evicted": self.evicted,
            "launched_now": len(self._launched),
            "tombstones_now": len(self._tombstones),
            "pending_now": len(self._pending),
        }

    # -- durability ----------------------------------------------------------------

    def to_durable(self) -> dict:
        """Canonical JSON-safe state for snapshots.

        The pending set is deliberately volatile: a launch that was in
        flight when the snapshot (or crash) happened is resolved by the
        origin's retry, and persisting it would leave the retry waiting
        forever on a slot nobody holds.
        """
        return {
            "capacity": self.capacity,
            "launches": self.launches,
            "duplicate_landings": self.duplicate_landings,
            "tombstone_refusals": self.tombstone_refusals,
            "aborts": self.aborts,
            "evicted": self.evicted,
            "launched": {lid: self._launched[lid]
                         for lid in sorted(self._launched)},
            "tombstones": {lid: self._tombstones[lid]
                           for lid in sorted(self._tombstones)},
        }

    @classmethod
    def from_durable(cls, state: dict) -> "LandingRegistry":
        registry = cls(capacity=int(state.get(
            "capacity", LANDING_CAPACITY)))
        registry.launches = int(state.get("launches", 0))
        registry.duplicate_landings = int(state.get(
            "duplicate_landings", 0))
        registry.tombstone_refusals = int(state.get(
            "tombstone_refusals", 0))
        registry.aborts = int(state.get("aborts", 0))
        registry.evicted = int(state.get("evicted", 0))
        registry._launched = dict(state.get("launched", {}))
        registry._tombstones = dict(state.get("tombstones", {}))
        return registry


def install_delivery_state(owner, dedup: Optional[DedupWindow] = None,
                           landings: Optional[LandingRegistry] = None
                           ) -> Tuple[DedupWindow, LandingRegistry]:
    """Bind idempotent-receive state (fresh or replayed) onto *owner*.

    The dedup window and landing registry are journaled structures: once
    a host is made durable, every rebinding must reattach the journal or
    the next replay resurrects the past (DUR001).  This module owns both
    structures, so it is the one sanctioned place — alongside the replay
    path in :mod:`repro.durability.recovery` — that may rebind them.
    """
    owner.dedup = dedup if dedup is not None else DedupWindow()
    owner.landings = landings if landings is not None else LandingRegistry()
    return owner.dedup, owner.landings


# -- wire-only folder carriers ----------------------------------------------


def inject_seq(briefcase, seq_src: Optional[str],
               seq: Optional[int]) -> None:
    """Write the sequence stamp into the reserved folder (pre-encode)."""
    if seq is None or not seq_src:
        return
    briefcase.drop(wellknown.DELIVERY_SEQ)
    briefcase.put(wellknown.DELIVERY_SEQ, f"{seq} {seq_src}")


def extract_seq(briefcase) -> Tuple[Optional[str], Optional[int]]:
    """Pop the sequence folder off a just-decoded briefcase.

    Always strips the folder when present; malformed contents (a hostile
    wire peer) are treated as "no stamp" rather than crashing.
    """
    if not briefcase.has(wellknown.DELIVERY_SEQ):
        return None, None
    try:
        text = briefcase.get_text(wellknown.DELIVERY_SEQ)
    except BriefcaseError:
        # Corrupted in flight into non-UTF8: no stamp.
        text = None
    briefcase.drop(wellknown.DELIVERY_SEQ)
    if not text:
        return None, None
    parts = text.split(" ", 1)
    if len(parts) != 2 or not parts[1]:
        return None, None
    try:
        seq = int(parts[0])
    except ValueError:
        return None, None
    return parts[1], seq


def inject_landing(briefcase, landing_id: Optional[str]) -> None:
    if landing_id is None:
        return
    briefcase.drop(wellknown.LANDING_ID)
    briefcase.put(wellknown.LANDING_ID, landing_id)


def extract_landing(briefcase) -> Optional[str]:
    if not briefcase.has(wellknown.LANDING_ID):
        return None
    try:
        landing_id = briefcase.get_text(wellknown.LANDING_ID)
    except BriefcaseError:
        landing_id = None
    briefcase.drop(wellknown.LANDING_ID)
    return landing_id or None
