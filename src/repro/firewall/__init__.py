"""The TAX firewall: reference monitor, routing, queues, auth, policy."""

from repro.firewall.admin import FirewallAdmin
from repro.firewall.auth import KeyChain, Signature, TrustStore, \
    build_shared_trust
from repro.firewall.firewall import (
    Firewall,
    FirewallDirectory,
    LOCAL_DISPATCH_SECONDS,
    code_signing_bytes,
)
from repro.firewall.message import (
    DEFAULT_QUEUE_TIMEOUT,
    ENVELOPE_OVERHEAD_BYTES,
    DeliveryStats,
    Message,
    SenderInfo,
)
from repro.firewall.msgqueue import PendingQueue
from repro.firewall.policy import Policy, closed_policy, open_policy
from repro.firewall.routing import Registration, Registry

__all__ = [
    "FirewallAdmin",
    "KeyChain", "Signature", "TrustStore", "build_shared_trust",
    "Firewall", "FirewallDirectory", "LOCAL_DISPATCH_SECONDS",
    "code_signing_bytes",
    "DEFAULT_QUEUE_TIMEOUT", "ENVELOPE_OVERHEAD_BYTES", "DeliveryStats",
    "Message", "SenderInfo",
    "PendingQueue",
    "Policy", "closed_policy", "open_policy",
    "Registration", "Registry",
]
