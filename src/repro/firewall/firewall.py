"""The TAX firewall: per-host reference monitor and communication broker.

Paper section 3.2.  Each host runs exactly one firewall; it

- mediates **all** communication between local VMs and to remote
  firewalls, enforcing the access policy as it does so;
- performs **initial authentication** of arriving agents (signed agent
  core, or the claimed principal left unauthenticated);
- **queues** messages (with a timeout) when the receiver is not ready or
  has not yet arrived;
- resolves **partially-specified names** (see
  :mod:`repro.firewall.routing`);
- supports **admin operations** — listing, stat'ing, stopping and killing
  agents — via messages addressed to the firewall itself (see
  :mod:`repro.firewall.admin`).

In the original system the firewall was a multi-threaded Unix process
with one thread per VM; here each firewall is an object whose methods run
inside the calling agent's simulation process, with queueing and TTLs
delegated to kernel events.  The serialization boundary is real: every
remote message is charged for its encoded briefcase size on the wire.

Byte-accounting is cache-backed: the ``codec.encoded_size`` calls on the
send path (governor admission in :meth:`Firewall._forward_remote`, the
wire charge, telemetry's ``agent.bytes_out``) and on local dispatch all
resolve against the briefcase's cached encoding (see
:mod:`repro.core.codec`), so one briefcase is encoded at most once per
mutation instead of once per accounting site; ``receive_wire`` seeds the
cache with the decoded buffer, and ``snapshot_for_transport`` propagates
it across the hop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import (
    AccessDeniedError,
    AgentNotFoundError,
    BriefcaseTooLargeError,
    CircuitOpenError,
    CodecError,
    QueueFullError,
    QuotaExceededError,
    TaxError,
    TrustError,
)
from repro.core.identity import AgentId, InstanceAllocator, SYSTEM_PRINCIPAL
from repro.core.limits import DEFAULT_WIRE_LIMITS
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.auth import (Signature, TrustStore,
                                 request_signing_bytes)
from repro.firewall.dedup import (
    extract_landing,
    extract_seq,
    inject_landing,
    inject_seq,
    install_delivery_state,
)
from repro.firewall.governor import Governor
from repro.firewall.message import (
    DEFAULT_QUEUE_TIMEOUT,
    DeliveryStats,
    ENVELOPE_OVERHEAD_BYTES,
    Message,
    SenderInfo,
)
from repro.firewall.msgqueue import PendingQueue
from repro.firewall.policy import Policy, open_policy
from repro.obs import propagation
from repro.firewall.routing import Registration, Registry
from repro.sim.eventloop import Kernel
from repro.sim.host import SimHost
from repro.sim.network import Network, NetworkError

#: Cost of brokering one local message through the firewall (two IPC hops
#: through the reference monitor).
LOCAL_DISPATCH_SECONDS = 0.0002

#: Maximum retained event-log entries per firewall.
EVENT_LOG_LIMIT = 10_000

#: Retained quarantine records for poison (undecodable) wire messages.
QUARANTINE_LIMIT = 100

#: Bucket bounds (bytes) for the admission-decision size histogram.
ADMISSION_BYTE_BUCKETS = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576)


class FirewallDirectory:
    """host name → firewall; the inter-firewall "routing table"."""

    def __init__(self):
        self._firewalls: Dict[str, "Firewall"] = {}

    def add(self, firewall: "Firewall") -> None:
        name = firewall.host.name
        if name in self._firewalls:
            raise ValueError(f"duplicate firewall for host {name!r}")
        self._firewalls[name] = firewall

    def lookup(self, host_name: str) -> Optional["Firewall"]:
        return self._firewalls.get(host_name)

    def __contains__(self, host_name: str) -> bool:
        return host_name in self._firewalls


def code_signing_bytes(briefcase: Briefcase) -> bytes:
    """The byte string a code signature covers: all CODE elements plus the
    payload kind (so a signed source blob cannot be replayed as a binary)."""
    parts = []
    if briefcase.has(wellknown.CODE_KIND):
        parts.append(briefcase.get(wellknown.CODE_KIND).first().data)
    if briefcase.has(wellknown.CODE):
        for element in briefcase.get(wellknown.CODE):
            parts.append(element.data)
    return b"\x00".join(parts)


class Firewall:
    """One host's reference monitor."""

    def __init__(self, kernel: Kernel, network: Network, host: SimHost,
                 trust_store: Optional[TrustStore] = None,
                 policy: Optional[Policy] = None,
                 directory: Optional[FirewallDirectory] = None,
                 site_ordinal: int = 0,
                 port: int = 27017):
        self.kernel = kernel
        self.network = network
        self.host = host
        self.port = port
        self.trust_store = trust_store or TrustStore()
        self.policy = policy or open_policy()
        self.directory = directory or FirewallDirectory()
        self.registry = Registry()
        self.instances = InstanceAllocator(site_ordinal)
        governor_config = self.policy.governor
        self.governor = Governor(kernel, host.name, governor_config)
        queue_kwargs = {}
        if governor_config is not None:
            queue_kwargs = {
                "limits": governor_config.queue_limits,
                "overflow": governor_config.overflow,
                "dead_letter_limit": governor_config.dead_letter_limit,
            }
        self.pending = PendingQueue(kernel, on_expire=self._on_expire,
                                    host=host.name, log=self.log,
                                    **queue_kwargs)
        if governor_config is not None and \
                governor_config.breaker is not None:
            network.configure_breakers(governor_config.breaker)
        #: Poison wire messages that failed to decode (newest last).
        self.quarantine: List[dict] = []
        #: Idempotent-receive state (``self.dedup``/``self.landings``).
        #: Deliberately NOT reset on crash(): the firewall object
        #: survives a host restart, so duplicates produced *by* the
        #: outage are still suppressed afterwards.  Installed through
        #: the journal-aware helper so every rebinding site lives in
        #: the sanctioned modules (DUR001).
        install_delivery_state(self)
        #: Crash-durability controller (a
        #: :class:`repro.durability.recovery.HostDurability`) when this
        #: host journals its delivery state; installed from outside so
        #: the firewall never imports the durability package.
        self.durability = None
        #: Next outbound sequence per destination host (stamped once per
        #: message in :meth:`_forward_remote`; retries reuse the stamp).
        self._send_seqs: Dict[str, int] = {}
        self.stats = DeliveryStats()
        self.events: List[Tuple[float, str]] = []
        #: VM name → object implementing launch_agent(); set by the node.
        self.vms: Dict[str, object] = {}
        self.directory.add(self)

    # -- logging --------------------------------------------------------------------

    @property
    def telemetry(self):
        return self.kernel.telemetry

    def _count(self, name: str, amount: float = 1, **labels) -> None:
        """Increment a host-labelled counter (no-op when disabled)."""
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc(name, amount, host=self.host.name,
                                  **labels)

    def _flight(self, kind: str, **detail) -> None:
        """Append one event to this host's flight-recorder ring."""
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.flight.record(self.host.name, kind, **detail)

    def _admission(self, decision: str, wire_bytes: int,
                   message: Message) -> None:
        """Record one admission decision: the SLO histogram, the flight
        recorder, and (for rejections) a trace-linked instant so the
        rejection shows up in the sender's causal tree."""
        telemetry = self.kernel.telemetry
        if not telemetry.enabled:
            return
        telemetry.metrics.histogram(
            "fw.admission_bytes",
            buckets=ADMISSION_BYTE_BUCKETS).observe(
                wire_bytes, host=self.host.name, decision=decision)
        if decision == "admitted":
            self._flight("admitted", target=str(message.target),
                         principal=message.sender.principal,
                         wire_bytes=wire_bytes)
        else:
            telemetry.tracer.instant(
                "fw.admission_rejected", category="fw",
                track=f"fw:{self.host.name}", reason=decision,
                **propagation.link_args(message.trace))
            self._flight("admission-rejected", reason=decision,
                         target=str(message.target),
                         principal=message.sender.principal,
                         wire_bytes=wire_bytes)

    def log(self, text: str) -> None:
        if len(self.events) < EVENT_LOG_LIMIT:
            self.events.append((self.kernel.now, text))

    def _on_expire(self, message: Message) -> None:
        self.stats.expired += 1
        self._count("fw.queue_expired")
        self.log(f"expired queued message for {message.target}")

    # -- registration (called by VMs) --------------------------------------------------

    def register_agent(self, name: str, principal: str, vm_name: str,
                       deliver_fn: Callable[[Message], bool],
                       process: Optional[object] = None,
                       instance: Optional[str] = None) -> Registration:
        """Register a running agent; flushes any matching queued messages.

        Raises :class:`~repro.core.errors.QuotaExceededError` when the
        principal's resident-agent quota is exhausted (the launch path
        turns this into a nack the sender can back off on).
        """
        resident = sum(1 for r in self.registry.all()
                       if r.principal == principal)
        self.governor.admit_agent(principal, resident)
        agent_id = AgentId(name, instance or self.instances.next_instance())
        registration = Registration(
            agent_id=agent_id, principal=principal, vm_name=vm_name,
            deliver_fn=deliver_fn, start_time=self.kernel.now,
            process=process)
        self.registry.add(registration)
        auditor = getattr(self.kernel, "auditor", None)
        if auditor is not None:
            auditor.spawned(self.host.name, agent_id.instance, name,
                            principal)
        self._count("fw.registrations", vm=vm_name)
        self.log(f"registered {agent_id} principal={principal} vm={vm_name}")
        self._flush_pending_for(registration)
        return registration

    def unregister_agent(self, agent_id: AgentId,
                         reason: str = "finished") -> bool:
        registration = self.registry.remove(agent_id)
        if registration is not None:
            auditor = getattr(self.kernel, "auditor", None)
            if auditor is not None:
                auditor.ended(agent_id.instance, reason)
            if self.durability is not None:
                self.durability.note_depart(agent_id.instance, reason)
            self.log(f"unregistered {agent_id} ({reason})")
            return True
        return False

    # -- durability delegation (journaled hosts only) ----------------------------------

    def journal_arrival(self, registration: Registration, briefcase,
                        landing: Optional[str], vm_name: str) -> None:
        """A cleaned briefcase became resident: journal it so replay
        can relaunch the agent after a host crash."""
        if self.durability is not None:
            self.durability.note_arrival(registration, briefcase,
                                         landing, vm_name)

    def journal_depart_intent(self, registration: Registration,
                              landing: Optional[str]) -> None:
        auditor = getattr(self.kernel, "auditor", None)
        if auditor is not None:
            auditor.departing(registration.instance, landing)
        if self.durability is not None:
            self.durability.note_depart_intent(registration.instance,
                                               landing)

    def journal_depart_failed(self, registration: Registration) -> None:
        auditor = getattr(self.kernel, "auditor", None)
        if auditor is not None:
            auditor.depart_failed(registration.instance)
        if self.durability is not None:
            self.durability.note_depart_failed(registration.instance)

    def _flush_pending_for(self, registration: Registration) -> None:
        for message in self.pending.claim(
                lambda target: self._pending_match(registration, target)):
            self.stats.delivered += 1
            self._count("fw.queue_flushed")
            registration.deliver(message)

    def _pending_match(self, registration: Registration,
                       target: AgentUri) -> bool:
        local = target.local()
        if not local.matches_agent(registration.name,
                                   registration.instance,
                                   registration.principal):
            return False
        if local.principal is None and \
                registration.principal != SYSTEM_PRINCIPAL:
            # Without a sender at flush time we only honour the system
            # half of the two-valid-principals rule; sender-principal
            # matches are resolved at send time.
            return False
        return True

    # -- the send path --------------------------------------------------------------------

    def submit(self, message: Message):
        """Broker one message (``yield from`` inside the sender's process).

        Local targets are dispatched after the local-IPC cost; remote
        targets are encoded, charged on the wire, and handed to the peer
        firewall.  Returns True when the message reached a mailbox or a
        queue, False when it was dropped by policy or routing.
        """
        target = message.target
        if target.is_remote and target.host != self.host.name:
            return (yield from self._forward_remote(message))
        yield self.kernel.timeout(LOCAL_DISPATCH_SECONDS)
        return self._dispatch_local(message)

    def _forward_remote(self, message: Message):
        from repro.firewall.message import MAX_HOPS
        if message.hops >= MAX_HOPS:
            self.stats.rejected += 1
            self._count("fw.rejected", reason="looping")
            self._flight("rejected", reason="looping",
                         target=str(message.target))
            self.log(f"dropped looping message for {message.target} "
                     f"(hops={message.hops})")
            return False
        peer = self.directory.lookup(message.target.host)
        if peer is None:
            self.stats.rejected += 1
            self._count("fw.rejected", reason="no-route")
            self._flight("rejected", reason="no-route",
                         target=str(message.target))
            self.log(f"no route to host {message.target.host!r}")
            raise AgentNotFoundError(
                f"unknown host {message.target.host!r}")
        if message.seq is None:
            # Stamp once, on the message object the sender's retry loop
            # reuses: a retry after a delivered-but-unacked attempt
            # carries the same sequence, so the peer's dedup window
            # suppresses the double delivery.
            next_seq = self._send_seqs.get(message.target.host, 0) + 1
            self._send_seqs[message.target.host] = next_seq
            message.seq = next_seq
            message.seq_src = self.host.name
        wire_bytes = codec.encoded_size(message.briefcase) + \
            ENVELOPE_OVERHEAD_BYTES
        try:
            self.governor.check_wire(wire_bytes)
        except BriefcaseTooLargeError:
            self.stats.rejected += 1
            self._count("fw.rejected", reason="oversized")
            self._flight("rejected", reason="oversized",
                         target=str(message.target),
                         wire_bytes=wire_bytes)
            self.log(f"rejected oversized message for {message.target} "
                     f"({wire_bytes} wire bytes)")
            raise
        try:
            yield from self.network.transfer(
                self.host.name, peer.host.name, wire_bytes)
        except CircuitOpenError:
            self.stats.rejected += 1
            self._count("fw.rejected", reason="circuit-open")
            self._flight("rejected", reason="circuit-open",
                         dst=peer.host.name)
            self.log(f"circuit to {peer.host.name} is open; fast-failed")
            raise
        except NetworkError:
            self.stats.rejected += 1
            self._count("fw.rejected", reason="link-down")
            self._flight("rejected", reason="link-down",
                         dst=peer.host.name)
            self.log(f"transfer to {peer.host.name} failed")
            raise
        self.stats.forwarded_remote += 1
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.metrics.inc("fw.forwarded_remote",
                                  src=self.host.name,
                                  dst=peer.host.name)
            sender_name = message.sender.uri.name \
                if message.sender.uri is not None else None
            if sender_name:
                telemetry.metrics.inc("agent.bytes_out", wire_bytes,
                                      agent=sender_name)
        transported = message.snapshot_for_transport()
        injector = self.network.fault_injector
        fault = None
        if injector is not None:
            fault = injector.delivery_verdict(
                self.host.name, peer.host.name, wire_bytes)
        if fault is not None:
            kind, delay = fault
            if kind == "corrupt-wire":
                # The frame was damaged in flight: it reaches the peer
                # through the raw-bytes path (usually straight into the
                # poison quarantine).  The sender cannot know — it sees
                # a normal completed transfer.
                self._deliver_corrupted(peer, transported, injector)
                return True
            if kind == "delay":
                # The only copy is held back — it arrives out of order
                # relative to later traffic on the same channel.
                self._deliver_later(peer, transported, delay)
                return True
            # "duplicate": deliver now and replay a copy later; the
            # replay carries the same sequence stamp, so the peer's
            # dedup window swallows it.
            self._deliver_later(peer, message.snapshot_for_transport(),
                                delay)
        return peer.receive_remote(transported)

    def _deliver_later(self, peer: "Firewall", message: Message,
                       delay: float) -> None:
        """Hand ``message`` to ``peer`` after ``delay`` virtual seconds
        (injected duplicate replays and reorder jitter)."""
        def _delayed():
            yield self.kernel.timeout(delay)
            if not self.network.host_is_up(peer.host.name):
                self.log(f"delayed delivery to {peer.host.name} lost "
                         f"(host down)")
                return
            try:
                peer.receive_remote(message)
            except (TaxError, NetworkError) as exc:
                self.log(f"delayed delivery to {peer.host.name} "
                         f"refused: {exc}")
        self.kernel.spawn(_delayed(),
                          name=f"delayed:{self.host.name}->"
                               f"{peer.host.name}")

    def _deliver_corrupted(self, peer: "Firewall", message: Message,
                           injector) -> bool:
        """Deliver ``message`` as a bit-flipped raw wire frame."""
        briefcase = message.briefcase
        propagation.inject(briefcase, message.trace)
        inject_seq(briefcase, message.seq_src, message.seq)
        inject_landing(briefcase, message.landing_id)
        data = injector.flip_bit(codec.encode(briefcase))
        return peer.receive_wire(
            data, message.target, message.sender,
            queue_timeout=message.queue_timeout,
            priority=message.priority)

    def receive_wire(self, data: bytes, target: AgentUri,
                     sender: SenderInfo,
                     queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
                     priority: int = 0) -> bool:
        """Entry point for *raw wire bytes* from an untrusted peer.

        The hostile-input path: the buffer is decoded under the
        governor's wire limits, and anything that fails — truncated,
        corrupt, oversized, structurally implausible — is quarantined
        (``fw.poison_quarantined``) instead of crashing the firewall.
        No input to this method can raise an untyped exception.
        """
        limits = self.governor.config.wire_limits or DEFAULT_WIRE_LIMITS
        try:
            briefcase = codec.decode(data, limits=limits)
        except CodecError as exc:
            self._quarantine_poison(len(data), sender, exc)
            return False
        # The reserved TRACE-CONTEXT / DELIVERY-SEQ / LANDING-ID folders
        # exist only on the raw wire: strip them here (whether or not
        # telemetry is on) so resident briefcases never carry transport
        # state across the next hop.
        trace = propagation.extract(briefcase)
        if not self.kernel.telemetry.enabled:
            trace = None
        seq_src, seq = extract_seq(briefcase)
        landing_id = extract_landing(briefcase)
        return self.receive_remote(Message(
            target=target, briefcase=briefcase, sender=sender,
            queue_timeout=queue_timeout, priority=priority, trace=trace,
            seq=seq, seq_src=seq_src, landing_id=landing_id))

    def _quarantine_poison(self, nbytes: int, sender: SenderInfo,
                           exc: CodecError) -> None:
        self.stats.rejected += 1
        self._count("fw.poison_quarantined", kind=type(exc).__name__)
        self.quarantine.append({
            "at": self.kernel.now,
            "sender": sender.principal,
            "from_host": sender.host,
            "bytes": nbytes,
            "error": str(exc),
        })
        if len(self.quarantine) > QUARANTINE_LIMIT:
            self.quarantine.pop(0)
        telemetry = self.kernel.telemetry
        if telemetry.enabled:
            telemetry.flight.record(
                self.host.name, "poison", sender=sender.principal,
                from_host=sender.host, bytes=nbytes,
                error=type(exc).__name__)
            telemetry.flight.dump(self.host.name,
                                  reason="poison-quarantine")
        self.log(f"quarantined poison message from "
                 f"{sender.principal!r}@{sender.host}: {exc}")

    def receive_remote(self, message: Message) -> bool:
        """Entry point for messages arriving from a peer firewall."""
        self.stats.received_remote += 1
        if message.seq is not None and message.seq_src:
            verdict = self.dedup.observe(message.seq_src, message.seq)
            if verdict == "duplicate":
                # Already processed: acknowledge (True) without
                # re-delivering, so the sender's retry loop settles.
                self.stats.duplicates += 1
                self._count("fw.dedup", outcome="duplicate")
                self._flight("dedup-duplicate", src=message.seq_src,
                             seq=message.seq)
                self.log(f"suppressed duplicate seq={message.seq} "
                         f"from {message.seq_src}")
                return True
            if verdict == "reject":
                # Below the window: freshness can no longer be proven,
                # and never-double-deliver wins over at-least-once.
                self.stats.rejected += 1
                self._count("fw.dedup", outcome="reject")
                self._flight("dedup-reject", src=message.seq_src,
                             seq=message.seq)
                self.log(f"rejected out-of-window seq={message.seq} "
                         f"from {message.seq_src}")
                return False
        tracked = message.seq is not None and message.seq_src
        try:
            message = self._authenticate(message)
        except TrustError as exc:
            self.stats.rejected += 1
            self._count("fw.auth", outcome="rejected")
            self.log(f"rejected remote message: {exc}")
            if tracked:
                self.dedup.forget(message.seq_src, message.seq)
            return False
        self._count("fw.auth", outcome="verified"
                    if message.sender.authenticated else "unsigned")
        try:
            delivered = self._dispatch_local(message)
        except TaxError:
            # The message was refused (quota, queue-full, policy …): it
            # was never processed, so its sequence must not be
            # remembered — the sender's retry is fresh traffic, not a
            # duplicate.
            if tracked:
                self.dedup.forget(message.seq_src, message.seq)
            raise
        if not delivered and tracked:
            self.dedup.forget(message.seq_src, message.seq)
        return delivered

    def _authenticate(self, message: Message) -> Message:
        """First-level authentication of an arriving briefcase.

        A valid signature over the agent core authenticates the signing
        principal.  An *invalid* signature is rejected outright.  No
        signature means the claimed principal stays unauthenticated.
        """
        from dataclasses import replace
        briefcase = message.briefcase
        signature_text = briefcase.get_text(wellknown.SIGNATURE)
        if signature_text is None:
            return replace(message, sender=SenderInfo(
                principal=message.sender.principal,
                host=message.sender.host,
                uri=message.sender.uri,
                authenticated=False))
        signature = Signature.from_text(signature_text)
        # Code-carrying briefcases sign their CODE; codeless requests
        # (cross-host admin ops) sign the whole request.
        data = code_signing_bytes(briefcase)
        if not data:
            data = request_signing_bytes(briefcase)
        principal = self.trust_store.verify(signature, data)
        return replace(message, sender=SenderInfo(
            principal=principal, host=message.sender.host,
            uri=message.sender.uri, authenticated=True))

    def _dispatch_local(self, message: Message,
                        retransmits: int = 0,
                        admitted: bool = False) -> bool:
        target = message.target.local()
        local_message = message.with_target(target)
        # Cache-served after the first accounting site touches this
        # briefcase (encode on the forward path seeds it; so does
        # decode on the receive_wire path).
        wire_bytes = codec.encoded_size(message.briefcase)
        if not admitted:
            # The dispatching firewall protects its own host: every
            # message — local send, remote arrival — passes the governor
            # before it may consume a mailbox or the pending queue.
            # Retransmits were admitted on first dispatch (admitted=True)
            # so a crash/restart cycle is not double-charged.
            try:
                self.governor.admit_message(
                    message.sender.principal, wire_bytes,
                    pending=self.pending)
            except QuotaExceededError as exc:
                self.stats.rejected += 1
                self._admission("quota", wire_bytes, message)
                self.log(f"governor rejected "
                         f"{message.sender.principal!r}: {exc}")
                raise
            except BriefcaseTooLargeError:
                self.stats.rejected += 1
                self._count("fw.rejected", reason="oversized")
                self._admission("oversized", wire_bytes, message)
                raise
            self._admission("admitted", wire_bytes, message)
        try:
            registration = self.registry.resolve_one(
                target, message.sender.principal)
        except AgentNotFoundError:
            if message.queue_timeout > 0:
                try:
                    self.pending.park(local_message,
                                      retransmits=retransmits,
                                      wire_bytes=wire_bytes)
                except QueueFullError:
                    self.stats.rejected += 1
                    self._count("fw.rejected", reason="queue-full")
                    self._admission("queue-full", wire_bytes, message)
                    self.log(f"queue full; rejected message for {target}")
                    raise
                self.stats.queued += 1
                self._count("fw.messages_queued")
                self.log(f"queued message for absent {target}")
                return True
            self.stats.rejected += 1
            self._count("fw.rejected", reason="absent")
            return False
        self._count("fw.routing_resolved")
        if not self.policy.can_send(message.sender, registration):
            self.stats.rejected += 1
            self._count("fw.policy_rejected")
            self._flight("rejected", reason="policy",
                         principal=message.sender.principal,
                         target=str(registration.agent_id))
            self.log(f"policy rejected {message.sender.principal} -> "
                     f"{registration.agent_id}")
            raise AccessDeniedError(
                f"{message.sender.principal!r} may not send to "
                f"{registration.agent_id}")
        delivered = registration.deliver(local_message)
        if delivered:
            self.stats.delivered += 1
            telemetry = self.kernel.telemetry
            if telemetry.enabled:
                telemetry.metrics.inc("fw.delivered", host=self.host.name)
                telemetry.metrics.inc("agent.messages_in",
                                      agent=registration.name)
        else:
            self.stats.dropped_by_wrapper += 1
            self._count("fw.dropped_by_wrapper")
            self.log(f"delivery to {registration.agent_id} dropped")
        return delivered

    # -- crash / restart (driven by the node) -------------------------------------------------

    def crash(self, reason: str = "host-crash") -> int:
        """Host crash: kill every registration, dead-letter parked messages.

        Returns the number of registrations destroyed.  Resident agent
        processes are interrupted (their generators unwind at the next
        scheduler step); the pending queue's contents become
        ``host-crash`` dead letters instead of silently vanishing.
        """
        killed = 0
        auditor = getattr(self.kernel, "auditor", None)
        for registration in self.registry.all():
            process = registration.process
            if process is not None and getattr(process, "is_alive", False):
                process.interrupt(reason)
            self.registry.remove(registration.agent_id)
            if auditor is not None:
                auditor.crashed(registration.instance, self.host.name)
            killed += 1
        records = self.pending.crash_flush()
        # Landings that ran here are gone with their processes: a
        # retried landing (the origin never saw the ack) must be refused
        # after restart, not resurrected as a twin — the rear guard owns
        # recovery from the last checkpoint.
        tombstoned = self.landings.crash_all(reason)
        self._count("fw.crashes")
        self._flight("crash", reason=reason, killed=killed,
                     dead_lettered=len(records), tombstoned=tombstoned)
        self.log(f"crashed: {killed} registrations destroyed, "
                 f"{len(records)} parked messages dead-lettered, "
                 f"{tombstoned} landings tombstoned")
        return killed

    def retransmit_dead_letters(self, max_retransmits: int = 2) -> int:
        """Redeliver dead letters after a restart instead of losing them.

        Each eligible record goes back through local dispatch: delivered
        immediately if its target re-registered, or re-parked with a
        fresh TTL (carrying its retransmit count, so a message cannot
        bounce through crashes forever).
        """
        redelivered = 0
        telemetry = self.kernel.telemetry
        for record in self.pending.take_retransmittable(max_retransmits):
            self._count("fw.retransmits", reason=record.reason)
            if telemetry.enabled:
                # The parked envelope kept its causal context through the
                # crash; the retransmit instant links into that trace.
                telemetry.tracer.instant(
                    "fw.retransmit", category="fw",
                    track=f"fw:{self.host.name}", reason=record.reason,
                    target=str(record.message.target),
                    **propagation.link_args(record.message.trace))
            self._flight("retransmit", reason=record.reason,
                         target=str(record.message.target))
            self.log(f"retransmitting dead letter for "
                     f"{record.message.target} (reason={record.reason})")
            try:
                self._dispatch_local(record.message,
                                     retransmits=record.retransmits + 1,
                                     admitted=True)
                redelivered += 1
            except TaxError as exc:
                self.log(f"retransmit failed: {exc}")
        return redelivered

    # -- addressing helpers ------------------------------------------------------------------

    def uri_for(self, registration: Registration) -> AgentUri:
        """The full remote-usable URI of a local registration."""
        return AgentUri(host=self.host.name, port=self.port,
                        principal=registration.principal,
                        name=registration.name,
                        instance=registration.instance)

    def find_registration(self, target: AgentUri,
                          sender_principal: Optional[str] = None
                          ) -> Optional[Registration]:
        found = self.registry.matches(target.local(), sender_principal)
        return found[0] if found else None

    # -- admin primitives (used by the admin agent) ---------------------------------------------

    def admin_list(self) -> List[Registration]:
        return self.registry.all()

    def stats_dict(self) -> dict:
        """Firewall-level stat: delivery counters, queue, dead letters,
        governor admission state, and the poison quarantine."""
        from dataclasses import asdict
        return {
            "host": self.host.name,
            "delivery": asdict(self.stats),
            "queued_now": len(self.pending),
            "queue": self.pending.accounting(),
            "dead_letters": self.pending.dead_letter_records(),
            "governor": self.governor.snapshot(),
            "quarantined": list(self.quarantine),
            "dedup": self.dedup.snapshot(),
            "landings": self.landings.snapshot(),
        }

    def tombstone_landing(self, landing_id: str,
                          reason: str = "aborted") -> dict:
        """Admin primitive: forbid ``landing_id`` here, killing the
        instance it launched if one is still running (two-phase abort
        of an ambiguous ``go``)."""
        uri = self.landings.tombstone(landing_id, reason)
        killed = False
        if uri is not None:
            instance = AgentUri.parse(uri).instance
            if instance is not None:
                killed = self.admin_kill(instance)
        self._count("fw.landing_tombstoned", reason=reason)
        self._flight("landing-tombstone", landing_id=landing_id,
                     reason=reason, killed=killed)
        self.log(f"tombstoned landing {landing_id} "
                 f"(reason={reason}, killed={killed})")
        return {"tombstoned": True, "killed": killed}

    def admin_kill(self, instance: str) -> bool:
        """Terminate an agent: interrupt its process and unregister it."""
        registration = self.registry.by_instance(instance)
        if registration is None:
            return False
        process = registration.process
        if process is not None and getattr(process, "is_alive", False):
            process.interrupt("killed-by-admin")
        self.registry.remove(registration.agent_id)
        auditor = getattr(self.kernel, "auditor", None)
        if auditor is not None:
            # A deliberate kill is a decision, not a conservation loss.
            auditor.ended(registration.instance, "killed")
        if self.durability is not None:
            self.durability.note_depart(registration.instance, "killed")
        self.log(f"killed {registration.agent_id}")
        return True

    def admin_pause(self, instance: str) -> bool:
        registration = self.registry.by_instance(instance)
        if registration is None:
            return False
        registration.pause()
        self.log(f"paused {registration.agent_id}")
        return True

    def admin_resume(self, instance: str) -> bool:
        registration = self.registry.by_instance(instance)
        if registration is None:
            return False
        flushed = registration.resume()
        self.log(f"resumed {registration.agent_id} "
                 f"(flushed {flushed} messages)")
        return True
