"""Access-control policy enforced by the firewall's reference monitor.

The paper requires *"a local authority which enforces access rights,
based on first level authentication of the origin of the agent"*.  The
policy answers three questions:

1. May this sender talk to this (local) agent at all?
2. May this sender perform firewall admin operations (list/kill/stop)?
3. May an agent arriving from this sender be launched on this VM kind?

Policies are composed of explicit allow/deny rules keyed by principal,
evaluated deny-first, with configurable defaults.  The default policy is
what the paper's deployment implies: open messaging inside the system,
admin restricted to authenticated system/owner principals, and agent
launch allowed (VMs apply their own payload-level safety on top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.core.identity import SYSTEM_PRINCIPAL
from repro.firewall.governor import GovernorConfig
from repro.firewall.message import SenderInfo
from repro.firewall.routing import Registration

OP_SEND = "send"
OP_ADMIN = "admin"
OP_LAUNCH = "launch"

ALL_OPS = (OP_SEND, OP_ADMIN, OP_LAUNCH)


@dataclass
class Policy:
    """Deny-first principal-based access rules."""

    #: principal → ops explicitly denied.
    denied: dict = field(default_factory=dict)
    #: principal → ops explicitly allowed (overrides defaults).
    allowed: dict = field(default_factory=dict)
    #: Principals treated as site owners (admin-capable).
    owners: Set[str] = field(default_factory=set)
    default_send: bool = True
    default_launch: bool = True
    #: Require authentication for admin regardless of principal.
    admin_requires_auth: bool = True
    #: Resource-governance rules (quotas, queue bounds, wire limits,
    #: breakers).  ``None`` keeps the firewall ungoverned — pre-overload
    #: behaviour.  Access rules and resource rules deploy together: the
    #: reference monitor decides *may you*, the governor decides *may
    #: you right now*.
    governor: Optional[GovernorConfig] = None

    # -- rule management ----------------------------------------------------------

    def deny(self, principal: str, op: str) -> None:
        self._check_op(op)
        self.denied.setdefault(principal, set()).add(op)

    def allow(self, principal: str, op: str) -> None:
        self._check_op(op)
        self.allowed.setdefault(principal, set()).add(op)

    def add_owner(self, principal: str) -> None:
        self.owners.add(principal)

    @staticmethod
    def _check_op(op: str) -> None:
        if op not in ALL_OPS:
            raise ValueError(f"unknown policy op {op!r}")

    def _explicit(self, principal: str, op: str) -> Optional[bool]:
        if op in self.denied.get(principal, ()):
            return False
        if op in self.allowed.get(principal, ()):
            return True
        return None

    # -- decisions -----------------------------------------------------------------

    def can_send(self, sender: SenderInfo,
                 target: Optional[Registration] = None) -> bool:
        explicit = self._explicit(sender.principal, OP_SEND)
        if explicit is not None:
            return explicit
        if target is not None:
            # Any principal may always address its own agents; the system
            # principal may address anything.
            if sender.principal in (target.principal, SYSTEM_PRINCIPAL):
                return True
        return self.default_send

    def can_admin(self, sender: SenderInfo) -> bool:
        explicit = self._explicit(sender.principal, OP_ADMIN)
        if explicit is False:
            return False
        if self.admin_requires_auth and not sender.authenticated:
            return False
        if explicit is True:
            return True
        return sender.principal == SYSTEM_PRINCIPAL or \
            sender.principal in self.owners

    def can_launch(self, sender: SenderInfo, vm_name: str) -> bool:
        explicit = self._explicit(sender.principal, OP_LAUNCH)
        if explicit is not None:
            return explicit
        return self.default_launch


def open_policy() -> Policy:
    """The permissive intra-experiment policy (paper's own deployment)."""
    return Policy()


def closed_policy(owners: Set[str] = frozenset()) -> Policy:
    """A locked-down policy: nothing moves unless explicitly allowed."""
    policy = Policy(default_send=False, default_launch=False)
    for owner in owners:
        policy.add_owner(owner)
        policy.allow(owner, OP_SEND)
        policy.allow(owner, OP_LAUNCH)
    return policy
