"""Message envelopes: what actually moves between agents and firewalls.

A message is a briefcase plus addressing metadata.  The briefcase is the
*only* application-visible part (the paper's minimal two-action interface:
send a briefcase / receive a briefcase); the envelope carries what the
reference monitor needs — who sent it, where it should go, and how long
it may wait in a queue for an absent receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.obs.propagation import TraceContext

#: Bytes of envelope/framing added to the encoded briefcase on the wire.
ENVELOPE_OVERHEAD_BYTES = 128

#: Default seconds a message may wait for its receiver (paper section 3.2:
#: "messages ... are queued with a timeout value").
DEFAULT_QUEUE_TIMEOUT = 30.0

#: A message forwarded more times than this is assumed to be looping
#: (misconfigured forwarding wrappers or routing) and is rejected.
MAX_HOPS = 32


@dataclass(frozen=True)
class SenderInfo:
    """What the firewall knows about a message's origin."""

    principal: str
    host: str
    uri: Optional[AgentUri] = None
    authenticated: bool = False

    def local_to(self, host_name: str) -> bool:
        return self.host == host_name


@dataclass
class Message:
    """One briefcase in flight."""

    target: AgentUri
    briefcase: Briefcase
    sender: SenderInfo
    queue_timeout: float = DEFAULT_QUEUE_TIMEOUT
    hops: int = 0
    #: Shedding priority: under the ``shed-priority`` overflow policy a
    #: bounded queue evicts lower-priority parked messages to make room
    #: for a higher-priority arrival.  Higher is more important.
    priority: int = 0
    #: Causal trace context (envelope metadata, like ``hops`` — zero
    #: wire bytes in-sim).  None whenever telemetry is disabled.
    trace: Optional[TraceContext] = None
    #: Per-sender monotonic delivery sequence, stamped once by the
    #: forwarding firewall (``seq_src`` names the stamping host) and
    #: reused across retries, so the receiver's dedup window can tell a
    #: retransmit from fresh traffic.  Envelope metadata in-sim; the
    #: reserved DELIVERY-SEQ folder on the raw wire.
    seq: Optional[int] = None
    seq_src: Optional[str] = None
    #: Unique landing id of a go/spawn transport (exactly-once
    #: migration; the reserved LANDING-ID folder on the raw wire).
    landing_id: Optional[str] = None

    def with_target(self, target: AgentUri) -> "Message":
        return replace(self, target=target)

    def snapshot_for_transport(self) -> "Message":
        """An independent copy whose briefcase is a snapshot."""
        return Message(target=self.target,
                       briefcase=self.briefcase.snapshot(),
                       sender=self.sender,
                       queue_timeout=self.queue_timeout,
                       hops=self.hops + 1,
                       priority=self.priority,
                       trace=self.trace,
                       seq=self.seq,
                       seq_src=self.seq_src,
                       landing_id=self.landing_id)


@dataclass
class DeliveryStats:
    """Firewall-level counters."""

    delivered: int = 0
    queued: int = 0
    expired: int = 0
    rejected: int = 0
    forwarded_remote: int = 0
    received_remote: int = 0
    dropped_by_wrapper: int = 0
    #: Remote arrivals suppressed by the dedup window (acked, not
    #: re-delivered).
    duplicates: int = 0
