"""Mining access logs with a mobile agent (the D1 story, hands-on).

The paper's opening argument is about *data mining* in general: "there
is a possible gain in executing these algorithms at the servers
themselves" because mining condenses.  Dead links are one instance;
this example shows a starker one — mining a web server's access log,
where megabytes of Common-Log-Format lines condense into a few hundred
bytes of aggregates.

The analyzer is a second self-contained stationary program shipped
through the *same* mobility wrapper as the Webbot; nothing in the agent
system changes.

Run with::

    python examples/log_mining.py
"""

from repro.mining.logmining import (
    generate_access_log,
    publish_log,
    run_log_mobile,
    run_log_stationary,
)
from repro.sim.network import BANDWIDTH_1MBIT, LATENCY_WAN
from repro.system.bootstrap import build_linkcheck_testbed
from repro.web.site import paper_site_spec


def main():
    spec = paper_site_spec()
    testbed = build_linkcheck_testbed(
        spec=spec, bandwidth=BANDWIDTH_1MBIT, latency=LATENCY_WAN)
    site = testbed.site_of(spec.host)
    log_text = generate_access_log(site, n_requests=20_000, seed=1999)
    publish_log(site, log_text)
    print(f"access log: 20,000 requests, "
          f"{len(log_text.encode()):,d} bytes, published at "
          f"http://{spec.host}/logs/access.log")
    print("client is behind a 1 Mbit WAN\n")

    print("[1/2] stationary: download the log, mine at the client ...")
    stationary = run_log_stationary(testbed, spec.host)
    print(f"      {stationary.elapsed_seconds:8.2f}s, "
          f"{stationary.remote_bytes:,d} bytes over the WAN")

    print("[2/2] mobile: ship the analyzer to the server ...")
    mobile = run_log_mobile(testbed, spec.host)
    print(f"      {mobile.elapsed_seconds:8.2f}s, "
          f"{mobile.remote_bytes:,d} bytes over the WAN")

    speedup = stationary.elapsed_seconds / mobile.elapsed_seconds
    ratio = stationary.remote_bytes / max(mobile.remote_bytes, 1)
    print(f"\nspeedup {speedup:.1f}x, {ratio:.0f}x fewer bytes — and the "
          "aggregates are identical:")
    stats = mobile.reports[0]
    assert stats == stationary.reports[0]
    print(f"  hits            : {stats['hits']:,d}")
    print(f"  unique visitors : {stats['unique_visitors']}")
    print(f"  bytes served    : {stats['bytes_served']:,d}")
    print("  top pages:")
    for path, count in stats["top_pages"][:5]:
        print(f"    {count:6d}  {path}")
    print("  top error paths:")
    for path, count in stats["top_error_paths"][:3]:
        print(f"    {count:6d}  {path}")


if __name__ == "__main__":
    main()
