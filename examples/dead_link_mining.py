"""The paper's case study (section 5): mining for dead links.

Reproduces Figure 5 end to end on the paper's workload — a 917-page /
3 MB web site with injected dead links, a client workstation on a
100 Mbit LAN, and external hosts behind a WAN:

1. the **stationary** Webbot crawls the server remotely (the baseline);
2. the **mobile** Webbot — the same robot code, wrapped in the mobility
   wrapper (mwWebbot) and the monitoring wrapper (rwWebbot) — relocates
   to the web server, crawls over loopback, validates the rejected
   off-site links in a second pass, and ships only the condensed
   dead-link report home.

Run with::

    python examples/dead_link_mining.py           # paper scale (917 pages)
    python examples/dead_link_mining.py --small   # quick 80-page variant
"""

import sys

from repro.mining.strategies import CrawlTask, run_mobile, run_stationary
from repro.robot.report import DeadLinkReport
from repro.system.bootstrap import build_linkcheck_testbed
from repro.web.site import SiteSpec, paper_site_spec


def build(small: bool):
    if small:
        spec = SiteSpec(host="www.cs.uit.no", n_pages=80,
                        total_bytes=260_000,
                        external_hosts=("www.w3.org", "www.cornell.edu"),
                        seed=7)
    else:
        spec = paper_site_spec()
    return build_linkcheck_testbed(spec=spec)


def main():
    small = "--small" in sys.argv
    testbed = build(small)
    site = testbed.site_of("www.cs.uit.no")
    print(f"workload: {site.n_pages} pages, {site.total_bytes:,d} bytes, "
          f"{site.truth.dead_total} planted dead links "
          f"({len(site.truth.dead_internal)} internal, "
          f"{len(site.truth.dead_external)} external)")
    task = CrawlTask.for_site(site)

    print("\n[1/2] stationary Webbot, crawling over the 100 Mbit LAN ...")
    stationary = run_stationary(testbed, [task])
    print("      " + stationary.summary_row())

    print("[2/2] mobile Webbot (rwWebbot(mwWebbot(Webbot))), "
          "relocating to the server ...")
    mobile = run_mobile(testbed, [task], monitor=True)
    print("      " + mobile.summary_row())

    ratio = stationary.elapsed_seconds / mobile.elapsed_seconds
    print(f"\nlocal (mobile) execution is {(ratio - 1) * 100:.1f}% faster "
          f"than remote (paper reports 16%)")
    print(f"bytes on the wire: {stationary.remote_bytes:,d} (stationary) "
          f"vs {mobile.remote_bytes:,d} (mobile)")

    print("\nagent location trail (from the rwWebbot monitoring wrapper):")
    for event in mobile.monitor_events:
        print(f"  t={event['t']:9.4f}s  {event['event']:<10s} "
              f"{event['host']}")

    import json
    report = DeadLinkReport.from_json(json.dumps(mobile.reports[0]))
    print(f"\ndead-link report ({report.dead_count} broken references):")
    shown = 0
    for referrer, dead in report.by_referrer().items():
        for url in dead:
            print(f"  {referrer}  ->  {url}")
            shown += 1
            if shown >= 10:
                print(f"  ... and {report.dead_count - shown} more")
                return


if __name__ == "__main__":
    main()
