"""Carried system support: stacking group, location, and monitor wrappers.

Section 4 of the paper argues agents should *carry* the middleware they
need — group communication, location transparency, monitoring — as
stacked wrappers, instead of demanding it from every landing pad.  This
demo builds a three-host cluster and a swarm of sensor agents whose
launch briefcases stack three wrappers:

- :class:`GroupCommWrapper` — FIFO multicast inside the "sensors" group;
- :class:`LocationWrapper` — publishes each agent's location to an
  ag_locator registry so logical names survive migration;
- :class:`MonitorWrapper` — reports every arrival/departure.

A coordinator multicasts a measurement request, collects the readings,
orders one sensor to relocate, and then reaches it again *by logical
name* at its new home.

Run with::

    python examples/group_wrapper_demo.py
"""

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
from repro.system.cluster import TaxCluster
from repro.vm import loader
from repro.wrappers.groupcomm import GroupCommWrapper
from repro.wrappers.location import LocationWrapper, send_via
from repro.wrappers.monitor import MonitorLog, MonitorWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers

HOSTS = ["n1.uit.no", "n2.uit.no", "n3.uit.no"]
REGISTRY = f"tacoma://{HOSTS[0]}//ag_locator"


def sensor_agent(ctx, bc):
    """Measures on request; relocates on command; stops on command."""
    while True:
        message = yield from ctx.recv()
        briefcase = message.briefcase
        op = briefcase.get_text(wellknown.OP)
        if op == "stop":
            return "stopped"
        if op == "relocate":
            # go() never returns on success; the wrapper stack travels
            # with the agent and re-registers its new location.
            yield from ctx.go(briefcase.get_text("TARGET-VM"))
        if op == "measure":
            reading = Briefcase()
            reading.put("READING", {
                "sensor": bc.get_text("SENSOR-ID"),
                "host": ctx.host_name,
                "value": sum(map(ord, ctx.host_name)) % 40,  # a "temperature"
            })
            yield from ctx.send(briefcase.get_text("COORD"), reading)


def main():
    cluster = TaxCluster()
    for host in HOSTS:
        cluster.add_node(host)
    for i, a in enumerate(HOSTS):
        for b in HOSTS[i + 1:]:
            cluster.network.link(a, b, latency=LATENCY_LAN,
                                 bandwidth=BANDWIDTH_100MBIT)

    coordinator = cluster.node(HOSTS[0]).driver(name="coordinator")
    monitor_log = MonitorLog()
    cluster.node(HOSTS[0]).firewall.register_agent(
        name="monitor-tool", principal="system", vm_name="vm_python",
        deliver_fn=monitor_log.deliver)
    monitor_uri = f"tacoma://{HOSTS[0]}//monitor-tool"

    members = [f"tacoma://{host}//sensor{i}"
               for i, host in enumerate(HOSTS)]
    group_config = {"group": "sensors", "members": members,
                    "ordering": "fifo"}

    def launch_sensor(i, host):
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(sensor_agent),
                               agent_name=f"sensor{i}")
        briefcase.put("SENSOR-ID", f"sensor{i}")
        install_wrappers(briefcase, [
            WrapperSpec.by_ref(MonitorWrapper,
                               {"monitor": monitor_uri,
                                "tag": f"sensor{i}"}),
            WrapperSpec.by_ref(LocationWrapper,
                               {"registry": REGISTRY,
                                "logical": f"sensor{i}"}),
            WrapperSpec.by_ref(GroupCommWrapper, group_config),
        ])

        def _launch():
            reply = yield from coordinator.meet(
                cluster.vm_uri(host), briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)
            return reply.get_text("AGENT-URI")
        return cluster.run(_launch())

    print("launching 3 sensor agents, each carrying a "
          "monitor+location+group wrapper stack ...")
    for i, host in enumerate(HOSTS):
        uri = launch_sensor(i, host)
        print(f"  {uri}")

    # The coordinator joins the group through its own wrapper instance.
    from repro.wrappers.stack import WrapperStack
    coordinator.wrappers = WrapperStack(
        [GroupCommWrapper({**group_config, "deliver_self": False})])

    def measure_round():
        request = Briefcase()
        request.put(wellknown.OP, "measure")
        request.put("COORD", str(coordinator.uri))
        from repro.wrappers.groupcomm import group_send
        yield from group_send(coordinator, "sensors", request)
        readings = []
        while len(readings) < 3:
            message = yield from coordinator.recv(timeout=60)
            reading = message.briefcase.get_json("READING")
            if reading is not None:
                readings.append(reading)
        return readings

    print("\nmulticasting a measurement request to the group ...")
    for reading in sorted(cluster.run(measure_round()),
                          key=lambda r: r["sensor"]):
        print(f"  {reading['sensor']} @ {reading['host']}: "
              f"value={reading['value']}")

    print(f"\nordering sensor0 to relocate {HOSTS[0]} -> {HOSTS[2]} ...")

    def relocate_and_requery():
        order = Briefcase()
        order.put(wellknown.OP, "relocate")
        order.put("TARGET-VM", f"tacoma://{HOSTS[2]}/vm_python")
        yield from send_via(coordinator, REGISTRY, "sensor0", order)
        yield cluster.kernel.timeout(1.0)  # let the move settle
        # Reach it again purely by logical name.
        probe = Briefcase()
        probe.put(wellknown.OP, "measure")
        probe.put("COORD", str(coordinator.uri))
        target = yield from send_via(coordinator, REGISTRY, "sensor0",
                                     probe)
        message = yield from coordinator.recv(timeout=60)
        return str(target), message.briefcase.get_json("READING")

    target, reading = cluster.run(relocate_and_requery())
    print(f"  locator now resolves sensor0 to {target}")
    print(f"  fresh reading from its new home: {reading}")

    print("\nmonitoring log (every arrival/departure, via rwWebbot-style "
          "wrappers):")
    for t, host, event in monitor_log.locations():
        print(f"  t={t:8.4f}s  {event:<10s} {host}")


if __name__ == "__main__":
    main()
