"""Quickstart: the paper's Figure-4 "hello world" itinerant agent.

Builds a three-host TAX cluster, ships a tiny agent *by value* (its
compiled code travels in the briefcase), and lets it hop the itinerary
in its HOSTS folder, greeting each host.  The final briefcase comes back
to the launching driver.

Run with::

    python examples/quickstart.py
"""

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
from repro.system.cluster import TaxCluster
from repro.vm import loader

#: The Figure-4 agent, transliterated from the paper's C to Python.
#: It is shipped as source and compiled to a by-value payload, so the
#: destination hosts never need it pre-installed.
HELLO_AGENT = '''
def hello_agent(ctx, bc):
    bc.append("GREETINGS", "Hello world from " + ctx.host_name)
    nxt = bc.folder("HOSTS").pop_first()
    if nxt is None:
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
        return "done"
    try:
        yield from ctx.go(nxt.as_text())
    except Exception:
        bc.append("GREETINGS", "Unable to reach " + nxt.as_text())
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
'''


def main():
    # A cluster of three TAX nodes on a full-mesh 100 Mbit LAN.
    cluster = TaxCluster()
    hosts = ["cl1.cs.uit.no", "cl2.cs.uit.no", "cl3.cs.uit.no"]
    for host in hosts:
        cluster.add_node(host)
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            cluster.network.link(a, b, latency=LATENCY_LAN,
                                 bandwidth=BANDWIDTH_100MBIT)

    # Pack the agent by value and set up its itinerary + home address.
    payload = loader.compile_source(
        loader.pack_source(HELLO_AGENT, "hello_agent"))
    briefcase = Briefcase()
    loader.install_payload(briefcase, payload, agent_name="hello")
    briefcase.folder("HOSTS").push_all(
        [f"tacoma://{host}/vm_python" for host in hosts[1:]])

    driver = cluster.node(hosts[0]).driver()
    briefcase.put("HOME", str(driver.uri))

    def scenario():
        print(f"launching hello agent at {hosts[0]} ...")
        reply = yield from driver.meet(
            cluster.vm_uri(hosts[0]), briefcase, timeout=60)
        assert reply.get_text(wellknown.STATUS) == "ok", \
            reply.get_text(wellknown.ERROR)
        print(f"  launched as {reply.get_text('AGENT-URI')}")
        final = yield from driver.recv(timeout=600)
        return final.briefcase

    result = cluster.run(scenario())
    print(f"\nagent came home after {cluster.kernel.now * 1000:.2f} "
          "simulated milliseconds; greetings collected:")
    for greeting in result.folder("GREETINGS").texts():
        print(f"  {greeting}")
    moved_bytes = cluster.network.total_remote_bytes()
    print(f"\nbytes moved between hosts: {moved_bytes:,d} "
          f"(the agent's code + state, {len(hosts) - 1} hops + report)")


if __name__ == "__main__":
    main()
