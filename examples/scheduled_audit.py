"""Recurring, differential dead-link audits with ag_cron + ag_cabinet.

The paper's landing-pad services compose into workflows the authors only
hint at.  This example builds one: an unattended audit pipeline where

1. **ag_cron** launches the wrapped Webbot on a schedule (the launch
   briefcase itself is the deferred message, addressed to the VM — no
   special support needed);
2. each audit ships its condensed report home;
3. the home agent diffs the report against the previous visit's report
   stored in **ag_cabinet**, prints only the *newly* broken links, and
   stores the new baseline.

Between the two audits the site "rots": we delete a few pages from the
server, so the second audit finds fresh dead links.

Run with::

    python examples/scheduled_audit.py
"""

import json

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.mining.webbot_agent import (
    WEBBOT_PRINCIPAL,
    build_webbot_program,
    crawl_args,
    make_mwwebbot,
)
from repro.system.bootstrap import build_linkcheck_testbed
from repro.web.site import SiteSpec

AUDIT_PERIOD = 3_600.0  # one simulated hour between audits


def main():
    spec = SiteSpec(host="www.cs.uit.no", n_pages=120, total_bytes=400_000,
                    external_hosts=("www.w3.org",), seed=11)
    testbed = build_linkcheck_testbed(spec=spec)
    cluster = testbed.cluster
    cluster.add_principal(WEBBOT_PRINCIPAL, trusted=True)
    site = testbed.site_of(spec.host)
    program = build_webbot_program(cluster.keychain)
    home = testbed.client.driver(name="audit_home",
                                 principal=WEBBOT_PRINCIPAL)

    def make_audit_briefcase():
        return make_mwwebbot(
            program,
            [(str(cluster.vm_uri(spec.host)),
              crawl_args(site.root_url, prefix=f"http://{spec.host}/"))],
            home_uri=str(home.uri), agent_name="auditor")

    def schedule_audit(delay):
        request = make_audit_briefcase()
        request.put(wellknown.ARGS, {
            "delay": delay,
            "target": str(cluster.vm_uri(testbed.client.host.name)),
        })
        return home.call_service("ag_cron", "schedule", request)

    def dead_urls_of(report_dict):
        return {record["url"] for record in report_dict["invalid"]}

    def store_baseline(urls):
        request = Briefcase({"BASELINE": [json.dumps(sorted(urls))]})
        request.put("DRAWER", "last-audit")
        return home.call_service("ag_cabinet", "put", request)

    def load_baseline():
        request = Briefcase()
        request.put("DRAWER", "last-audit")
        return home.call_service("ag_cabinet", "get", request)

    def await_report():
        while True:
            message = yield from home.recv(timeout=1_000_000)
            if message.briefcase.has(wellknown.RESULTS):
                return message.briefcase.get_json(wellknown.RESULTS)

    def scenario():
        print(f"scheduling audits at t=+1s and t=+{AUDIT_PERIOD:.0f}s "
              "via ag_cron ...")
        yield from schedule_audit(1.0)
        yield from schedule_audit(AUDIT_PERIOD)

        report1 = yield from await_report()
        dead1 = dead_urls_of(report1)
        print(f"\n[audit #1 at t={cluster.kernel.now:9.1f}s] "
              f"{report1['pages_scanned']} pages, "
              f"{len(dead1)} distinct dead links (baseline stored)")
        yield from store_baseline(dead1)

        # The site rots between audits: three pages disappear.
        victims = sorted(site.pages)[40:43]
        for path in victims:
            del site.pages[path]
        print(f"  (site rot injected: removed {', '.join(victims)})")

        report2 = yield from await_report()
        dead2 = dead_urls_of(report2)
        baseline_reply = yield from load_baseline()
        baseline = set(json.loads(
            baseline_reply.get_text("BASELINE")))
        fresh = sorted(dead2 - baseline)
        print(f"\n[audit #2 at t={cluster.kernel.now:9.1f}s] "
              f"{report2['pages_scanned']} pages, "
              f"{len(dead2)} distinct dead links")
        print(f"  newly broken since last audit ({len(fresh)}):")
        for url in fresh:
            print(f"    {url}")
        yield from store_baseline(dead2)
        return len(fresh)

    fresh_count = cluster.run(scenario())
    print(f"\ndone: {fresh_count} regressions flagged without re-reporting "
          "the long-known dead links")


if __name__ == "__main__":
    main()
