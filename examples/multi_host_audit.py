"""Auditing a whole campus with one itinerant agent (section 5's
"check all the servers at the university campus" scenario).

A remote administrator behind a 1 Mbit WAN link must find the dead links
on every web server of a campus LAN.  Two ways:

- **repeated remote crawls**: the stationary robot pulls every page of
  every server across the WAN;
- **one itinerant agent**: the wrapped robot hops server to server on
  the fast campus LAN and sends one condensed report home.

The example also partitions one server mid-way to show the itinerary
surviving a dead stop (the Figure-4 "Unable to reach" pattern).

Run with::

    python examples/multi_host_audit.py
"""

from repro.mining.strategies import (
    CrawlTask,
    run_mobile,
    run_repeated_remote,
)
from repro.system.bootstrap import build_campus_testbed


def fresh_testbed():
    return build_campus_testbed(n_servers=4, pages_per_server=150,
                                bytes_per_server=500_000)


def tasks_for(testbed):
    return [CrawlTask.for_site(testbed.sites[name])
            for name in sorted(testbed.sites)]


def main():
    testbed = fresh_testbed()
    names = sorted(testbed.sites)
    total_pages = sum(site.n_pages for site in testbed.sites.values())
    total_bytes = sum(site.total_bytes for site in testbed.sites.values())
    print(f"campus: {len(names)} servers, {total_pages} pages, "
          f"{total_bytes:,d} bytes; client behind a 1 Mbit WAN\n")

    print("[1/3] repeated remote crawls from the client ...")
    remote = run_repeated_remote(testbed, tasks_for(testbed))
    print("      " + remote.summary_row())

    print("[2/3] itinerant agent hopping the campus LAN ...")
    testbed2 = fresh_testbed()
    itinerant = run_mobile(testbed2, tasks_for(testbed2), monitor=True)
    print("      " + itinerant.summary_row())
    hops = [e["host"] for e in itinerant.monitor_events
            if e["event"] == "arrived"]
    print(f"      itinerary: {' -> '.join(hops)}")

    speedup = remote.elapsed_seconds / itinerant.elapsed_seconds
    print(f"\n      the itinerant agent is {speedup:.1f}x faster and ships "
          f"{remote.remote_bytes / max(itinerant.remote_bytes, 1):.0f}x "
          "fewer bytes\n")

    print("[3/3] same audit with one server partitioned away ...")
    testbed3 = fresh_testbed()
    dead = sorted(testbed3.sites)[1]
    for other in list(testbed3.cluster.network.hosts):
        if other != dead:
            try:
                testbed3.cluster.network.set_link_up(dead, other, False)
            except Exception:
                pass  # not every host pair has a link
    degraded = run_mobile(testbed3, tasks_for(testbed3),
                          timeout=1_000_000)
    print("      " + degraded.summary_row())
    print(f"      servers audited: {len(degraded.reports)}/4; "
          f"failures recorded: {len(degraded.failures)}")
    for failure in degraded.failures:
        print(f"        unable to reach {failure['host']}")


if __name__ == "__main__":
    main()
