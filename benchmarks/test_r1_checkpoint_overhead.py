"""R1 — the price of fault tolerance (checkpoint wrapper ablation).

Section 4 argues multi-hop agents need stronger fault tolerance and that
such support should be *carried* by the agent.  Carrying it must not eat
the mobility win: this bench runs the campus itinerary with and without
per-hop checkpoint-to-cabinet and prices the insurance.
"""

from repro.bench.experiments import run_r1


def test_r1_checkpoint_overhead(bench_once):
    report = bench_once(run_r1)
    print()
    print(report.render())

    # Asynchronous checkpoints must not slow the itinerary measurably…
    assert report.extras["time_overhead"] < 0.10
    # …but they do cost real bytes (the insurance premium).
    assert report.extras["byte_overhead"] > 0.10
    rows = {row[0]: row for row in report.rows}
    assert rows["checkpoint-per-hop"][3] == rows["no-checkpointing"][3]
    assert report.all_claims_hold
