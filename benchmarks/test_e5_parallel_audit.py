"""E5 — fork-join parallel audit (extension of E4).

The paper's ``spawn()`` "resembles the Unix fork() system call"; this
bench uses it for what fork is for: one clone per campus server,
crawling concurrently.  Completion time must drop from the sum of the
per-server crawls (the sequential itinerary) toward the slowest one.
"""

from repro.bench.experiments import run_e5


def test_e5_parallel_audit(bench_once):
    report = bench_once(run_e5)
    print()
    print(report.render())

    rows = {row[0]: row for row in report.rows}
    sequential = rows["itinerant"]
    parallel = rows["parallel-mobile"]
    speedup = report.extras["speedup"]
    # 4 servers: expect better than 2x, bounded by 4x.
    assert 2.0 < speedup <= 4.0
    assert parallel[4] == sequential[4], "identical dead-link findings"
    assert report.all_claims_hold
