"""D1 — a second stationary mining application under the same wrapper.

The paper: mobile agents "can be used to add mobility to a general
class of stationary data mining applications that need to be close to
their data source."  This bench mobilises a completely different
program — an access-log analyzer with an extreme condensation ratio —
through the *unchanged* mobility wrapper and sweeps the log size.
"""

from repro.bench.experiments import run_d1


def test_d1_log_mining(bench_once):
    report = bench_once(run_d1)
    print()
    print(report.render())

    speedups = report.extras["speedups"]
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 5
    # The mobile agent's wire bytes stay flat while the log grows 25x.
    mobile_bytes = [row[5] for row in report.rows]
    assert max(mobile_bytes) < min(mobile_bytes) * 1.2
    assert report.all_claims_hold
