"""E2 — the paper's WAN extrapolation (section 5).

Paper: "If the client and server is separated by a wide area network and
the volume of data much greater, it is conceivable that the mobile
Webbot would be even faster than its stationary counterpart."

We sweep the client↔server link from the paper's 100 Mbit LAN down to a
512 Kbit WAN and assert the mobile agent's speedup grows monotonically.
"""

from repro.bench.experiments import run_e2


def test_e2_wan_sweep(bench_once):
    report = bench_once(run_e2)
    print()
    print(report.render())

    speedups = report.extras["speedups"]
    assert all(b >= a for a, b in zip(speedups, speedups[1:])), \
        f"speedups not monotone: {speedups}"
    # On the LAN the margin is modest (the paper's 16%-ish)...
    assert speedups[0] < 1.5
    # ...over a real WAN the mobile agent wins by an order of magnitude.
    assert speedups[-1] > 10
    assert report.all_claims_hold
