"""E1 — the paper's headline experiment (section 5).

Paper: "In a test, the Webbot scanned 917 html pages containing 3 MBytes
on our web-server ... executing a Webbot scan for invalid links on our
CS department server locally is 16% faster than doing it over a 100MBit
network."

We regenerate both rows (stationary-over-LAN vs mobile-at-server) on the
same 917-page / 3 MB synthetic workload and assert the paper's ratio
band: the local (mobile) run must win by a comparable margin.
"""

from repro.bench.experiments import run_e1


def test_e1_local_vs_remote(bench_once):
    report = bench_once(run_e1)
    print()
    print(report.render())

    ratio = report.extras["ratio_full_task"]
    # The paper's number is 1.16; we accept a band around it (the shape,
    # not the exact testbed constant).
    assert 1.05 <= ratio <= 1.35, f"ratio {ratio} outside the paper band"
    assert report.all_claims_hold

    # Both deployments mine the same result.
    by_mode = {}
    for mode, strategy, _t, _b, pages, dead in report.rows:
        by_mode.setdefault(mode, {})[strategy] = (pages, dead)
    for mode, strategies in by_mode.items():
        assert strategies["stationary"] == strategies["mobile"], mode

    # And the mobile agent moves orders of magnitude fewer bytes.
    rows = {(r[0], r[1]): r for r in report.rows}
    stationary_bytes = rows[("full-task", "stationary")][3]
    mobile_bytes = rows[("full-task", "mobile")][3]
    assert mobile_bytes < stationary_bytes / 10
