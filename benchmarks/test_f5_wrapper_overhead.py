"""F5 — wrapper stacking ablation (sections 4-5, Figure 5).

Paper: "Wrappers may be stacked in arbitrary depth by TAX".  The whole
wrapper story only works if stacking is cheap, so this benchmark
measures meet() round-trip latency against an agent wrapped in 0..8
logging wrappers and asserts a modest, roughly linear per-layer cost.
"""

import pytest

from repro.bench.experiments import run_f5


def test_f5_wrapper_overhead(bench_once):
    report = bench_once(run_f5)
    print()
    print(report.render())

    means = report.extras["means"]
    assert all(b >= a for a, b in zip(means, means[1:])), \
        "latency must not decrease with depth"
    assert means[-1] < means[0] * 2, "8 layers must stay under 2x"
    # Per-layer increments are roughly equal (linear stacking cost).
    increments = [b - a for a, b in zip(means, means[1:])]
    per_layer = (means[-1] - means[0]) / 8
    assert per_layer > 0
    depths = (0, 1, 2, 4, 8)
    for (d0, d1), inc in zip(zip(depths, depths[1:]), increments):
        assert inc == pytest.approx(per_layer * (d1 - d0), rel=0.25)
    assert report.all_claims_hold
