"""Micro-benchmarks for the substrates (real repeated-measurement use of
pytest-benchmark, complementing the single-shot experiment benches).

These guard the simulator's own performance: the experiment suite runs
hundreds of thousands of kernel events and codec round-trips, so
regressions here directly inflate research iteration time.
"""

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.sim.eventloop import Kernel
from repro.web.site import SiteSpec, generate_site
from repro.robot.webbot import extract_links


def make_briefcase(n_folders=8, n_elements=16, element_size=256):
    briefcase = Briefcase()
    for f in range(n_folders):
        folder = briefcase.folder(f"FOLDER-{f}")
        for e in range(n_elements):
            folder.push(bytes([e % 251]) * element_size)
    return briefcase


def test_codec_encode(benchmark):
    briefcase = make_briefcase()
    wire = benchmark(codec.encode, briefcase)
    assert len(wire) > 8 * 16 * 256


def test_codec_decode(benchmark):
    wire = codec.encode(make_briefcase())
    briefcase = benchmark(codec.decode, wire)
    assert len(briefcase) == 8


def test_kernel_event_throughput(benchmark):
    def run_10k_timeouts():
        kernel = Kernel()

        def proc():
            for _ in range(10_000):
                yield kernel.timeout(0.001)
        kernel.run_process(proc())
        return kernel.processed_events

    events = benchmark(run_10k_timeouts)
    assert events >= 10_000


def test_site_generation(benchmark):
    spec = SiteSpec(host="bench.test", n_pages=200, total_bytes=600_000,
                    seed=9)
    site = benchmark(generate_site, spec)
    assert site.n_pages == 200


def test_link_extraction(benchmark):
    site = generate_site(SiteSpec(host="bench.test", n_pages=50,
                                  total_bytes=200_000, seed=9))
    html = "".join(p.html for p in site.pages.values())
    links = benchmark(extract_links, html)
    assert len(links) > 100
