"""M1 — analytic model vs simulation.

The paper's thesis is an analytic claim about network vs computation
costs; this bench validates that a first-order pen-and-paper model
(:mod:`repro.bench.model`) predicts the simulated results across the
bandwidth sweep, and reports the predicted mobile/stationary crossover.
"""

from repro.bench.experiments import run_m1


def test_m1_model_validation(bench_once):
    report = bench_once(run_m1)
    print()
    print(report.render())

    assert report.extras["worst_rel_error"] < 0.25
    # The mobile agent should win at every simulated network, so the
    # predicted crossover must lie above the fastest link we simulate.
    assert report.extras["crossover_bandwidth"] > 100_000_000 / 8
    assert report.all_claims_hold
