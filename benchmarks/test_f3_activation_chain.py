"""F3 — the Figure-3 activation chain.

Figure 3 shows a source-carrying agent being activated: briefcase →
vm_c → ag_cc → ag_exec (compile) → vm_bin → run.  This benchmark
launches the same trivial agent as (a) installed software (py-ref),
(b) shipped-by-value code (py-marshal), (c) a signed binary (vm_bin),
and (d) source through the full compile chain (vm_source), and compares
remote-activation latency.
"""

from repro.bench.experiments import run_f3


def test_f3_activation_chain(bench_once):
    report = bench_once(run_f3)
    print()
    print(report.render())

    latencies = report.extras["latencies"]
    # The compile chain must actually involve the services and cost more.
    assert latencies["py-source"] > latencies["py-marshal"]
    # Pre-compiled launches are within the same small ballpark of each
    # other (vm_bin's signature check is cheap).
    assert latencies["binary(signed)"] < latencies["py-marshal"] * 3
    assert latencies["py-ref"] <= latencies["py-marshal"] * 1.5
    assert report.all_claims_hold
