"""A1 — condensation ablation (the paper's section-1 premise).

"Data mining algorithms seek to create a meta description of the mined
data which is more compact than the data itself" — that compaction is
why moving the computation wins.  This ablation disables the
condensation step (the agent ships its raw crawl log home instead of
the dead-link report) on a 1 Mbit WAN and quantifies how much of the
win comes from condensing vs merely relocating.
"""

from repro.bench.experiments import run_a1


def test_a1_condensation_ablation(bench_once):
    report = bench_once(run_a1)
    print()
    print(report.render())

    rows = {row[0]: row for row in report.rows}
    stationary = rows["stationary"]
    condensed = rows["mobile-condensed"]
    raw = rows["mobile-raw"]

    # Condensing shrinks the shipped bytes substantially.
    assert condensed[2] < raw[2] / 2
    # Relocation alone already beats pulling the pages (the raw log is
    # still far smaller than the site).
    assert raw[1] < stationary[1]
    assert raw[2] < stationary[2]
    # And both mobile variants report the same dead links.
    assert condensed[3] == raw[3]
    assert report.all_claims_hold
