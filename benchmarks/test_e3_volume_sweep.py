"""E3 — gain vs mined volume (section 5's "volume of data much greater").

Sweeps the site size from 10 pages to 1500 pages (at the paper's mean
page size) on the 100 Mbit LAN and checks that the mobile agent's
advantage grows with volume — and that at trivial volumes shipping the
agent barely pays, which is the flip side of the paper's argument.
"""

from repro.bench.experiments import run_e3


def test_e3_volume_sweep(bench_once):
    report = bench_once(run_e3)
    print()
    print(report.render())

    speedups = report.extras["speedups"]
    assert speedups[-1] > speedups[0]
    # The paper-scale point (917 pages) must sit in the E1 band.
    paper_point = [row for row in report.rows if row[0] == 917]
    assert paper_point, "sweep must include the paper's 917-page point"
    assert 1.05 <= paper_point[0][4] <= 1.35
    assert report.all_claims_hold
