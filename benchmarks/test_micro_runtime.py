"""Micro-benchmarks for the agent runtime (real-time regression guards).

The experiment suite launches thousands of agents and routes tens of
thousands of messages; these benches keep the hot paths honest.
"""

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.system.cluster import TaxCluster
from repro.vm import loader


def echo_once_agent(ctx, bc):
    message = yield from ctx.recv()
    yield from ctx.reply(message, Briefcase({"E": ["ok"]}))
    return "done"


def test_agent_launch_throughput(benchmark):
    def launch_20():
        cluster = TaxCluster()
        node = cluster.add_node("bench.test")
        driver = node.driver()

        def scenario():
            for i in range(20):
                briefcase = Briefcase()
                loader.install_payload(
                    briefcase, loader.pack_ref(echo_once_agent),
                    agent_name=f"echo{i}")
                reply = yield from driver.meet(
                    cluster.vm_uri("bench.test"), briefcase, timeout=60)
                assert reply.get_text(wellknown.STATUS) == "ok"
        cluster.run(scenario())
        return node.vms["vm_python"].launched
    launched = benchmark(launch_20)
    assert launched == 20


def test_meet_round_trip_throughput(benchmark):
    cluster = TaxCluster()
    node = cluster.add_node("bench.test")
    driver = node.driver()

    def do_50_admin_meets():
        def scenario():
            for _ in range(50):
                request = Briefcase()
                request.put(wellknown.OP, "list")
                reply = yield from driver.meet(
                    AgentUri.parse("firewall"), request, timeout=60)
                assert reply.get_text(wellknown.STATUS) == "ok"
            return 50
        return cluster.run(scenario())
    count = benchmark(do_50_admin_meets)
    assert count == 50


def stream_sink_agent(ctx, bc):
    from repro.agent import streams
    payload = yield from streams.recv_stream(ctx, timeout=600)
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"SIZE": [str(len(payload))]}))
    return "done"


def test_stream_transfer_real_cost(benchmark):
    from repro.agent import streams

    def stream_100kb():
        cluster = TaxCluster()
        cluster.add_node("bench.test")
        driver = cluster.node("bench.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(stream_sink_agent),
                               agent_name="sink")
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            reply = yield from driver.meet(cluster.vm_uri("bench.test"),
                                           briefcase, timeout=60)
            sink = reply.get_text("AGENT-URI")
            yield from streams.send_stream(driver, sink, b"b" * 100_000)
            message = yield from driver.recv(timeout=600)
            return int(message.briefcase.get_text("SIZE"))
        return cluster.run(scenario())
    assert benchmark(stream_100kb) == 100_000
