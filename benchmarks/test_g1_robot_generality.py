"""G1 — wrapper generality across robots.

Paper section 5: "This example demonstrates a general principle in
which ... mobile agents can be used to add mobility to a general class
of stationary data mining applications."  This bench mobilises a second
robot — breadth-first, host-list scoped, inline off-site validation;
sharing no code with the Webbot beyond the self-containment contract —
through the *unchanged* mobility wrapper.
"""

from repro.bench.experiments import run_g1


def test_g1_robot_generality(bench_once):
    report = bench_once(run_g1)
    print()
    print(report.render())

    assert report.extras["agreement"], \
        "both robots must find exactly the same dead links"
    rows = {row[0].split()[0]: row for row in report.rows}
    webbot, checkbot = rows["Webbot"], rows["Checkbot"]
    # Comparable crawl volume and time: the work is the site, not the robot.
    assert checkbot[3] == webbot[3]
    assert 0.5 < checkbot[1] / webbot[1] < 2.0
    assert report.all_claims_hold
