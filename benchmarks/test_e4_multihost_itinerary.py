"""E4 — the campus audit (section 5).

Paper: "if we where to check all the servers at the university campus
(the whole uit.no domain) ... Webbot needs to be run several times, and
preferably relocated to a new host between each execution."

One itinerant agent hops the campus LAN and ships a single condensed
report home over the slow client link; the baseline crawls every server
remotely from the client.  The itinerant agent must win decisively on
both time and bytes while finding exactly the same dead links.
"""

from repro.bench.experiments import run_e4


def test_e4_multihost_itinerary(bench_once):
    report = bench_once(run_e4)
    print()
    print(report.render())

    rows = {row[0]: row for row in report.rows}
    remote = rows["repeated-remote"]
    itinerant = rows["itinerant"]
    assert itinerant[1] < remote[1] / 2, "itinerant must be >2x faster"
    assert itinerant[2] < remote[2] / 5, "itinerant must ship >5x less"
    assert itinerant[4] == remote[4], "identical dead-link findings"
    assert report.extras["speedup"] > 1.5
    assert report.all_claims_hold
