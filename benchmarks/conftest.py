"""Shared helpers for the benchmark suite.

Every experiment benchmark runs the full simulated experiment exactly
once inside pytest-benchmark (the simulation is deterministic, so
repetition adds nothing but wall time), prints the paper-vs-measured
table, and asserts that the paper's claims reproduce.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """pedantic single-shot benchmark of a deterministic experiment."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
