"""The ``repro lint`` CLI: self-run gate, determinism, SARIF, exits.

The load-bearing assertions here mirror what CI enforces:

- linting this repository's own source tree is clean modulo the
  committed baseline (exit 0);
- the JSON document is byte-identical across runs (CI diffs two runs);
- seeded fixture files exit non-zero with the expected rule ids.
"""

import json
import os

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
CASES = os.path.join(FIXTURES, "cases")


def run_lint(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


def test_self_run_is_clean_modulo_baseline(capsys):
    """``repro lint`` over src/repro passes with the committed baseline."""
    code, out = run_lint(capsys, "--json")
    document = json.loads(out)
    assert code == 0
    assert document["summary"]["new"] == 0
    assert any(path.endswith("core/errors.py")
               for path in document["analyzed"])


def test_self_run_json_is_byte_identical(capsys):
    code_a, out_a = run_lint(capsys, "--json")
    code_b, out_b = run_lint(capsys, "--json")
    assert (code_a, code_b) == (0, 0)
    assert out_a == out_b


def test_fixture_tree_fails_with_expected_rules(capsys):
    code, out = run_lint(capsys, CASES, "--json", "--no-baseline")
    assert code == 1
    document = json.loads(out)
    rules = set(document["summary"]["by_rule"])
    assert {"DET001", "DET002", "DET004", "DET005", "DET006",
            "ERR001", "KER001", "MUT001", "MUT002"} <= rules
    assert document["summary"]["new"] == document["summary"]["total"] > 0


def test_single_fixture_exit_and_finding_ids(capsys):
    path = os.path.join(CASES, "det006_popitem.py")
    code, out = run_lint(capsys, path, "--json", "--no-baseline")
    assert code == 1
    findings = json.loads(out)["findings"]
    assert [f["rule"] for f in findings] == ["DET006"]
    assert findings[0]["line"] == 5
    assert findings[0]["fingerprint"]


def test_text_output_mentions_locations(capsys):
    path = os.path.join(CASES, "det006_popitem.py")
    code, out = run_lint(capsys, path, "--no-baseline")
    assert code == 1
    assert "det006_popitem.py:5:" in out
    assert "DET006" in out


def test_sarif_document(tmp_path, capsys):
    sarif_path = str(tmp_path / "lint.sarif")
    code, _out = run_lint(capsys, CASES, "--json", "--no-baseline",
                          "--sarif", sarif_path)
    assert code == 1
    document = json.loads(open(sarif_path).read())
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    # Static pack and sanitizer rules are both declared to the viewer.
    assert {"DET001", "SAN001", "SAN002"} <= rule_ids
    assert run["results"]
    assert all(r["baselineState"] == "new" for r in run["results"])
    assert all(r["partialFingerprints"]["reproLint/v1"]
               for r in run["results"])


def test_write_then_apply_baseline(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    code, out = run_lint(capsys, CASES, "--write-baseline",
                         "--baseline", baseline)
    assert code == 0
    assert "wrote baseline" in out
    code, out = run_lint(capsys, CASES, "--json", "--baseline", baseline)
    assert code == 0
    document = json.loads(out)
    assert document["summary"]["new"] == 0
    assert document["summary"]["baselined"] == \
        document["summary"]["total"] > 0


def test_syntax_error_exits_2(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    code, _out = run_lint(capsys, str(bad))
    assert code == 2
