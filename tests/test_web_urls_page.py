"""Unit tests for URL handling and page rendering."""

import pytest

from repro.web import urls
from repro.web.page import make_filler, render_page


class TestUrlParse:
    def test_basic(self):
        url = urls.parse("http://www.cs.uit.no/index.html")
        assert url.host == "www.cs.uit.no"
        assert url.port == 80
        assert url.path == "/index.html"

    def test_explicit_port(self):
        url = urls.parse("http://host:8080/p")
        assert url.port == 8080
        assert str(url) == "http://host:8080/p"

    def test_default_port_omitted_in_str(self):
        assert str(urls.parse("http://host:80/p")) == "http://host/p"

    def test_host_lowercased(self):
        assert urls.parse("http://WWW.CS.UIT.NO/").host == "www.cs.uit.no"

    def test_bare_host_gets_root_path(self):
        assert urls.parse("http://host").path == "/"

    def test_fragment_stripped(self):
        assert urls.parse("http://h/p.html#sec").path == "/p.html"

    @pytest.mark.parametrize("bad", [
        "ftp://host/x", "relative/path", "http://", "http:///p",
        "http://host:0/x", "http://host:99999/x", "http://host:abc/x", 42,
    ])
    def test_rejects(self, bad):
        with pytest.raises(urls.UrlError):
            urls.parse(bad)

    def test_site_key_includes_port(self):
        assert urls.parse("http://h/p").site == "h"
        assert urls.parse("http://h:8080/p").site == "h:8080"


class TestPathNormalization:
    @pytest.mark.parametrize("raw,expected", [
        ("/a/b/../c", "/a/c"),
        ("/a/./b", "/a/b"),
        ("/a//b", "/a/b"),
        ("/../a", "/a"),
        ("/a/b/", "/a/b/"),
        ("/", "/"),
        ("no-slash", "/no-slash"),
    ])
    def test_cases(self, raw, expected):
        assert urls.normalize_path(raw) == expected


class TestJoin:
    BASE = urls.parse("http://h/dir/page.html")

    def test_absolute_replaces(self):
        joined = urls.join(self.BASE, "http://other/x")
        assert joined.host == "other" and joined.path == "/x"

    def test_root_relative(self):
        assert urls.join(self.BASE, "/top.html").path == "/top.html"

    def test_relative_resolves_against_directory(self):
        assert urls.join(self.BASE, "sibling.html").path == \
            "/dir/sibling.html"

    def test_dotdot_relative(self):
        assert urls.join(self.BASE, "../up.html").path == "/up.html"

    def test_fragment_only_is_self(self):
        assert urls.join(self.BASE, "#anchor") == self.BASE

    def test_empty_is_self(self):
        assert urls.join(self.BASE, "") == self.BASE

    def test_same_site_and_prefix(self):
        a = urls.parse("http://h/x")
        b = urls.parse("http://h:80/y")
        assert urls.same_site(a, b)
        assert urls.has_prefix(a, "http://h/")


class TestPageRendering:
    def test_links_embedded_and_escaped(self):
        page = render_page("/p.html", "T", ['/a.html', '/b"q.html'],
                           ["one", "two"], target_bytes=0)
        assert 'href="/a.html"' in page.html
        assert "&quot;" in page.html  # quote escaped in attribute
        assert page.links == ['/a.html', '/b"q.html']

    def test_target_size_approximated(self):
        page = render_page("/p.html", "T", [], [], target_bytes=5000)
        assert abs(page.size - 5000) < 100

    def test_minimum_size_without_padding(self):
        page = render_page("/p.html", "T", [], [], target_bytes=1)
        assert page.size > 50  # the skeleton itself

    def test_mismatched_anchor_count_rejected(self):
        with pytest.raises(ValueError):
            render_page("/p", "T", ["/a"], [], 100)

    def test_filler_deterministic_and_sized(self):
        assert make_filler(100, salt=1) == make_filler(100, salt=1)
        assert len(make_filler(100, salt=1)) == 100
        assert make_filler(0) == ""

    def test_page_size_is_utf8_bytes(self):
        page = render_page("/p", "Tø", [], [], 0)
        assert page.size == len(page.html.encode("utf-8"))
