"""Integration: failure injection — partitions, kills, trust boundaries."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import CommTimeoutError
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.mining.strategies import CrawlTask, run_mobile
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
from repro.system.bootstrap import build_campus_testbed
from repro.system.cluster import TaxCluster
from repro.vm import loader
from tests.conftest import small_site_spec


def idler_agent(ctx, bc):
    yield from ctx.sleep(1_000_000)
    return "overslept"


def hopper_agent(ctx, bc):
    """Tries each HOSTS entry; records outcomes; reports home."""
    while True:
        nxt = bc.folder("HOSTS").pop_first()
        if nxt is None:
            yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
            return "done"
        try:
            yield from ctx.go(nxt.as_text())
        except Exception:
            bc.append("MISSED", nxt.as_text())


class TestPartitions:
    @pytest.fixture
    def world(self):
        cluster = TaxCluster()
        for name in ("a.test", "b.test", "c.test"):
            cluster.add_node(name)
        for pair in (("a.test", "b.test"), ("b.test", "c.test"),
                     ("a.test", "c.test")):
            cluster.network.link(*pair, latency=LATENCY_LAN,
                                 bandwidth=BANDWIDTH_100MBIT)
        return cluster

    def test_partitioned_hop_skipped_rest_of_itinerary_continues(
            self, world):
        world.network.set_link_up("a.test", "b.test", False)
        driver = world.node("a.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(hopper_agent),
                               agent_name="hopper")
        briefcase.folder("HOSTS").push_all(
            ["tacoma://b.test/vm_python", "tacoma://c.test/vm_python"])
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            yield from driver.meet(world.vm_uri("a.test"), briefcase,
                                   timeout=600)
            final = yield from driver.recv(timeout=600)
            return final.briefcase
        result = world.run(scenario())
        assert result.folder("MISSED").texts() == \
            ["tacoma://b.test/vm_python"]

    def test_partition_heals_and_agent_gets_through(self, world):
        world.network.set_link_up("a.test", "b.test", False)
        driver = world.node("a.test").driver()

        def scenario():
            with pytest.raises(Exception):
                yield from driver.send(
                    AgentUri.parse("tacoma://b.test/ag_fs"), Briefcase())
            world.network.set_link_up("a.test", "b.test", True)
            ok = yield from driver.send(
                AgentUri.parse("tacoma://b.test/ag_fs"), Briefcase())
            return ok
        assert world.run(scenario()) is True

    def test_meet_times_out_cleanly_when_reply_lost(self, world):
        """Partition after the request leaves: the reply can't return."""
        driver = world.node("a.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(idler_agent),
                               agent_name="idler")

        def scenario():
            # Idler never replies to meets; the meet must time out.
            reply = yield from driver.meet(world.vm_uri("b.test"),
                                           briefcase, timeout=600)
            idler_uri = reply.get_text("AGENT-URI")
            with pytest.raises(CommTimeoutError):
                yield from driver.meet(AgentUri.parse(idler_uri),
                                       Briefcase(), timeout=5)
            return "ok"
        assert world.run(scenario()) == "ok"


class TestKillDuringWork:
    def test_killed_agent_never_reports(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(idler_agent),
                               agent_name="victim")

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            victim = AgentUri.parse(reply.get_text("AGENT-URI"))
            admin = Briefcase()
            admin.put(wellknown.OP, "kill")
            admin.put(wellknown.ARGS, {"instance": victim.instance})
            yield from driver.meet(AgentUri.parse("firewall"), admin,
                                   timeout=60)
            # The victim's registration is gone; messages to it queue and
            # then expire rather than reaching anything.
            ok = yield from driver.send(victim, Briefcase(),
                                        queue_timeout=1)
            yield single_cluster.kernel.timeout(3)
            return ok, node.firewall.stats.expired
        queued, expired = single_cluster.run(scenario())
        assert queued is True and expired >= 1


class TestTrustBoundaries:
    def test_untrusted_program_cannot_run_at_remote_site(self):
        """A webbot program signed by an untrusted principal is refused
        by the remote ag_exec, and the failure comes home in FAILURES."""
        from repro.system.bootstrap import build_linkcheck_testbed
        from repro.mining.webbot_agent import (
            build_webbot_program, crawl_args, make_mwwebbot)
        testbed = build_linkcheck_testbed(spec=small_site_spec())
        cluster = testbed.cluster
        cluster.add_principal("shady", trusted=False)
        program = build_webbot_program(cluster.keychain, "shady")
        site = testbed.site_of("www.cs.uit.no")
        driver = testbed.client.driver(name="home", principal="shady")
        briefcase = make_mwwebbot(
            program,
            [(str(cluster.vm_uri("www.cs.uit.no")),
              crawl_args(site.root_url))],
            home_uri=str(driver.uri))

        def scenario():
            reply = yield from driver.meet(
                cluster.vm_uri("client.cs.uit.no"), briefcase,
                timeout=10_000)
            assert reply.get_text(wellknown.STATUS) == "ok"
            final = yield from driver.recv(timeout=100_000)
            failures = [e.as_json()
                        for e in final.briefcase.folder("FAILURES")]
            results = [e.as_json()
                       for e in final.briefcase.folder(wellknown.RESULTS)]
            return failures, results
        failures, results = testbed.cluster.run(scenario())
        assert results == []
        assert len(failures) == 1
        assert failures[0]["phase"] == "exec"
        assert "not trusted" in failures[0]["error"]


class TestCampusPartialFailure:
    def test_one_dead_server_does_not_sink_the_audit(self):
        testbed = build_campus_testbed(n_servers=3, pages_per_server=12,
                                       bytes_per_server=25_000)
        # Partition one campus server from everything.
        dead = testbed.servers[1].host.name
        for other in testbed.cluster.network.hosts:
            if other != dead:
                try:
                    testbed.cluster.network.set_link_up(dead, other, False)
                except Exception:
                    pass
        tasks = [CrawlTask.for_site(testbed.sites[name])
                 for name in sorted(testbed.sites)]
        metrics = run_mobile(testbed, tasks, timeout=1_000_000)
        assert len(metrics.reports) == 2
        assert len(metrics.failures) == 1
        assert dead in metrics.failures[0]["host"]
