"""Integration: service-composition workflows (cron launches, cabinet
diffing) and the CLI."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.vm import loader


def beacon_agent(ctx, bc):
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"BEACON": [f"t={ctx.now:.0f}"]}))
    return "done"


class TestCronLaunchedAgents:
    def test_cron_can_launch_an_agent_later(self, single_cluster):
        """The deferred briefcase is a launch briefcase addressed to a
        VM — ag_cron needs no special agent-launching support."""
        node = single_cluster.node("solo.test")
        driver = node.driver()
        launch = Briefcase()
        loader.install_payload(launch, loader.pack_ref(beacon_agent),
                               agent_name="beacon")
        launch.put("HOME", str(driver.uri))
        launch.put(wellknown.ARGS, {
            "delay": 100.0,
            "target": str(single_cluster.vm_uri("solo.test"))})

        def scenario():
            yield from driver.call_service("ag_cron", "schedule", launch)
            message = yield from driver.recv(timeout=1_000)
            return (single_cluster.kernel.now,
                    message.briefcase.get_text("BEACON"))
        now, beacon = single_cluster.run(scenario())
        assert now >= 100.0
        assert beacon == "t=100"

    def test_two_scheduled_launches_fire_in_order(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def schedule(delay):
            launch = Briefcase()
            loader.install_payload(launch, loader.pack_ref(beacon_agent),
                                   agent_name="beacon")
            launch.put("HOME", str(driver.uri))
            launch.put(wellknown.ARGS, {
                "delay": delay,
                "target": str(single_cluster.vm_uri("solo.test"))})
            return driver.call_service("ag_cron", "schedule", launch)

        def scenario():
            yield from schedule(50.0)
            yield from schedule(10.0)
            beacons = []
            for _ in range(2):
                message = yield from driver.recv(timeout=1_000)
                beacons.append(message.briefcase.get_text("BEACON"))
            return beacons
        assert single_cluster.run(scenario()) == ["t=10", "t=50"]


class TestCli:
    def test_site_command(self, capsys):
        from repro.cli import main
        assert main(["site", "--pages", "30", "--bytes", "20000"]) == 0
        out = capsys.readouterr().out
        assert "pages         : 30" in out

    def test_crawl_command_both_strategies(self, capsys):
        from repro.cli import main
        rc = main(["crawl", "--pages", "25", "--bytes", "20000",
                   "--max-depth", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stationary" in out and "mobile" in out and "speedup" in out

    def test_experiments_command_single(self, capsys):
        from repro.cli import main
        assert main(["experiments", "F5"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out and "F5" in out

    def test_unknown_experiment_errors(self):
        from repro.cli import main
        with pytest.raises(KeyError):
            main(["experiments", "Z9"])

    def test_parser_rejects_missing_command(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
