"""Scale smoke tests: bigger clusters and longer itineraries.

These guard against accidental O(n^2) behaviour in the kernel, the
firewall directory, or the registry — a 25-host tour must stay cheap in
both real and simulated time.
"""

import time

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
from repro.system.cluster import TaxCluster
from repro.vm import loader

N_HOSTS = 25


def tour_agent(ctx, bc):
    bc.append("SEEN", ctx.host_name)
    nxt = bc.folder("HOSTS").pop_first()
    if nxt is None:
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
        return "done"
    yield from ctx.go(nxt.as_text())


@pytest.fixture(scope="module")
def big_cluster():
    cluster = TaxCluster()
    names = [f"n{i:02d}.scale.test" for i in range(N_HOSTS)]
    for name in names:
        cluster.add_node(name)
    # A hub-and-spoke topology plus a ring: sparse but connected.
    for name in names[1:]:
        cluster.network.link(names[0], name, latency=LATENCY_LAN,
                             bandwidth=BANDWIDTH_100MBIT)
    for a, b in zip(names, names[1:] + names[:1]):
        cluster.network.link(a, b, latency=LATENCY_LAN,
                             bandwidth=BANDWIDTH_100MBIT)
    return cluster, names


class TestScale:
    def test_agent_tours_25_hosts(self, big_cluster):
        cluster, names = big_cluster
        driver = cluster.node(names[0]).driver(name="tour-home")
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(tour_agent),
                               agent_name="tourist")
        # Ring order keeps every hop on an existing link.
        briefcase.folder("HOSTS").push_all(
            [f"tacoma://{name}/vm_python" for name in names[1:]])
        briefcase.put("HOME", str(driver.uri))

        start_real = time.monotonic()

        def scenario():
            reply = yield from driver.meet(cluster.vm_uri(names[0]),
                                           briefcase, timeout=600)
            assert reply.get_text(wellknown.STATUS) == "ok"
            final = yield from driver.recv(timeout=600)
            return final.briefcase.folder("SEEN").texts()
        seen = cluster.run(scenario())
        elapsed_real = time.monotonic() - start_real
        assert seen == names
        assert elapsed_real < 10.0, "25-host tour should be fast in real time"
        # Simulated: ~24 hops of small transfers on a LAN.
        assert cluster.kernel.now < 5.0

    def test_many_concurrent_meets(self, big_cluster):
        """60 drivers meet the hub's ag_locator concurrently; every call
        must complete and the registry stay consistent."""
        cluster, names = big_cluster
        hub = names[0]
        locator = f"tacoma://{hub}//ag_locator"
        drivers = [cluster.node(names[(i % (N_HOSTS - 1)) + 1]).driver(
            name=f"bulk{i}") for i in range(60)]

        def one(i, driver):
            request = Briefcase()
            request.put(wellknown.OP, "update")
            request.put(wellknown.ARGS, {"name": f"svc{i}",
                                         "uri": f"tacoma://{hub}//x:{i:x}"})
            from repro.core.uri import AgentUri
            reply = yield from driver.meet(AgentUri.parse(locator), request,
                                           timeout=600)
            return reply.get_text(wellknown.STATUS)

        processes = [cluster.kernel.spawn(one(i, driver))
                     for i, driver in enumerate(drivers)]

        def waiter():
            done = yield cluster.kernel.all_of(processes)
            return list(done.values())
        statuses = cluster.run(waiter())
        assert statuses == ["ok"] * 60
