"""Determinism: the whole stack is a pure function of its seeds.

Every claim in EXPERIMENTS.md relies on this: two runs of the same
experiment must produce byte-identical tables, and the paper-named API
must drive the same machinery as the Pythonic one.
"""

from repro.bench.experiments import run_f3, run_f5
from repro.mining.strategies import CrawlTask, run_mobile, run_stationary
from repro.system.bootstrap import build_linkcheck_testbed
from tests.conftest import small_site_spec


class TestDeterminism:
    def test_strategy_runs_are_bit_identical(self):
        def one_run():
            testbed = build_linkcheck_testbed(spec=small_site_spec())
            task = CrawlTask.for_site(testbed.site_of("www.cs.uit.no"))
            stationary = run_stationary(testbed, [task])
            mobile = run_mobile(testbed, [task])
            return (stationary.elapsed_seconds, stationary.remote_bytes,
                    stationary.reports, mobile.elapsed_seconds,
                    mobile.remote_bytes, mobile.reports)
        assert one_run() == one_run()

    def test_experiment_reports_are_identical(self):
        a = run_f5(depths=(0, 2), round_trips=10)
        b = run_f5(depths=(0, 2), round_trips=10)
        assert a.rows == b.rows
        assert a.extras == b.extras

    def test_f3_chain_latencies_stable(self):
        a = run_f3()
        b = run_f3()
        assert a.extras["latencies"] == b.extras["latencies"]


class TestPaperApiCoverage:
    def test_bc_send_bc_recv_go_spawn_names(self, pair_cluster):
        """Exercise the remaining paper-named aliases end to end."""
        from repro.agent import api
        from repro.core.briefcase import Briefcase
        from repro.core import wellknown
        from repro.vm import loader

        driver = pair_cluster.node("alpha.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(api_prober),
                               agent_name="prober")
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            reply = yield from api.meet(
                driver, pair_cluster.vm_uri("alpha.test"), briefcase,
                timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok"
            seen = []
            for _ in range(2):
                message = yield from api.bc_recv(driver, timeout=60)
                seen.append(message.briefcase.get_text("WHERE"))
            return sorted(seen)
        assert pair_cluster.run(scenario()) == ["alpha.test", "beta.test"]


def api_prober(ctx, bc):
    """Uses only the paper-named API: spawn a clone, both report home."""
    from repro.agent import api
    from repro.core.briefcase import Briefcase
    role = bc.get_text("ROLE")
    if role == "clone":
        yield from api.bc_send(ctx, bc.get_text("HOME"),
                               Briefcase({"WHERE": [ctx.host_name]}))
        return "clone-done"
    bc.put("ROLE", "clone")
    yield from api.spawn(ctx, "tacoma://beta.test/vm_python")
    yield from api.bc_send(ctx, bc.get_text("HOME"),
                           Briefcase({"WHERE": [ctx.host_name]}))
    return "parent-done"
