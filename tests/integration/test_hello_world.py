"""Integration: the Figure-4 hello-world itinerant agent, end to end."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
from repro.system.cluster import TaxCluster
from repro.vm import loader

#: The Figure-4 agent, transliterated: greet, pop the next HOSTS entry,
#: terminate if exhausted, otherwise go there (handling failure).
HELLO_SOURCE = '''
def hello_agent(ctx, bc):
    bc.append("GREETINGS", "Hello world from " + ctx.host_name)
    nxt = bc.folder("HOSTS").pop_first()
    if nxt is None:
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
        return "done"
    try:
        yield from ctx.go(nxt.as_text())
    except Exception as exc:
        bc.append("GREETINGS", "Unable to reach " + nxt.as_text())
        yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
'''


@pytest.fixture
def triangle():
    cluster = TaxCluster()
    for name in ("a.test", "b.test", "c.test"):
        cluster.add_node(name)
    for pair in (("a.test", "b.test"), ("b.test", "c.test"),
                 ("a.test", "c.test")):
        cluster.network.link(*pair, latency=LATENCY_LAN,
                             bandwidth=BANDWIDTH_100MBIT)
    return cluster


def launch_hello(cluster, hosts, payload_kind="marshal"):
    source_payload = loader.pack_source(HELLO_SOURCE, "hello_agent")
    if payload_kind == "marshal":
        payload = loader.compile_source(source_payload)
        vm = "vm_python"
    else:
        payload = source_payload
        vm = "vm_source"
    briefcase = Briefcase()
    loader.install_payload(briefcase, payload, agent_name="hello")
    briefcase.folder("HOSTS").push_all(hosts)
    driver = cluster.node("a.test").driver()
    briefcase.put("HOME", str(driver.uri))

    def scenario():
        reply = yield from driver.meet(cluster.vm_uri("a.test", vm),
                                       briefcase, timeout=120)
        assert reply.get_text(wellknown.STATUS) == "ok", \
            reply.get_text(wellknown.ERROR)
        final = yield from driver.recv(timeout=600)
        return final.briefcase
    return cluster.run(scenario())


class TestHelloWorld:
    def test_visits_every_host_in_order(self, triangle):
        result = launch_hello(triangle, ["tacoma://b.test/vm_python",
                                         "tacoma://c.test/vm_python"])
        assert result.folder("GREETINGS").texts() == [
            "Hello world from a.test",
            "Hello world from b.test",
            "Hello world from c.test",
        ]

    def test_itinerary_folder_consumed(self, triangle):
        result = launch_hello(triangle, ["tacoma://b.test/vm_python"])
        assert len(result.folder("HOSTS")) == 0

    def test_unreachable_host_reported(self, triangle):
        result = launch_hello(triangle, ["tacoma://ghost.test/vm_python"])
        greetings = result.folder("GREETINGS").texts()
        assert greetings[0] == "Hello world from a.test"
        assert greetings[1].startswith("Unable to reach")

    def test_source_agent_hops_through_compile_chains(self, triangle):
        """vm_source at every hop: the agent re-compiles per landing pad
        (its briefcase still carries the original source payload)."""
        result = launch_hello(triangle,
                              ["tacoma://b.test/vm_source",
                               "tacoma://c.test/vm_source"],
                              payload_kind="source")
        assert result.folder("GREETINGS").texts() == [
            "Hello world from a.test",
            "Hello world from b.test",
            "Hello world from c.test",
        ]
        # Each landing pad ran its own compile chain.
        for host in ("b.test", "c.test"):
            assert triangle.node(host).services["ag_cc"].requests_handled \
                == 1

    def test_message_sent_ahead_of_migration(self, triangle):
        """Queueing for agents that 'have not yet arrived at the site'."""
        driver = triangle.node("a.test").driver()
        beta_driver = triangle.node("b.test").driver(name="beta-driver")

        source = '''
def patient_agent(ctx, bc):
    message = yield from ctx.recv(timeout=60)
    bc.append("GOT", message.briefcase.get_text("NOTE"))
    yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
    return "ok"
'''
        payload = loader.compile_source(
            loader.pack_source(source, "patient_agent"))
        briefcase = Briefcase()
        loader.install_payload(briefcase, payload, agent_name="patient")
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            # The note is sent to b.test BEFORE the agent is launched
            # there; the firewall queues it for the arrival.
            note = Briefcase({"NOTE": ["waiting for you"]})
            yield from beta_driver.send(
                AgentUri.parse("tacoma://b.test/patient"), note,
                queue_timeout=120)
            yield triangle.kernel.timeout(5)
            reply = yield from driver.meet(
                triangle.vm_uri("b.test"), briefcase, timeout=120)
            assert reply.get_text(wellknown.STATUS) == "ok"
            final = yield from driver.recv(timeout=120)
            return final.briefcase.folder("GOT").texts()
        assert triangle.run(scenario()) == ["waiting for you"]

    def test_agent_state_survives_hops_but_snapshots_are_isolated(
            self, triangle):
        result = launch_hello(triangle, ["tacoma://b.test/vm_python"])
        # The returned briefcase is a snapshot: it still carries the
        # agent's code (briefcases hold code + state + results).
        assert result.has(wellknown.CODE)
        assert result.get_text(wellknown.CODE_KIND) == loader.KIND_MARSHAL
