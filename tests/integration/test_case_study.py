"""Integration: the full Figure-5 case study on a small testbed."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.mining.strategies import CrawlTask, run_mobile, run_stationary
from repro.mining.webbot_agent import (
    WEBBOT_PRINCIPAL,
    build_webbot_program,
    crawl_args,
    make_mwwebbot,
    query_status,
)
from repro.robot.report import DeadLinkReport
from repro.system.bootstrap import build_linkcheck_testbed
from tests.conftest import small_site_spec


@pytest.fixture
def testbed():
    return build_linkcheck_testbed(spec=small_site_spec())


def truth_urls(site):
    """Ground-truth dead URLs as absolute strings."""
    urls = set()
    for _src, href in site.truth.dead_internal:
        urls.add(f"http://{site.host}{href}")
    for _src, href in site.truth.dead_external:
        urls.add(href)
    return urls


class TestCaseStudyCorrectness:
    def test_mobile_report_matches_ground_truth_subset(self, testbed):
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        metrics = run_mobile(testbed, [task])
        assert len(metrics.reports) == 1
        report = DeadLinkReport.from_json(
            __import__("json").dumps(metrics.reports[0]))
        found = set(report.dead_urls())
        truth = truth_urls(site)
        assert found, "must find some dead links"
        assert found <= truth, "no false positives"
        # Depth-limited crawling may miss some; but coverage must be high
        # with a generous depth.
        assert len(found) >= len(truth) * 0.5

    def test_prefix_keeps_robot_on_site(self, testbed):
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        metrics = run_mobile(testbed, [task])
        report = metrics.reports[0]
        # Pages scanned can never exceed the site's own page count: the
        # prefix constraint kept the robot from crawling external hosts.
        assert 0 < report["pages_scanned"] <= site.n_pages

    def test_mobile_and_stationary_reports_identical(self, testbed):
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        stationary = run_stationary(testbed, [task])
        mobile = run_mobile(testbed, [task])
        s_report = stationary.reports[0]
        m_report = mobile.reports[0]
        assert s_report["pages_scanned"] == m_report["pages_scanned"]
        s_urls = sorted(r["url"] for r in s_report["invalid"])
        m_urls = sorted(r["url"] for r in m_report["invalid"])
        assert s_urls == m_urls

    def test_second_pass_covers_external_links(self, testbed):
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        with_second = run_mobile(testbed, [task])
        testbed2 = build_linkcheck_testbed(spec=small_site_spec())
        task2 = CrawlTask.for_site(testbed2.site_of("www.cs.uit.no"),
                                   check_rejected=False)
        without_second = run_mobile(testbed2, [task2])
        assert with_second.dead_links_found > \
            without_second.dead_links_found

    def test_report_arrives_by_briefcase_not_shared_memory(self, testbed):
        """The result the client sees crossed the codec boundary."""
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        metrics = run_mobile(testbed, [task])
        # Remote bytes include at minimum the report + the agent + the
        # program source.
        assert metrics.remote_bytes > 10_000
        assert metrics.remote_messages >= 4


class TestMonitoring:
    def test_rwwebbot_reports_location_trail(self, testbed):
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        metrics = run_mobile(testbed, [task], monitor=True)
        trail = [(e["event"], e["host"]) for e in metrics.monitor_events]
        assert ("arrived", "client.cs.uit.no") in trail
        assert ("departing", "client.cs.uit.no") in trail
        assert ("arrived", "www.cs.uit.no") in trail

    def test_status_query_during_crawl(self, testbed):
        """The monitoring wrapper answers queries mid-computation."""
        cluster = testbed.cluster
        cluster.add_principal(WEBBOT_PRINCIPAL, trusted=True)
        program = build_webbot_program(cluster.keychain)
        site = testbed.site_of("www.cs.uit.no")
        driver = testbed.client.driver(name="querier",
                                       principal=WEBBOT_PRINCIPAL)
        briefcase = make_mwwebbot(
            program,
            [(str(cluster.vm_uri("www.cs.uit.no")),
              crawl_args(site.root_url, prefix=f"http://{site.host}/"))],
            home_uri=str(driver.uri),
            monitor_uri=str(driver.uri))

        def scenario():
            reply = yield from driver.meet(
                cluster.vm_uri("client.cs.uit.no"), briefcase,
                timeout=10_000)
            assert reply.get_text(wellknown.STATUS) == "ok"
            # Wait for the arrival report from the server host, then
            # query the agent's status by name at that host.
            while True:
                message = yield from driver.recv(timeout=10_000)
                event = message.briefcase.get_first("MONITOR-EVENT")
                if event is None:
                    continue
                body = __import__("json").loads(event.as_text())
                if body["event"] == "arrived" and \
                        body["host"] == "www.cs.uit.no":
                    agent = body["agent"]
                    break
            name, _colon, instance = agent.partition(":")
            target = AgentUri(host="www.cs.uit.no", name=name,
                              instance=instance)
            status = yield from query_status(driver, target, timeout=10_000)
            # Drain until the final report so the run completes cleanly.
            while True:
                message = yield from driver.recv(timeout=100_000)
                if message.briefcase.has(wellknown.RESULTS):
                    return status
        status = testbed.cluster.run(scenario())
        assert status["host"] == "www.cs.uit.no"
        assert status["stops_remaining"] == 0


class TestE1Shape:
    def test_local_beats_remote_and_ships_less(self, testbed):
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        stationary = run_stationary(testbed, [task])
        mobile = run_mobile(testbed, [task])
        assert mobile.elapsed_seconds < stationary.elapsed_seconds
        assert mobile.remote_bytes < stationary.remote_bytes / 3

    def test_agent_shipping_not_free(self, testbed):
        """The mobile agent's bytes include the carried program."""
        site = testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        mobile = run_mobile(testbed, [task])
        from repro.mining.webbot_agent import build_webbot_program_source
        assert mobile.remote_bytes > \
            len(build_webbot_program_source().encode())
