"""The everything-at-once scenario: a monitored, checkpointed,
locatable itinerant audit that survives being queried mid-flight.

Exercises, in one run: the mobility wrapper (carried program, itinerary,
condensation), the monitoring wrapper (location reports + status
queries), the location wrapper (logical-name tracking across hops), the
checkpoint wrapper (cabinet snapshots per arrival), ag_exec (signed
binary execution), and the firewall plumbing underneath all of it.
"""

import json

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.mining.webbot_agent import (
    WEBBOT_PRINCIPAL,
    build_webbot_program,
    crawl_args,
    make_mwwebbot,
)
from repro.system.bootstrap import build_campus_testbed
from repro.wrappers.fault import CheckpointWrapper
from repro.wrappers.location import LocationWrapper, resolve
from repro.wrappers.stack import WrapperSpec


@pytest.fixture
def world():
    return build_campus_testbed(n_servers=3, pages_per_server=25,
                                bytes_per_server=50_000)


class TestFullStack:
    def test_monitored_checkpointed_locatable_audit(self, world):
        cluster = world.cluster
        cluster.add_principal(WEBBOT_PRINCIPAL, trusted=True)
        archs = sorted({n.host.arch for n in cluster.nodes.values()})
        program = build_webbot_program(cluster.keychain,
                                       WEBBOT_PRINCIPAL, archs=archs)
        home_host = world.client.host.name
        driver = world.client.driver(name="hq",
                                     principal=WEBBOT_PRINCIPAL)
        registry_uri = f"tacoma://{home_host}//ag_locator"
        cabinet_uri = f"tacoma://{home_host}//ag_cabinet"

        stops = [(str(cluster.vm_uri(name)),
                  crawl_args(world.sites[name].root_url,
                             prefix=f"http://{name}/", site=name))
                 for name in sorted(world.sites)]
        briefcase = make_mwwebbot(
            program, stops, home_uri=str(driver.uri),
            monitor_uri=str(driver.uri), agent_name="auditor",
            extra_wrappers=[
                WrapperSpec.by_ref(LocationWrapper,
                                   {"registry": registry_uri,
                                    "logical": "the-auditor"}),
                WrapperSpec.by_ref(CheckpointWrapper,
                                   {"cabinet": cabinet_uri,
                                    "drawer": "auditor-ckpt",
                                    "on": ["arrive"]}),
            ])

        def scenario():
            reply = yield from driver.meet(
                cluster.vm_uri(home_host), briefcase, timeout=1_000_000)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)

            events = []
            queried_at = None
            reports = None
            while reports is None:
                message = yield from driver.recv(timeout=1_000_000)
                inbound = message.briefcase
                event_el = inbound.get_first("MONITOR-EVENT")
                if event_el is not None:
                    event = json.loads(event_el.as_text())
                    events.append((event["event"], event["host"]))
                    # At the first arrival on a campus server, find the
                    # agent by LOGICAL NAME and ask it for status.
                    if queried_at is None and \
                            event["event"] == "arrived" and \
                            event["host"] != home_host:
                        where = yield from resolve(driver, registry_uri,
                                                   "the-auditor",
                                                   timeout=1_000_000)
                        query = Briefcase()
                        query.put(wellknown.OP, "status-query")
                        status = yield from driver.meet(
                            where, query, timeout=1_000_000)
                        queried_at = status.get_json(
                            wellknown.RESULTS)["host"]
                    continue
                if inbound.has(wellknown.RESULTS):
                    reports = [e.as_json() for e in
                               inbound.folder(wellknown.RESULTS)]
            return events, queried_at, reports

        events, queried_at, reports = cluster.run(scenario())

        # Every site audited, dead links found.
        assert len(reports) == 3
        assert {r["site"] for r in reports} == set(world.sites)
        assert sum(len(r["invalid"]) for r in reports) > 0

        # Monitoring saw the full itinerary.
        arrived = [host for event, host in events if event == "arrived"]
        assert arrived[0] == home_host
        assert set(arrived[1:]) == set(world.sites)

        # The mid-flight status query resolved through the locator to a
        # campus server, not the launch host.
        assert queried_at in world.sites

        # The cabinet holds a relaunchable checkpoint (code included).
        cabinet = world.client.services["ag_cabinet"]
        key = (WEBBOT_PRINCIPAL, "auditor-ckpt")
        checkpoint = cabinet._drawers.get(key)
        assert checkpoint is not None
        assert checkpoint.has(wellknown.CODE)
        assert checkpoint.has("PROGRAM")
