"""Tests for object agents, vm_pickle, and the restricted unpickler."""

import pickle

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import UnsupportedPayloadError, VMError
from repro.core import wellknown
from repro.agent.objagent import ObjectAgent, launch_briefcase
from repro.vm import loader


class TravelLog(ObjectAgent):
    """Object agent: its attribute state survives migration."""

    def __init__(self):
        self.visits = []

    def run(self, ctx, bc):
        self.visits.append(ctx.host_name)
        nxt = bc.folder("HOSTS").pop_first()
        if nxt is None:
            yield from ctx.send(bc.get_text("HOME"),
                                Briefcase({"VISITS": self.visits}))
            return "done"
        yield from self.go_with_state(ctx, nxt.as_text())


class NoRunMethod:
    """Pickleable, but not an agent."""


class TestRestrictedUnpickler:
    def test_round_trip_allowed_object(self):
        payload = loader.pack_pickle({"key": [1, 2, 3]})
        assert loader.materialize_pickle(payload) == {"key": [1, 2, 3]}

    def test_hostile_pickle_rejected(self):
        import os
        blob = pickle.dumps(os.system)
        payload = loader.Payload(loader.KIND_PICKLE, blob)
        with pytest.raises(UnsupportedPayloadError, match="outside"):
            loader.materialize_pickle(payload)

    def test_whitelist_prefix_semantics(self):
        # OrderedDict requires a class lookup, so it exercises find_class
        # (a plain dict pickles with no GLOBAL opcode at all).
        from collections import OrderedDict
        blob = pickle.dumps(OrderedDict(x=1))
        payload = loader.Payload(loader.KIND_PICKLE, blob)
        assert loader.materialize_pickle(payload) == OrderedDict(x=1)
        with pytest.raises(UnsupportedPayloadError):
            loader.materialize_pickle(payload, allowed_prefixes=())

    def test_corrupt_pickle_rejected(self):
        payload = loader.Payload(loader.KIND_PICKLE, b"\x80garbage")
        with pytest.raises(UnsupportedPayloadError, match="corrupt"):
            loader.materialize_pickle(payload)

    def test_unpicklable_object_rejected_at_pack(self):
        with pytest.raises(VMError, match="pickled"):
            loader.pack_pickle(lambda: None)


def allow_tests_package(cluster):
    for node in cluster.nodes.values():
        vm = node.vms["vm_pickle"]
        vm.allowed_prefixes = vm.allowed_prefixes + ("tests.",)


class TestVmPickle:
    def test_object_agent_state_survives_migration(self, pair_cluster):
        allow_tests_package(pair_cluster)
        agent = TravelLog()
        briefcase = launch_briefcase(agent, agent_name="travellog")
        briefcase.folder("HOSTS").push("tacoma://beta.test/vm_pickle")
        driver = pair_cluster.node("alpha.test").driver()
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            reply = yield from driver.meet(
                pair_cluster.vm_uri("alpha.test", "vm_pickle"),
                briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)
            final = yield from driver.recv(timeout=60)
            return final.briefcase.get("VISITS").texts()
        # Attribute state (the visit list) accumulated across the hop.
        assert pair_cluster.run(scenario()) == ["alpha.test", "beta.test"]

    def test_default_whitelist_blocks_foreign_classes(self, single_cluster):
        # Without the tests. prefix, the launch must be nacked.
        agent = TravelLog()
        briefcase = launch_briefcase(agent)
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test", "vm_pickle"),
                briefcase, timeout=60)
            return (reply.get_text(wellknown.STATUS),
                    reply.get_text(wellknown.ERROR))
        status, error = single_cluster.run(scenario())
        assert status == "error" and "outside" in error

    def test_object_without_run_rejected(self, single_cluster):
        allow_tests_package(single_cluster)
        briefcase = Briefcase()
        loader.install_payload(briefcase,
                               loader.pack_pickle(NoRunMethod()),
                               agent_name="notanagent")
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test", "vm_pickle"),
                briefcase, timeout=60)
            return (reply.get_text(wellknown.STATUS),
                    reply.get_text(wellknown.ERROR))
        status, error = single_cluster.run(scenario())
        assert status == "error" and "run" in error

    def test_vm_pickle_rejects_other_kinds(self, single_cluster):
        briefcase = Briefcase()
        loader.install_payload(
            briefcase, loader.pack_source("def f(c, b):\n    return 1", "f"),
            agent_name="src")
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test", "vm_pickle"),
                briefcase, timeout=60)
            return reply.get_text(wellknown.STATUS)
        assert single_cluster.run(scenario()) == "error"


class TestPaperNamedApi:
    def test_paper_names_drive_the_same_machinery(self, single_cluster):
        from repro.agent import api
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            request = Briefcase()
            request.put(wellknown.OP, "list")
            reply = yield from api.meet(driver, "firewall", request)
            assert reply.get_text(wellknown.STATUS) == "ok"
            # activate + await: fire a message at ourselves and await it.
            note = Briefcase({"NOTE": ["ping"]})
            yield from api.activate(driver, driver.uri, note)
            received = yield from api.await_bc(driver, timeout=30)
            return received.get_text("NOTE")
        assert single_cluster.run(scenario()) == "ping"
