"""More property-based tests: streams, log analysis, sealing, checkbot."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robot.checkbot import absolutize
from repro.robot.loganalyzer import analyze_log, parse_log_line
from repro.robot.webbot import join_url
from repro.wrappers.sealing import seal, unseal


class TestSealingProperties:
    @given(st.binary(max_size=2000), st.binary(min_size=16, max_size=16))
    @settings(max_examples=100)
    def test_seal_unseal_identity(self, payload, nonce):
        key = b"k" * 32
        sealed, mac = seal(key, nonce, payload)
        assert unseal(key, sealed, mac) == payload

    @given(st.binary(min_size=1, max_size=500),
           st.integers(min_value=0, max_value=499))
    @settings(max_examples=100)
    def test_any_single_bit_flip_detected(self, payload, position):
        key = b"k" * 32
        sealed, mac = seal(key, b"n" * 16, payload)
        position = position % len(sealed)
        tampered = (sealed[:position] +
                    bytes([sealed[position] ^ 0x01]) +
                    sealed[position + 1:])
        assert unseal(key, tampered, mac) is None


class TestUrlImplementationsAgree:
    """Webbot and Checkbot each carry their own URL code (like real COTS
    robots); on absolute-http inputs they must agree."""

    @given(st.from_regex(r"[a-z0-9._/-]{0,30}", fullmatch=True))
    @settings(max_examples=200)
    def test_relative_resolution_agrees(self, reference):
        base = "http://host.example/dir/page.html"
        webbot_view = join_url(base, reference)
        checkbot_view = absolutize(base, reference)
        if reference.strip() == "":
            assert checkbot_view is None
            return
        assert webbot_view == checkbot_view

    @given(st.from_regex(r"http://[a-z0-9.]{1,12}(/[a-z0-9./-]{0,20})?",
                         fullmatch=True))
    @settings(max_examples=100)
    def test_absolute_urls_agree(self, url):
        assert join_url("http://base/", url) == \
            absolutize("http://base/", url)


log_hosts = st.from_regex(r"10\.\d{1,3}\.\d{1,3}\.\d{1,3}", fullmatch=True)
log_paths = st.from_regex(r"/[a-z0-9./_-]{0,30}", fullmatch=True)


class TestLogAnalyzerProperties:
    @given(st.lists(st.tuples(log_hosts, log_paths,
                              st.sampled_from([200, 304, 404, 500]),
                              st.integers(min_value=0, max_value=10**6)),
                    max_size=40))
    @settings(max_examples=100)
    def test_hits_and_bytes_conserved(self, entries):
        lines = [
            f'{host} - - [06/Jul/1999:00:00:00 +0100] '
            f'"GET {path} HTTP/1.0" {status} {size}'
            for host, path, status, size in entries]
        stats = analyze_log("\n".join(lines))
        assert stats["hits"] == len(entries)
        assert stats["malformed"] == 0
        assert stats["bytes_served"] == sum(e[3] for e in entries)
        assert sum(stats["status_counts"].values()) == len(entries)
        assert stats["unique_visitors"] == len({e[0] for e in entries})

    @given(st.text(alphabet=string.printable, max_size=300))
    @settings(max_examples=100)
    def test_parser_never_crashes(self, garbage):
        record = parse_log_line(garbage)
        assert record is None or isinstance(record, dict)

    @given(st.lists(st.text(alphabet=string.printable, max_size=80),
                    max_size=20))
    @settings(max_examples=50)
    def test_analyzer_never_crashes(self, lines):
        text = "\n".join(lines)
        stats = analyze_log(text)
        # \r etc. may split lines further; compare against splitlines.
        assert stats["hits"] + stats["malformed"] <= len(text.splitlines())
