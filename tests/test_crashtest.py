"""End-to-end crash durability: the ``repro crashtest`` scenarios.

The headline acceptance claim lives here: an **un-checkpointed** agent
resident on a crashing host — no monitor wrapper, no checkpoint
wrapper, no rear guard — survives the crash because the host's
write-ahead journal replays it back to life.  Before the durability
subsystem that agent was simply gone (the ``repro chaos --no-recovery``
baseline).

Also here: the crash-at-any-point property test.  A crash can truncate
the journal at *any byte*; whatever survives, the fold must come back
deterministic, conservation-clean, and with the exactly-once counters
balanced.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.crashtest import (
    SCENARIO_NAMES,
    named_crash_plan,
    render_crashtest_json,
    run_crashtest,
)
from repro.durability.journal import HostJournal, iter_frames
from repro.durability.recovery import QUEUE_COUNTERS, replay_image
from repro.durability.store import VirtualDisk
from repro.firewall.dedup import DedupWindow, LandingRegistry
from repro.sim.eventloop import Kernel

CRASHED_WORKER = "w2.chaos.example"


def crashtest(scenario):
    return run_crashtest(seed=7, scenario=scenario)


class TestScenarios:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_both_verdicts_hold(self, scenario):
        document = crashtest(scenario)
        assert document["exactly_once"]["holds"] is True
        assert document["conservation"]["holds"] is True
        assert document["conservation"]["violations"] == []

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_document_is_byte_deterministic(self, scenario):
        one = render_crashtest_json(crashtest(scenario))
        two = render_crashtest_json(crashtest(scenario))
        assert one == two

    def test_bare_agent_survives_host_crash_via_replay(self):
        """The acceptance demo: the resident agent carried no recovery
        kit at all, yet the itinerary completed — the crashed worker's
        journal replay restored it."""
        document = crashtest("kill-during-migration")
        assert document["agent"]["timed_out"] is False
        assert document["exactly_once"]["completed"] is True
        assert document["stats"]["host_crashes"] == 1
        assert document["stats"]["agents_restored"] >= 1
        replay = document["durability"][CRASHED_WORKER]["last_replay"]
        assert replay["residents_restored"] >= 1
        assert replay["ambiguous_departures"] == []
        # Exactly one resurrection, accounted as relaunched.
        assert document["conservation"]["buckets"]["relaunched"] == 1

    def test_torn_tail_replay_stops_at_last_good_record(self):
        document = crashtest("torn-journal-tail")
        durability = document["durability"][CRASHED_WORKER]
        assert durability["last_replay"]["torn"] is True
        assert durability["journal"]["torn_tails_seen"] == 1
        assert durability["disk"]["lost_suffix_bytes"] > 0
        # Recovery still restored the resident from what survived.
        assert durability["last_replay"]["residents_restored"] >= 1
        assert document["conservation"]["holds"] is True

    def test_crash_loop_accumulates_no_twins(self):
        document = crashtest("crash-loop")
        assert document["stats"]["host_crashes"] == 3
        durability = document["durability"][CRASHED_WORKER]
        assert durability["journal"]["replays"] == 3
        buckets = document["conservation"]["buckets"]
        # Three resurrections, each superseding its predecessor: the
        # loop ends with every crashed instance relaunched and no
        # duplicate site visits.
        assert buckets["relaunched"] == 3
        assert document["exactly_once"]["duplicate_site_visits"] == 0

    def test_crash_loop_compaction_ran_during_the_loop(self):
        document = crashtest("crash-loop")
        durability = document["durability"][CRASHED_WORKER]
        assert durability["journal"]["snapshots"] >= 3
        # The final replay started from a snapshot-headed segment.
        assert durability["last_replay"]["snapshots_seen"] == 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown crashtest"):
            named_crash_plan("bogus", ["w1"])

    def test_journal_sample_summarises_blobs(self):
        document = crashtest("kill-during-migration")
        sample = document["journal_sample"]
        assert sample["total_records"] >= 1
        for record in sample["tail"]:
            assert "blob" not in record
            if "blob_sha256" in record:
                assert record["blob_bytes"] > 0


# -- crash at any journal index ----------------------------------------------


def _build_corpus(compact_midway):
    """A journal whose records exercise the full replay taxonomy,
    written through the real structures so the record stream is exactly
    what a live host produces.  Returns the active segment's bytes."""
    kernel = Kernel()
    disk = VirtualDisk(kernel, "prop.host")
    journal = HostJournal(disk, "prop.host", snapshot_interval=10 ** 9)
    window = DedupWindow(capacity=4)
    registry = LandingRegistry()
    window.journal = journal
    registry.journal = journal
    journal.state_provider = lambda: {
        "dedup": window.to_durable(),
        "landings": registry.to_durable(),
        "queue": {"counters": {key: 0 for key in QUEUE_COUNTERS},
                  "park_seq": 3, "open": [], "dead": []},
        "residents": {"residents": {}, "supersede": {}},
    }
    for peer, seq in (("a", 1), ("a", 2), ("a", 2), ("b", 1), ("a", 9)):
        window.observe(peer, seq)
    window.forget("b", 1)
    registry.acquire("L1")
    registry.record_launch("L1", "tax://h/p/a:1")
    registry.acquire("L1")              # duplicate landing
    registry.tombstone("L2", "aborted")
    registry.acquire("L2")              # tombstone refusal
    registry.acquire("L3")
    registry.release("L3")
    journal.record("queue-park", park=1, landing="L1")
    journal.record("queue-claim", park=1)
    if compact_midway:
        journal.compact()
    journal.record("queue-park", park=2, landing=None)
    journal.record("queue-dead-letter", park=2, reason="expired")
    journal.record("agent-arrive", instance="i1", name="ag",
                   principal="p", vm="vm", landing="L1", blob="")
    journal.record("depart-intent", instance="i1", landing="L4")
    journal.record("depart-failed", instance="i1")
    journal.record("agent-arrive", instance="i2", name="bg",
                   principal="p", vm="vm", landing=None, blob="")
    journal.record("agent-depart", instance="i2", reason="moved")
    journal.record("restart", records=0, torn=False)
    window.observe("a", 3)
    registry.forget_launch("L1")
    journal.record("checkpoint", principal="p", drawer="d", blob="")
    return disk.read(journal.active_segment())


CORPUS = {False: _build_corpus(False), True: _build_corpus(True)}


def _fold_digest(records, torn):
    image = replay_image([dict(r) for r in records], torn, "seg",
                         now=50.0)
    return image, json.dumps({
        "dedup": image.dedup.to_durable(),
        "dedup_stats": image.dedup.snapshot(),
        "landings": image.landings.to_durable(),
        "landing_stats": image.landings.snapshot(),
        "residents": image.table.to_durable(),
        "counters": image.queue_counters(),
        "dead": image.dead,
    }, sort_keys=True)


class TestCrashAtAnyJournalIndex:
    @settings(deadline=None, max_examples=80)
    @given(compacted=st.booleans(), cut=st.integers(min_value=0,
                                                    max_value=4096))
    def test_truncated_replay_is_safe_and_deterministic(self, compacted,
                                                        cut):
        data = CORPUS[compacted]
        records, torn = iter_frames(data[:min(cut, len(data))])
        image, digest = _fold_digest(records, torn)
        # Byte-identical across independent folds of the same journal:
        # the post-recovery stat output never depends on fold order.
        assert digest == _fold_digest(records, torn)[1]
        # Conservation of the exactly-once counters survives any cut.
        assert image.dedup.conservation_holds()
        # The crash boundary drained every open park and resolved (or
        # refused) every mid-``go`` resident: nothing is silently lost,
        # nothing can be resurrected into a twin.
        assert image.open_parks == {}
        assert all(info["departing"] is None
                   for info in image.table.residents.values())

    def test_full_corpus_not_torn_and_departed_stays_gone(self):
        for data in CORPUS.values():
            records, torn = iter_frames(data)
            assert torn is False and records
            image, _ = _fold_digest(records, torn)
            assert "i2" not in image.table.residents

    def test_truncated_records_are_prefixes(self):
        data = CORPUS[False]
        full, _ = iter_frames(data)
        for cut in range(0, len(data), 7):
            records, _ = iter_frames(data[:cut])
            assert records == full[:len(records)]
