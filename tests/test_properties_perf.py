"""Property tests for the codec fast paths and encoding cache.

Two invariants underwrite the hot-path work:

1. Round-trip byte identity: for any briefcase, ``encode`` produces the
   same bytes regardless of which decoder (fast or reference) built the
   briefcase, and ``decode(encode(b)) == b`` through both paths.
2. Cache soundness: every mutating ``Folder`` / ``Briefcase`` operation
   invalidates the cached encoding, so ``encode`` never serves stale
   bytes.
"""

import string

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core import codec  # noqa: E402
from repro.core.briefcase import Briefcase  # noqa: E402

folder_names = st.text(
    alphabet=string.ascii_letters + string.digits + "-_.",
    min_size=1,
    max_size=24,
)

briefcases = st.dictionaries(
    folder_names,
    st.lists(st.binary(max_size=200), max_size=8),
    max_size=8,
).map(Briefcase.from_dict)


@pytest.fixture(autouse=True)
def _fast_paths_on():
    previous = codec.set_fast_paths(True)
    yield
    codec.set_fast_paths(previous)


def reference_decode(data):
    previous = codec.set_fast_paths(False)
    try:
        return codec.decode(data)
    finally:
        codec.set_fast_paths(previous)


class TestRoundTripByteIdentity:
    @given(briefcase=briefcases)
    @settings(max_examples=150, deadline=None)
    def test_encode_decode_round_trip_both_paths(self, briefcase):
        wire = codec.encode(briefcase)
        fast = codec.decode(wire)
        reference = reference_decode(wire)
        assert fast == reference == briefcase
        # Re-encoding either decode result reproduces the input bytes.
        assert codec.encode(fast) == wire
        assert codec.encode(reference) == wire

    @given(briefcase=briefcases)
    @settings(max_examples=75, deadline=None)
    def test_decode_is_buffer_type_agnostic(self, briefcase):
        wire = codec.encode(briefcase)
        assert codec.decode(bytearray(wire)) == briefcase
        assert codec.decode(memoryview(wire)) == briefcase

    @given(briefcase=briefcases)
    @settings(max_examples=75, deadline=None)
    def test_encoded_size_matches_actual_encoding(self, briefcase):
        assert codec.encoded_size(briefcase) == len(codec.encode(briefcase))


# Each entry mutates the briefcase it receives; the name labels the
# operation under test.  Operations that need a folder get "A", which
# every generated briefcase below is guaranteed to contain.
FOLDER_MUTATIONS = {
    "push": lambda b: b.folder("A").push(b"new"),
    "push_all": lambda b: b.folder("A").push_all([b"x", b"y"]),
    "insert": lambda b: b.folder("A").insert(0, b"head"),
    "pop_first": lambda b: b.folder("A").pop_first(),
    "pop_last": lambda b: b.folder("A").pop_last(),
    "remove_at": lambda b: b.folder("A").remove_at(0),
    "clear": lambda b: b.folder("A").clear(),
    "replace": lambda b: b.folder("A").replace([b"only"]),
}

BRIEFCASE_MUTATIONS = {
    "folder": lambda b: b.folder("BRAND-NEW"),
    "drop": lambda b: b.drop("A"),
    "drop_all_except": lambda b: b.drop_all_except([]),
    "put": lambda b: b.put("A", b"exclusive"),
    "append": lambda b: b.append("A", b"tail"),
    "merge": lambda b: b.merge(Briefcase({"OTHER": [b"z"]})),
}

ALL_MUTATIONS = {**FOLDER_MUTATIONS, **BRIEFCASE_MUTATIONS}


class TestCacheInvalidation:
    @pytest.mark.parametrize("op", sorted(ALL_MUTATIONS))
    @given(briefcase=briefcases)
    @settings(max_examples=25, deadline=None)
    def test_mutation_invalidates_cached_encoding(self, op, briefcase):
        # Guarantee folder "A" exists with at least one element so every
        # operation is applicable.
        briefcase.put("A", b"seed")
        before = codec.encode(briefcase)
        assert briefcase._wire_cache_valid()
        ALL_MUTATIONS[op](briefcase)
        after = codec.encode(briefcase)
        # The cache must reflect the mutated state: re-decoding the
        # fresh bytes reproduces the briefcase exactly.
        assert codec.decode(after) == briefcase
        assert codec.encoded_size(briefcase) == len(after)
        assert reference_decode(after) == briefcase
        if after == before:
            # A mutation may restore the identical logical state (e.g.
            # replace on a folder that already held that value); bytes
            # then legitimately match.  It must still decode correctly,
            # which the asserts above covered.
            return
        assert after != before

    @pytest.mark.parametrize("op", sorted(ALL_MUTATIONS))
    def test_mutation_drops_cached_buffer(self, op):
        briefcase = Briefcase({"A": [b"one", b"two"], "B": [b"three"]})
        codec.encode(briefcase)
        assert briefcase._wire_cache_valid()
        ALL_MUTATIONS[op](briefcase)
        assert not briefcase._wire_cache_valid()

    @given(briefcase=briefcases)
    @settings(max_examples=50, deadline=None)
    def test_unmutated_briefcase_serves_identical_object(self, briefcase):
        first = codec.encode(briefcase)
        assert codec.encode(briefcase) is first

    @given(briefcase=briefcases)
    @settings(max_examples=50, deadline=None)
    def test_read_only_operations_preserve_cache(self, briefcase):
        briefcase.put("A", b"seed")
        wire = codec.encode(briefcase)
        briefcase.names()
        briefcase.has("A")
        briefcase.get_first("A")
        briefcase.get("A").texts()
        briefcase.get("A").byte_size()
        briefcase.get("A").first()
        briefcase.get("A").last()
        briefcase.payload_bytes()
        briefcase.to_dict()
        assert codec.encode(briefcase) is wire
