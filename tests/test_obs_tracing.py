"""Span tracer semantics, trace export, and the system-level guarantees:
hop/transfer spans nest in virtual time, and disabled telemetry is a
true no-op (identical event dispatch)."""

import json

import pytest

from repro.obs.demo import run_traced_quickstart
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import NULL_SPAN, Span, Tracer


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestSpan:
    def test_begin_end_uses_clock(self):
        clock = FakeClock(1.0)
        tracer = Tracer(clock)
        span = tracer.begin("work", track="t")
        clock.t = 3.5
        span.end()
        assert span.start == 1.0
        assert span.end_time == 3.5
        assert span.duration == 2.5
        assert span.finished

    def test_end_is_idempotent(self):
        tracer = Tracer(FakeClock())
        span = tracer.begin("w")
        span.end(at=2.0)
        span.end(at=9.0)
        assert span.end_time == 2.0
        assert len(tracer.spans) == 1

    def test_end_args_and_annotate(self):
        tracer = Tracer(FakeClock())
        span = tracer.begin("w", kind="x")
        span.annotate(extra=1)
        span.end(outcome="ok")
        assert span.args == {"kind": "x", "extra": 1, "outcome": "ok"}

    def test_record_explicit_times(self):
        tracer = Tracer()
        span = tracer.record("past", 1.0, 4.0, track="t")
        assert span.duration == 3.0
        assert tracer.spans == [span]

    def test_record_rejects_negative_duration(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.record("bad", 5.0, 1.0)

    def test_context_manager_sets_outcome(self):
        tracer = Tracer(FakeClock())
        with tracer.span("ok-path"):
            pass
        with pytest.raises(RuntimeError):
            with tracer.span("err-path"):
                raise RuntimeError("boom")
        outcomes = {s.name: s.args["outcome"] for s in tracer.spans}
        assert outcomes == {"ok-path": "ok", "err-path": "error"}

    def test_open_count_tracks_unfinished(self):
        tracer = Tracer(FakeClock())
        span = tracer.begin("w")
        assert tracer.open_count == 1
        span.end()
        assert tracer.open_count == 0


class TestDisabledTracer:
    def test_begin_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.begin("w", track="t")
        assert span is NULL_SPAN
        span.end(outcome="whatever")
        assert span.annotate(x=1) is span
        assert tracer.spans == []
        assert tracer.instants == []

    def test_record_and_instant_are_no_ops(self):
        tracer = Tracer(enabled=False)
        tracer.record("w", 0.0, 1.0)
        tracer.instant("i")
        assert tracer.spans == []
        assert tracer.instants == []

    def test_null_span_never_reports_progress(self):
        assert NULL_SPAN.duration is None
        assert not NULL_SPAN.finished


class TestCapsAndFind:
    def test_max_spans_drops_overflow(self):
        tracer = Tracer(FakeClock(), max_spans=2)
        for i in range(4):
            tracer.record(f"s{i}", 0.0, 1.0)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 2

    def test_find_by_name_track_category(self):
        tracer = Tracer()
        tracer.record("a", 0, 1, category="x", track="t1")
        tracer.record("b", 0, 1, category="x", track="t2")
        assert len(tracer.find(category="x")) == 2
        assert [s.name for s in tracer.find(track="t2")] == ["b"]
        assert tracer.find(name="a", track="t2") == []


class TestExport:
    def _small_tracer(self):
        tracer = Tracer(FakeClock())
        tracer.record("outer", 0.0, 4.0, category="c", track="t")
        tracer.record("inner", 1.0, 2.0, category="c", track="t")
        tracer.instant("mark", track="t", at=3.0, note="hi")
        return tracer

    def test_jsonl_rows_parse_and_sort(self):
        rows = [json.loads(line) for line in
                self._small_tracer().to_jsonl().splitlines()]
        assert [r["name"] for r in rows] == ["outer", "inner", "mark"]
        assert rows[0]["dur"] == 4.0
        assert rows[2]["kind"] == "instant"

    def test_chrome_document_shape(self):
        document = self._small_tracer().to_chrome()
        events = document["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["name"] for m in metas} == {"process_name",
                                              "thread_name"}
        assert len(spans) == 2 and len(instants) == 1
        outer = next(e for e in spans if e["name"] == "outer")
        assert outer["ts"] == 0.0 and outer["dur"] == 4.0 * 1e6
        assert all(e["pid"] == 1 for e in spans)

    def test_export_round_trip_through_files(self, tmp_path):
        tracer = self._small_tracer()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        n_events = tracer.export_chrome(str(chrome))
        n_rows = tracer.export_jsonl(str(jsonl))
        loaded = json.loads(chrome.read_text())
        assert len(loaded["traceEvents"]) == n_events
        assert loaded["otherData"]["clock"] == "virtual-seconds"
        assert len(jsonl.read_text().splitlines()) == n_rows == 3


class TestTelemetryFacade:
    def test_switch_toggles_both_halves(self):
        telemetry = Telemetry(enabled=False)
        telemetry.enable()
        assert telemetry.metrics.enabled and telemetry.tracer.enabled
        telemetry.disable()
        assert not telemetry.metrics.enabled
        assert not telemetry.tracer.enabled

    def test_flush_ledger_emits_spans_and_counters(self):
        from repro.sim.ledger import CostLedger

        ledger = CostLedger()
        ledger.add("cpu", 2.0)
        ledger.add("net", 1.0, nbytes=500)
        telemetry = Telemetry(enabled=True)
        total = telemetry.flush_ledger(ledger, track="cost:h", start=10.0,
                                       host="h")
        assert total == pytest.approx(3.0)
        spans = sorted(telemetry.tracer.spans, key=lambda s: s.start)
        assert [(s.name, s.start, s.end_time) for s in spans] == \
            [("cost:cpu", 10.0, 12.0), ("cost:net", 12.0, 13.0)]
        assert telemetry.metrics.value("cost.seconds", category="cpu",
                                       host="h") == 2.0
        assert telemetry.metrics.value("cost.bytes", category="net",
                                       host="h") == 500

    def test_flush_ledger_disabled_still_returns_total(self):
        from repro.sim.ledger import CostLedger

        ledger = CostLedger()
        ledger.add("cpu", 2.0)
        telemetry = Telemetry(enabled=False)
        assert telemetry.flush_ledger(ledger, track="t") == 2.0
        assert telemetry.tracer.spans == []


class TestTracedQuickstart:
    """The acceptance scenario behind ``repro trace``."""

    @pytest.fixture(scope="class")
    def traced(self):
        return run_traced_quickstart()

    def test_scenario_completes(self, traced):
        cluster, result = traced
        assert len(result.folder("GREETINGS").texts()) == 3

    def test_hop_spans_contain_their_transfers(self, traced):
        cluster, _ = traced
        tracer = cluster.telemetry.tracer
        hops = tracer.find(name="go", track="agent:hello")
        assert len(hops) == 2
        transfers = tracer.find(name="net.transfer")
        assert transfers
        for hop in hops:
            dst = hop.args["dst_host"]
            inside = [t for t in transfers
                      if t.track.endswith(f"->{dst}")
                      and hop.start <= t.start
                      and t.end_time <= hop.end_time]
            assert inside, f"no transfer nested in hop to {dst}"

    def test_launch_spans_nest_inside_hops(self, traced):
        cluster, _ = traced
        tracer = cluster.telemetry.tracer
        for hop in tracer.find(name="go", track="agent:hello"):
            dst = hop.args["dst_host"]
            launches = [s for s in tracer.find(name="vm.launch")
                        if s.track == f"vm:{dst}"
                        and hop.start <= s.start
                        and s.end_time <= hop.end_time]
            assert launches, f"no vm.launch inside hop to {dst}"

    def test_run_spans_tile_the_hosts(self, traced):
        cluster, _ = traced
        tracer = cluster.telemetry.tracer
        runs = sorted(tracer.find(name="run:hello"),
                      key=lambda s: s.start)
        assert [s.track for s in runs] == [
            "host:cl1.cs.uit.no", "host:cl2.cs.uit.no",
            "host:cl3.cs.uit.no"]
        assert [s.args["outcome"] for s in runs] == \
            ["moved", "moved", "done"]
        for earlier, later in zip(runs, runs[1:]):
            assert later.start >= earlier.start

    def test_hop_counters_match_spans(self, traced):
        cluster, _ = traced
        metrics = cluster.telemetry.metrics
        assert metrics.value("agent.hops", agent="hello") == 2
        assert metrics.value("agent.migrations", op="go") == 2

    def test_chrome_export_of_the_scenario(self, traced, tmp_path):
        cluster, _ = traced
        path = tmp_path / "quickstart.json"
        cluster.telemetry.tracer.export_chrome(str(path))
        document = json.loads(path.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert {"go", "net.transfer", "vm.launch", "run:hello"} <= names
        tracks = {e["args"]["name"] for e in document["traceEvents"]
                  if e["name"] == "thread_name"}
        assert "agent:hello" in tracks


class TestNoOpOverhead:
    """Acceptance: disabling telemetry changes *nothing* but the records."""

    def test_dispatch_count_and_clock_are_invariant(self):
        enabled_cluster, _ = run_traced_quickstart(
            telemetry=Telemetry(enabled=True))
        disabled_cluster, _ = run_traced_quickstart(
            telemetry=Telemetry(enabled=False))
        assert enabled_cluster.kernel.processed_events == \
            disabled_cluster.kernel.processed_events
        assert enabled_cluster.kernel.now == disabled_cluster.kernel.now
        assert disabled_cluster.telemetry.tracer.spans == []
        assert disabled_cluster.telemetry.metrics.snapshot() == {}
        assert enabled_cluster.telemetry.tracer.spans
