"""Tests for the three VM types and the launch protocol."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.vm import loader


AGENT_SOURCE = """
def reporting_agent(ctx, bc):
    bc.append("TRAIL", "ran on " + ctx.host_name + " via " + ctx.vm_name)
    yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
    return "ok"
"""


def reporting_agent(ctx, bc):
    bc.append("TRAIL", "ran on " + ctx.host_name + " via " + ctx.vm_name)
    yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
    return "ok"


def sync_agent(ctx, bc):
    """A non-generator agent: runs to completion synchronously."""
    return "sync-done"


def launch(cluster, payload, vm, host="solo.test", name="probe",
           principal="system", timeout=60):
    node = cluster.node(host)
    driver = node.driver(name=f"drv-{vm}-{name}", principal=principal)
    briefcase = Briefcase()
    loader.install_payload(briefcase, payload, agent_name=name)
    briefcase.put("HOME", str(driver.uri))

    def scenario():
        reply = yield from driver.meet(cluster.vm_uri(host, vm), briefcase,
                                       timeout=timeout)
        status = reply.get_text(wellknown.STATUS)
        if status != "ok":
            return ("error", reply.get_text(wellknown.ERROR))
        message = yield from driver.recv(timeout=timeout)
        return ("ok", message.briefcase.folder("TRAIL").texts())
    return cluster.run(scenario())


class TestVmPython:
    def test_launch_by_ref(self, single_cluster):
        status, trail = launch(single_cluster,
                               loader.pack_ref(reporting_agent),
                               "vm_python")
        assert status == "ok"
        assert trail == ["ran on solo.test via vm_python"]

    def test_launch_by_value(self, single_cluster):
        payload = loader.compile_source(
            loader.pack_source(AGENT_SOURCE, "reporting_agent"))
        status, trail = launch(single_cluster, payload, "vm_python")
        assert status == "ok"
        assert trail == ["ran on solo.test via vm_python"]

    def test_rejects_wrong_payload_kind(self, single_cluster):
        payload = loader.pack_source(AGENT_SOURCE, "reporting_agent")
        status, error = launch(single_cluster, payload, "vm_python")
        assert status == "error"
        assert "cannot execute" in error

    def test_synchronous_agent_supported(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(sync_agent),
                               agent_name="sync")

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=30)
            return reply.get_text(wellknown.STATUS)
        assert single_cluster.run(scenario()) == "ok"

    def test_launch_counts(self, single_cluster):
        vm = single_cluster.node("solo.test").vms["vm_python"]
        before = vm.launched
        launch(single_cluster, loader.pack_ref(reporting_agent),
               "vm_python")
        assert vm.launched == before + 1

    def test_agent_unregistered_after_finish(self, single_cluster):
        launch(single_cluster, loader.pack_ref(reporting_agent),
               "vm_python", name="ephemeral")
        node = single_cluster.node("solo.test")
        assert node.firewall.registry.matches(
            AgentUri.parse("ephemeral"), "system") == []

    def test_broken_payload_nacks(self, single_cluster):
        payload = loader.Payload(loader.KIND_MARSHAL, b"garbage")
        status, error = launch(single_cluster, payload, "vm_python")
        assert status == "error"
        vm = single_cluster.node("solo.test").vms["vm_python"]
        assert vm.launch_failures >= 1


class TestVmBin:
    def signed(self, cluster, principal="vendor", trusted=True,
               arch="x86-unix"):
        cluster.add_principal(principal, trusted=trusted)
        inner = loader.compile_source(
            loader.pack_source(AGENT_SOURCE, "reporting_agent"))
        return loader.pack_binary_list([(arch, inner)], cluster.keychain,
                                       principal)

    def test_trusted_binary_runs(self, single_cluster):
        payload = self.signed(single_cluster)
        status, trail = launch(single_cluster, payload, "vm_bin")
        assert status == "ok"
        assert trail == ["ran on solo.test via vm_bin"]

    def test_untrusted_signer_refused(self, single_cluster):
        payload = self.signed(single_cluster, principal="shady",
                              trusted=False)
        status, error = launch(single_cluster, payload, "vm_bin")
        assert status == "error"
        assert "not trusted" in error

    def test_wrong_architecture_refused(self, single_cluster):
        payload = self.signed(single_cluster, arch="sparc-solaris")
        status, error = launch(single_cluster, payload, "vm_bin")
        assert status == "error"
        assert "no binary" in error

    def test_multi_arch_selection(self):
        from repro.system.cluster import TaxCluster
        cluster = TaxCluster()
        cluster.add_node("solo.test", arch="arm-linux")
        cluster.add_principal("vendor", trusted=True)
        inner = loader.compile_source(
            loader.pack_source(AGENT_SOURCE, "reporting_agent"))
        payload = loader.pack_binary_list(
            [("x86-unix", inner), ("arm-linux", inner)],
            cluster.keychain, "vendor")
        status, trail = launch(cluster, payload, "vm_bin")
        assert status == "ok"


class TestVmSource:
    def test_figure3_chain_end_to_end(self, single_cluster):
        payload = loader.pack_source(AGENT_SOURCE, "reporting_agent")
        status, trail = launch(single_cluster, payload, "vm_source")
        assert status == "ok"
        # Step 7: the agent actually ran on vm_bin.
        assert trail == ["ran on solo.test via vm_bin"]

    def test_chain_used_the_services(self, single_cluster):
        node = single_cluster.node("solo.test")
        cc_before = node.services["ag_cc"].requests_handled
        exec_before = node.services["ag_exec"].executions
        launch(single_cluster,
               loader.pack_source(AGENT_SOURCE, "reporting_agent"),
               "vm_source")
        assert node.services["ag_cc"].requests_handled == cc_before + 1
        assert node.services["ag_exec"].executions == exec_before + 1

    def test_syntax_error_nacked_to_sender(self, single_cluster):
        payload = loader.pack_source("def broken(:", "broken")
        status, error = launch(single_cluster, payload, "vm_source")
        assert status == "error"
        assert "compilation failed" in error

    def test_rejects_non_source(self, single_cluster):
        payload = loader.pack_ref(reporting_agent)
        status, error = launch(single_cluster, payload, "vm_source")
        assert status == "error"

    def test_remote_source_launch(self, pair_cluster):
        payload = loader.pack_source(AGENT_SOURCE, "reporting_agent")
        status, trail = launch(pair_cluster, payload, "vm_source",
                               host="beta.test")
        assert status == "ok"
        assert trail == ["ran on beta.test via vm_bin"]
