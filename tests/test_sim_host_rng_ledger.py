"""Unit tests for hosts, random streams, and cost ledgers."""

import pytest

from repro.sim.host import HostRegistry, SimHost
from repro.sim.ledger import CostLedger
from repro.sim.rng import RandomStream, stream_from


class TestSimHost:
    def test_cpu_factor_scales_time(self, kernel, network):
        fast = SimHost(kernel, network, "fast", cpu_factor=2.0)
        assert fast.cpu_seconds(1.0) == 0.5

    def test_invalid_cpu_factor(self, kernel, network):
        with pytest.raises(ValueError):
            SimHost(kernel, network, "h", cpu_factor=0)

    def test_compute_advances_clock_and_stats(self, kernel, network):
        host = SimHost(kernel, network, "h")

        def proc():
            yield from host.compute(0.25)
        kernel.run_process(proc())
        assert kernel.now == pytest.approx(0.25)
        assert host.cpu_stats.busy_seconds == pytest.approx(0.25)
        assert host.cpu_stats.operations == 1

    def test_charge_compute_is_synchronous(self, kernel, network):
        host = SimHost(kernel, network, "h")
        assert host.charge_compute(0.5) == 0.5
        assert kernel.now == 0

    def test_negative_work_rejected(self, kernel, network):
        host = SimHost(kernel, network, "h")
        with pytest.raises(ValueError):
            host.cpu_seconds(-1)

    def test_host_registers_on_network(self, kernel, network):
        SimHost(kernel, network, "h")
        assert "h" in list(network.hosts)


class TestHostRegistry:
    def test_add_and_get(self, kernel, network):
        registry = HostRegistry()
        host = registry.add(SimHost(kernel, network, "x"))
        assert registry.get("x") is host
        assert "x" in registry and len(registry) == 1

    def test_duplicate_rejected(self, kernel, network):
        registry = HostRegistry()
        registry.add(SimHost(kernel, network, "x"))
        with pytest.raises(ValueError):
            registry.add(SimHost(kernel, network, "x"))

    def test_unknown_host_raises(self):
        registry = HostRegistry()
        with pytest.raises(KeyError):
            registry.get("ghost")
        assert registry.find("ghost") is None


class TestRandomStream:
    def test_same_seed_same_sequence(self):
        a = RandomStream(7)
        b = RandomStream(7)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert RandomStream(1).random() != RandomStream(2).random()

    def test_fork_is_independent_of_parent_consumption(self):
        a = RandomStream(7)
        fork_before = a.fork("child").random()
        b = RandomStream(7)
        for _ in range(100):
            b.random()
        fork_after = b.fork("child").random()
        assert fork_before == fork_after

    def test_forks_with_different_names_differ(self):
        root = RandomStream(7)
        assert root.fork("x").random() != root.fork("y").random()

    def test_zipf_index_in_range_and_skewed(self):
        stream = RandomStream(3)
        draws = [stream.zipf_index(10) for _ in range(500)]
        assert all(0 <= d < 10 for d in draws)
        assert draws.count(0) > draws.count(9)

    def test_zipf_requires_positive_n(self):
        with pytest.raises(ValueError):
            RandomStream(1).zipf_index(0)

    def test_bounded_lognormal_respects_bounds(self):
        stream = RandomStream(5)
        for _ in range(200):
            value = stream.bounded_lognormal(0, 2.0, 0.5, 2.0)
            assert 0.5 <= value <= 2.0

    def test_chance_extremes(self):
        stream = RandomStream(1)
        assert not any(stream.chance(0.0) for _ in range(50))
        assert all(stream.chance(1.0) for _ in range(50))

    def test_stream_from_coercions(self):
        assert isinstance(stream_from(5, "x"), RandomStream)
        parent = RandomStream(5)
        child = stream_from(parent, "x")
        assert child.name == "root/x"
        assert isinstance(stream_from(None, "x"), RandomStream)
        with pytest.raises(TypeError):
            stream_from("bad", "x")


class TestCostLedger:
    def test_totals_accumulate(self):
        ledger = CostLedger()
        ledger.add_network(1.5, 100)
        ledger.add_cpu(0.5)
        ledger.add_server(0.25)
        assert ledger.total_seconds == pytest.approx(2.25)
        assert ledger.total_bytes == 100
        assert ledger.events == 3

    def test_category_breakdown(self):
        ledger = CostLedger()
        ledger.add_network(1.0, 10)
        ledger.add_network(2.0, 20)
        assert ledger.seconds("network") == pytest.approx(3.0)
        assert ledger.bytes("network") == 30
        assert ledger.seconds("cpu") == 0.0

    def test_negative_costs_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.add("x", -1.0)
        with pytest.raises(ValueError):
            ledger.add("x", 1.0, -5)

    def test_merge_combines_categories(self):
        a = CostLedger()
        a.add_cpu(1.0)
        b = CostLedger()
        b.add_cpu(2.0)
        b.add_network(1.0, 50)
        a.merge(b)
        assert a.seconds("cpu") == pytest.approx(3.0)
        assert a.bytes("network") == 50
        assert a.events == 3

    def test_snapshot_is_independent(self):
        ledger = CostLedger()
        ledger.add_cpu(1.0)
        snap = ledger.snapshot()
        ledger.add_cpu(1.0)
        assert snap.total_seconds == pytest.approx(1.0)

    def test_reset(self):
        ledger = CostLedger()
        ledger.add_cpu(1.0)
        ledger.reset()
        assert ledger.total_seconds == 0 and ledger.events == 0
