"""Last-mile combinations: object agents with wrapper stacks, and
crawl determinism."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.agent.objagent import ObjectAgent, launch_briefcase
from repro.wrappers.monitor import MonitorLog, MonitorWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers


class RoamingCounter(ObjectAgent):
    """Pickled agent that hops once and reports its attribute state."""

    def __init__(self):
        self.hops = 0

    def run(self, ctx, bc):
        self.hops += 1
        nxt = bc.folder("HOSTS").pop_first()
        if nxt is None:
            yield from ctx.send(bc.get_text("HOME"),
                                Briefcase({"HOPS": [str(self.hops)]}))
            return "done"
        yield from self.go_with_state(ctx, nxt.as_text())


class TestObjectAgentWithWrappers:
    def test_monitor_wrapper_travels_with_pickled_agent(self,
                                                        pair_cluster):
        """Wrapper stacks must survive vm_pickle migration exactly as
        they do for code agents: the monitor reports from both hosts."""
        for node in pair_cluster.nodes.values():
            vm = node.vms["vm_pickle"]
            vm.allowed_prefixes = vm.allowed_prefixes + ("tests.",)
        node_a = pair_cluster.node("alpha.test")
        monitor_log = MonitorLog()
        node_a.firewall.register_agent(
            name="obj-monitor", principal="system", vm_name="vm_python",
            deliver_fn=monitor_log.deliver)

        driver = node_a.driver()
        briefcase = launch_briefcase(RoamingCounter(), agent_name="roamer")
        briefcase.folder("HOSTS").push("tacoma://beta.test/vm_pickle")
        briefcase.put("HOME", str(driver.uri))
        install_wrappers(briefcase, [WrapperSpec.by_ref(
            MonitorWrapper,
            {"monitor": "tacoma://alpha.test//obj-monitor",
             "tag": "roamer"})])

        def scenario():
            reply = yield from driver.meet(
                pair_cluster.vm_uri("alpha.test", "vm_pickle"),
                briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)
            message = yield from driver.recv(timeout=60)
            # Drain in-flight async monitor posts before reading the log.
            yield pair_cluster.kernel.timeout(1)
            return message.briefcase.get_text("HOPS")
        assert pair_cluster.run(scenario()) == "2"
        arrived = [host for _t, host, event in monitor_log.locations()
                   if event == "arrived"]
        assert arrived == ["alpha.test", "beta.test"]
        assert monitor_log.last_known_host("roamer") == "beta.test"


class TestCrawlDeterminism:
    def test_same_site_same_result(self, small_testbed):
        from repro.robot.webbot import Webbot, WebbotConfig
        from repro.sim.ledger import CostLedger
        from repro.web.client import SimHttpClient
        site = small_testbed.site_of("www.cs.uit.no")

        def crawl():
            http = SimHttpClient(small_testbed.server.host,
                                 small_testbed.network,
                                 small_testbed.deployment, CostLedger())
            config = WebbotConfig(site.root_url,
                                  prefix=f"http://{site.host}/",
                                  max_depth=12)
            return Webbot(config, http).run()
        assert crawl() == crawl()

    def test_checkbot_deterministic_too(self, small_testbed):
        from repro.robot.checkbot import Checkbot, CheckbotConfig
        from repro.sim.ledger import CostLedger
        from repro.web.client import SimHttpClient
        site = small_testbed.site_of("www.cs.uit.no")

        def crawl():
            http = SimHttpClient(small_testbed.server.host,
                                 small_testbed.network,
                                 small_testbed.deployment, CostLedger())
            config = CheckbotConfig([site.root_url],
                                    allowed_hosts=[site.host])
            return Checkbot(config, http).run()
        assert crawl() == crawl()
