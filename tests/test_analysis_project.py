"""Whole-program analysis: call graph, effect dataflow, witness chains.

Each interprocedural rule has a seeded fixture tree under
``tests/fixtures/lint/ipa`` where the *local* rule pack sees nothing
(the offending call is laundered through an alias, a
``functools.partial``, a cross-module hop, or a retry loop) and only
the project pass reports it — with the full call chain as a witness.
These tests pin the rule ids, lines, and witness hops per fixture, plus
the engine guarantees the workflow depends on: byte-determinism,
cold/warm cache equivalence, witness-independent fingerprints, and the
decorated-``def`` suppression span.
"""

import json
import os
import shutil

from repro.analysis import Analyzer, Dataflow, export_dot, export_json
from repro.analysis.findings import fingerprinted, render_json, sort_findings
from repro.analysis.iprules import all_project_rule_ids
from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
IPA = os.path.join(FIXTURES, "ipa")


def lint_tree(*parts, **kwargs):
    analyzer = Analyzer(**kwargs)
    report = analyzer.analyze_paths([os.path.join(IPA, *parts)])
    return sort_findings(report.findings)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def witness_functions(finding):
    return [step.function for step in finding.witness]


def test_project_rule_pack_registered():
    assert sorted(all_project_rule_ids()) == [
        "ASY001", "DET001", "DET002", "DET003",
        "ERR002", "KER001", "WIRE001"]


def test_det001_transitive_through_module_alias():
    findings = lint_tree("det001_alias")
    assert [(f.rule, f.line) for f in findings] == [
        ("DET001", 16), ("DET001", 28)]
    transitive, local = findings
    # The laundered call carries the full chain: callers first, then
    # the hop where the wall-clock read actually happens.
    assert witness_functions(transitive) == [
        "pipeline.deliver", "pipeline.build_record", "pipeline.stamp"]
    assert "alias bound at line 12" in transitive.message
    # The honest time.time() call stays the local rule's finding.
    assert local.witness == ()


def test_det002_transitive_through_partial():
    findings = lint_tree("det002_partial")
    assert [(f.rule, f.line) for f in findings] == [("DET002", 15)]
    finding = findings[0]
    assert "functools.partial bound at line 11" in finding.message
    assert witness_functions(finding) == [
        "jitterlib.plan_backoff", "jitterlib.jitter"]


def test_det003_cross_module_env_read_scoped():
    findings = lint_tree("det003_env")
    # Only the repro.core entry point reports: the out-of-scope helper
    # module holding os.getenv is not itself a finding.
    assert [(f.rule, f.path.endswith("repro/core/config.py"), f.line)
            for f in findings] == [("DET003", True, 15)]
    finding = findings[0]
    assert witness_functions(finding) == [
        "repro.core.config.build_config",
        "repro.core.config.resolve_region",
        "repro.util.envsrc.deep_default_region",
        "repro.util.envsrc.default_region"]
    assert finding.witness[-1].note == "os.getenv()"


def test_ker001_transitive_heap_alias():
    findings = lint_tree("ker001_alias")
    assert [(f.rule, f.line) for f in findings] == [
        ("KER001", 9), ("KER001", 15)]
    local_import, transitive = findings
    assert local_import.witness == ()
    assert "heapq.heappush called through an alias" in transitive.message
    assert witness_functions(transitive) == [
        "heapuser.schedule_batch", "heapuser.enqueue"]


def test_err002_retry_burns_on_permanent_error():
    findings = lint_tree("err002_retry")
    assert [(f.rule, f.line) for f in findings] == [("ERR002", 31)]
    finding = findings[0]
    assert "AccessDeniedError" in finding.message
    assert "transient=False" in finding.message
    assert witness_functions(finding) == [
        "client.fetch_with_retries", "client.fetch_sealed",
        "client.open_channel"]
    assert "raises AccessDeniedError" in finding.witness[-1].note
    # Guarded, narrowed, and re-raising retry loops stay silent
    # (fetch_guarded / fetch_narrow / fetch_reraising in the fixture).


def test_wire001_reserved_folder_write_without_strip_path():
    findings = lint_tree("wire001_reserved")
    assert [(f.rule, f.line) for f in findings] == [("WIRE001", 12)]
    finding = findings[0]
    assert "TRACE-CONTEXT" in finding.message
    # inject/extract in repro.obs.propagation is the sanctioned pairing
    # and produces nothing; the mailer's stray write does.
    assert finding.path.endswith("repro/mailer.py")
    assert witness_functions(finding) == [
        "repro.mailer.send_with_trace", "repro.mailer.stamp_trace"]


def test_asy001_transport_clean_scope():
    findings = lint_tree("asy001_transport")
    assert [(f.rule, f.severity, f.line) for f in findings] == [
        ("ASY001", "warning", 17), ("ASY001", "warning", 30)]
    sim_coupled, blocking = findings
    assert "virtual time" in sim_coupled.message
    assert witness_functions(sim_coupled) == [
        "repro.core.retry.send_with_backoff", "repro.core.retry.backoff",
        "repro.sim.pacing.paced_wait"]
    assert "time.sleep" in blocking.message


def test_project_findings_are_byte_deterministic():
    analyzer = Analyzer()
    first = render_json(analyzer.analyze_paths([IPA]))
    second = render_json(Analyzer().analyze_paths([IPA]))
    assert first == second


def test_cold_and_warm_cache_are_byte_identical(tmp_path):
    cache = str(tmp_path / "facts-cache")
    cold = render_json(
        Analyzer(cache_dir=cache).analyze_paths([IPA]))
    assert os.listdir(cache)  # the cold run populated the cache
    warm_analyzer = Analyzer(cache_dir=cache)
    warm = render_json(warm_analyzer.analyze_paths([IPA]))
    uncached = render_json(Analyzer().analyze_paths([IPA]))
    assert cold == warm == uncached
    assert warm_analyzer.cache.hits > 0
    assert warm_analyzer.cache.misses == 0


def test_cache_invalidates_on_source_change(tmp_path):
    tree = tmp_path / "tree"
    shutil.copytree(os.path.join(IPA, "det001_alias"), str(tree))
    cache = str(tmp_path / "cache")
    target = tree / "pipeline.py"
    before = Analyzer(cache_dir=cache).analyze_paths([str(tree)])
    target.write_text(target.read_text().replace(
        "_clock = time.time", "_clock = len"))
    after = Analyzer(cache_dir=cache).analyze_paths([str(tree)])
    assert [f.line for f in by_rule(before.findings, "DET001")] == [16, 28]
    assert [f.line for f in by_rule(after.findings, "DET001")] == [28]


def test_witness_does_not_feed_the_fingerprint(tmp_path):
    """A baselined transitive finding survives edits to its callers:
    the witness chain is reporting detail, not identity."""
    tree = tmp_path / "tree"
    shutil.copytree(os.path.join(IPA, "det001_alias"), str(tree))

    def transitive():
        report = Analyzer().analyze_paths([str(tree)])
        finding = fingerprinted(sort_findings(report.findings))[0]
        assert finding.rule == "DET001" and finding.witness
        return finding

    before = transitive()
    # Push the callers down two lines: every witness hop moves, but the
    # finding's own snippet and occurrence index do not.
    target = tree / "pipeline.py"
    target.write_text(target.read_text().replace(
        "def build_record(", "# shifted\n# shifted\ndef build_record("))
    after = transitive()
    assert [s.line for s in before.witness] != [s.line for s in after.witness]
    assert before.fingerprint == after.fingerprint


def test_suppression_spans_decorated_def_header():
    """``# lint: disable=RULE`` anywhere on a decorated ``def`` header
    (decorator lines through the ``def`` line) covers the whole
    statement — the decorator expression included."""
    deco = ("def deco(stamp):\n"
            "    def wrap(fn):\n"
            "        return fn\n"
            "    return wrap\n")
    analyzer = Analyzer()
    on_def = ("import time\n" + deco +
              "@deco(time.time())\n"
              "def f():  # lint: disable=DET001\n"
              "    return 1\n")
    assert analyzer.analyze_source(on_def) == []
    on_decorator = ("import time\n" + deco +
                    "@deco(1)  # lint: disable=DET001\n"
                    "def g(t=time.time()):\n"
                    "    return t\n")
    assert analyzer.analyze_source(on_decorator) == []
    unsuppressed = ("import time\n" + deco +
                    "@deco(time.time())\n"
                    "def h():\n"
                    "    return 1\n")
    assert [f.rule for f in analyzer.analyze_source(unsuppressed)] == \
        ["DET001"]


def test_graph_json_export_is_deterministic():
    analyzer = Analyzer()
    project = analyzer.build_project([IPA])
    flow = Dataflow(project)
    first = export_json(project, flow.effects)
    repeat = export_json(Analyzer().build_project([IPA]),
                         Dataflow(Analyzer().build_project([IPA])).effects)
    assert first == repeat
    document = json.loads(first)
    assert document["tool"] == "repro-lint-graph"
    assert document["summary"]["functions"] == len(document["nodes"])
    by_name = {node["function"]: node for node in document["nodes"]}
    assert "reads-wall-clock" in by_name["pipeline.stamp"]["effects"]
    assert any(edge["from"] == "pipeline.deliver"
               and edge["to"] == "pipeline.build_record"
               for edge in document["edges"])


def test_graph_cli_flags(tmp_path, capsys):
    code = main(["lint", IPA, "--graph", "json", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 0
    assert json.loads(out)["tool"] == "repro-lint-graph"
    code = main(["lint", IPA, "--graph", "dot", "--no-baseline"])
    dot = capsys.readouterr().out
    assert code == 0
    assert dot.startswith("digraph callgraph {")
    assert '"pipeline.deliver" -> "pipeline.build_record";' in dot


def test_cli_json_includes_witness_and_sarif_related_locations(
        tmp_path, capsys):
    sarif_path = str(tmp_path / "ipa.sarif")
    code = main(["lint", os.path.join(IPA, "det003_env"), "--json",
                 "--no-baseline", "--sarif", sarif_path])
    out = capsys.readouterr().out
    assert code == 1
    finding = json.loads(out)["findings"][0]
    assert [step["function"] for step in finding["witness"]][-1] == \
        "repro.util.envsrc.default_region"
    sarif = json.loads(open(sarif_path).read())
    result = sarif["runs"][0]["results"][0]
    assert len(result["relatedLocations"]) == 4
    rule_ids = {rule["id"] for rule in
                sarif["runs"][0]["tool"]["driver"]["rules"]}
    # Interprocedural-only rules are declared to the SARIF viewer too.
    assert {"ERR002", "WIRE001", "ASY001"} <= rule_ids
