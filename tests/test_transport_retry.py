"""Transport failures through ``send``/``meet``/``go`` — the pre-retry
baseline (errors propagate, links are not charged) and the retry layer
(transient failures heal, counters tick)."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    CommTimeoutError,
    MigrationError,
    is_transient,
)
from repro.core.retry import RetryPolicy
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.obs.telemetry import Telemetry
from repro.sim.network import (
    BANDWIDTH_100MBIT,
    LATENCY_LAN,
    LinkDownError,
    NoRouteError,
)
from repro.system.cluster import TaxCluster
from repro.vm import loader


@pytest.fixture
def metered_pair():
    """alpha/beta LAN with telemetry on (for retry counters)."""
    cluster = TaxCluster(telemetry=Telemetry(enabled=True))
    cluster.add_node("alpha.test")
    cluster.add_node("beta.test")
    cluster.network.link("alpha.test", "beta.test",
                         latency=LATENCY_LAN, bandwidth=BANDWIDTH_100MBIT)
    return cluster


def echo_agent(ctx, bc):
    while True:
        message = yield from ctx.recv()
        yield from ctx.reply(message, Briefcase(
            {"ECHO": [message.briefcase.get_text("BODY") or ""]}))


def hopper_agent(ctx, bc):
    """Tries to go to beta.test; reports the failure's classification."""
    try:
        yield from ctx.go("tacoma://beta.test/vm_python")
    except MigrationError as exc:
        bc.append("LOG", f"transient={is_transient(exc)}")
    yield from ctx.send(bc.get_text("HOME"), bc.snapshot())


def retry_count(cluster, op):
    """Total ``transport.retries`` across agents for one operation."""
    metric = cluster.telemetry.metrics.get("transport.retries")
    if metric is None:
        return 0
    return sum(sample["value"] for sample in metric.samples()
               if sample["labels"].get("op") == op)


def launch_local_echo(cluster, host):
    """Launch the echo agent via a driver on its own host: no link use."""
    briefcase = Briefcase()
    loader.install_payload(briefcase, loader.pack_ref(echo_agent),
                           agent_name="echo")
    driver = cluster.node(host).driver(name="launcher")

    def scenario():
        reply = yield from driver.meet(cluster.vm_uri(host), briefcase,
                                       timeout=30)
        assert reply.get_text(wellknown.STATUS) == "ok"
        return reply.get_text("AGENT-URI")
    return cluster.run(scenario())


class TestBaselinePropagation:
    """No retry policy configured: first failure surfaces immediately."""

    def test_send_over_partitioned_link_raises(self, pair_cluster):
        echo_uri = launch_local_echo(pair_cluster, "beta.test")
        driver = pair_cluster.node("alpha.test").driver()
        pair_cluster.network.set_link_up("alpha.test", "beta.test", False)

        def scenario():
            with pytest.raises(LinkDownError) as info:
                yield from driver.send(echo_uri, Briefcase())
            return is_transient(info.value)
        assert pair_cluster.run(scenario()) is True

    def test_meet_over_partitioned_link_raises(self, pair_cluster):
        echo_uri = launch_local_echo(pair_cluster, "beta.test")
        driver = pair_cluster.node("alpha.test").driver()
        pair_cluster.network.set_link_up("alpha.test", "beta.test", False)

        def scenario():
            with pytest.raises(LinkDownError):
                yield from driver.meet(echo_uri, Briefcase({"BODY": ["x"]}),
                                       timeout=10)
            return "done"
        assert pair_cluster.run(scenario()) == "done"

    def test_send_to_unlinked_host_raises_no_route(self, pair_cluster):
        pair_cluster.add_node("gamma.test")  # booted, but no link to it
        driver = pair_cluster.node("alpha.test").driver()
        target = AgentUri.parse("tacoma://gamma.test//ag_fs")

        def scenario():
            with pytest.raises(NoRouteError) as info:
                yield from driver.send(target, Briefcase())
            return is_transient(info.value)
        assert pair_cluster.run(scenario()) is False

    def test_failed_sends_do_not_charge_the_link(self, pair_cluster):
        echo_uri = launch_local_echo(pair_cluster, "beta.test")
        driver = pair_cluster.node("alpha.test").driver()
        stats = pair_cluster.network.stats_between("alpha.test",
                                                   "beta.test")
        before = (stats.messages, stats.payload_bytes)
        pair_cluster.network.set_link_up("alpha.test", "beta.test", False)

        def scenario():
            for _ in range(3):
                with pytest.raises(LinkDownError):
                    yield from driver.send(echo_uri,
                                           Briefcase({"BODY": ["x"]}))
            return "done"
        pair_cluster.run(scenario())
        assert (stats.messages, stats.payload_bytes) == before

    def test_go_over_partitioned_link_is_transient_migration_error(
            self, pair_cluster):
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(hopper_agent),
                               agent_name="hopper")
        driver = pair_cluster.node("alpha.test").driver()
        briefcase.put("HOME", str(driver.uri))
        pair_cluster.network.set_link_up("alpha.test", "beta.test", False)

        def scenario():
            yield from driver.meet(pair_cluster.vm_uri("alpha.test"),
                                   briefcase, timeout=30)
            message = yield from driver.recv(timeout=30)
            return message.briefcase.folder("LOG").texts()
        assert pair_cluster.run(scenario()) == ["transient=True"]


class TestRetryLayer:
    def test_send_retries_ride_out_a_flap(self, metered_pair):
        echo_uri = launch_local_echo(metered_pair, "beta.test")
        driver = metered_pair.node("alpha.test").driver()
        driver.configure_retry(RetryPolicy(
            max_attempts=5, base_delay=0.2, multiplier=2.0, jitter=0.0))
        network = metered_pair.network
        network.set_link_up("alpha.test", "beta.test", False)

        def healer():
            yield metered_pair.kernel.timeout(0.5)
            network.set_link_up("alpha.test", "beta.test", True)

        def scenario():
            metered_pair.kernel.spawn(healer())
            ok = yield from driver.send(echo_uri, Briefcase({"BODY": ["x"]}))
            return ok
        assert metered_pair.run(scenario()) is True
        assert retry_count(metered_pair, "send") >= 1
        assert network.stats_between("alpha.test", "beta.test").messages == 1

    def test_send_does_not_retry_permanent_failures(self, metered_pair):
        metered_pair.add_node("gamma.test")
        driver = metered_pair.node("alpha.test").driver()
        driver.configure_retry(RetryPolicy(max_attempts=4, jitter=0.0))
        target = AgentUri.parse("tacoma://gamma.test//ag_fs")

        def scenario():
            with pytest.raises(NoRouteError):
                yield from driver.send(target, Briefcase())
            return metered_pair.kernel.now
        elapsed = metered_pair.run(scenario())
        assert elapsed < 0.05  # no backoff was spent
        assert retry_count(metered_pair, "send") == 0

    def test_meet_resends_until_policy_exhausted(self, metered_pair):
        driver = metered_pair.node("alpha.test").driver()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1,
                             multiplier=2.0, jitter=0.0)
        driver.configure_retry(policy)
        # The target never exists, so every round parks the message and
        # the reply never comes: meet re-sends policy.retries times.
        target = AgentUri.parse("never-there")

        def scenario():
            with pytest.raises(CommTimeoutError):
                yield from driver.meet(target, Briefcase(), timeout=0.5)
            return "done"
        assert metered_pair.run(scenario()) == "done"
        assert retry_count(metered_pair, "meet") == policy.retries
