"""Tests for robots.txt compliance and redirect handling."""

import pytest

from repro.robot.linkcheck import probe_url, validate_rejected
from repro.robot.webbot import (
    REASON_REDIRECT_LIMIT,
    REASON_ROBOTS,
    Webbot,
    WebbotConfig,
    parse_robots_txt,
)
from repro.sim.host import SimHost
from repro.sim.ledger import CostLedger
from repro.web.client import SimHttpClient
from repro.web.server import HttpRequest, WebDeployment, WebServer
from repro.web.site import SiteSpec, generate_site


class FakeResponse:
    def __init__(self, status, body="", location=None):
        self.status = status
        self.body = body
        self.location = location
        self.ok = 200 <= status < 300


class FakeWeb:
    """Pages + redirects + robots, for driving the robot directly."""

    def __init__(self, pages=None, redirects=None, robots=None):
        self.pages = pages or {}
        self.redirects = redirects or {}
        self.robots = robots
        self.log = []

    def _answer(self, url, with_body):
        if url.endswith("/robots.txt"):
            if self.robots is None:
                return FakeResponse(404)
            return FakeResponse(200, self.robots if with_body else "")
        if url in self.redirects:
            return FakeResponse(301, location=self.redirects[url])
        if url in self.pages:
            return FakeResponse(200,
                                self.pages[url] if with_body else "")
        return FakeResponse(404)

    def get(self, url):
        self.log.append(("GET", url))
        return self._answer(url, with_body=True)

    def head(self, url):
        self.log.append(("HEAD", url))
        return self._answer(url, with_body=False)


def page(*hrefs):
    items = "".join(f'<a href="{h}">x</a>' for h in hrefs)
    return f"<html><body>{items}</body></html>"


class TestRobotsTxtParsing:
    def test_star_section_collected(self):
        text = ("User-agent: *\n"
                "Disallow: /private\n"
                "Disallow: /tmp/\n")
        assert parse_robots_txt(text) == ["/private", "/tmp/"]

    def test_other_agents_ignored(self):
        text = ("User-agent: GoogleBot\n"
                "Disallow: /only-for-google\n"
                "User-agent: *\n"
                "Disallow: /everyone\n")
        assert parse_robots_txt(text) == ["/everyone"]

    def test_comments_and_blank_lines(self):
        text = ("# a comment\n\n"
                "User-agent: *   # inline\n"
                "Disallow: /x\n")
        assert parse_robots_txt(text) == ["/x"]

    def test_empty_disallow_means_allow_all(self):
        assert parse_robots_txt("User-agent: *\nDisallow:\n") == []

    def test_garbage_tolerated(self):
        assert parse_robots_txt("!!! not robots at all") == []


class TestRobotsCompliance:
    def world(self):
        return FakeWeb(
            pages={
                "http://s/index.html": page("/open.html", "/private/x.html"),
                "http://s/open.html": page(),
                "http://s/private/x.html": page(),
            },
            robots="User-agent: *\nDisallow: /private\n")

    def test_disallowed_page_rejected_not_fetched(self):
        web = self.world()
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5),
                        web).run()
        robots_rejects = [r for r in result["rejected"]
                          if r["reason"] == REASON_ROBOTS]
        assert [r["url"] for r in robots_rejects] == \
            ["http://s/private/x.html"]
        assert ("GET", "http://s/private/x.html") not in web.log
        assert result["pages_scanned"] == 2

    def test_robots_fetched_once_per_host(self):
        web = self.world()
        Webbot(WebbotConfig("http://s/index.html", max_depth=5), web).run()
        robots_gets = [entry for entry in web.log
                       if entry[1] == "http://s/robots.txt"]
        assert len(robots_gets) == 1

    def test_honor_robots_false_crawls_everything(self):
        web = self.world()
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5,
                                     honor_robots=False), web).run()
        assert result["pages_scanned"] == 3
        assert ("GET", "http://s/robots.txt") not in web.log

    def test_missing_robots_means_no_restrictions(self):
        web = FakeWeb(pages={"http://s/index.html": page("/a.html"),
                             "http://s/a.html": page()})
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5),
                        web).run()
        assert result["pages_scanned"] == 2

    def test_second_pass_never_probes_robots_rejections(self):
        web = self.world()
        rejected = [{"url": "http://s/private/x.html", "referrer": "p",
                     "reason": REASON_ROBOTS}]
        assert validate_rejected(rejected, web) == []
        assert web.log == []


class TestRedirects:
    def test_redirect_followed_and_links_resolved_at_target(self):
        web = FakeWeb(
            pages={"http://s/index.html": page("/moved.html"),
                   "http://s/new/home.html": page("child.html"),
                   "http://s/new/child.html": page()},
            redirects={"http://s/moved.html": "http://s/new/home.html"})
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5),
                        web).run()
        # child.html resolved relative to the redirect TARGET.
        assert ("GET", "http://s/new/child.html") in web.log
        assert result["redirects_followed"] == 1
        assert result["pages_scanned"] == 3
        assert result["invalid"] == []

    def test_redirect_to_missing_target_is_invalid(self):
        web = FakeWeb(
            pages={"http://s/index.html": page("/moved.html")},
            redirects={"http://s/moved.html": "http://s/gone.html"})
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5),
                        web).run()
        assert [r["url"] for r in result["invalid"]] == \
            ["http://s/moved.html"]
        assert result["invalid"][0]["status"] == 404

    def test_redirect_loop_capped(self):
        web = FakeWeb(
            pages={"http://s/index.html": page("/a.html")},
            redirects={"http://s/a.html": "http://s/b.html",
                       "http://s/b.html": "http://s/a.html"})
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5),
                        web).run()
        # The loop is detected via the visited set (b -> a already seen).
        assert result["pages_scanned"] == 1
        assert len(web.log) < 10

    def test_long_chain_hits_redirect_limit(self):
        redirects = {f"http://s/r{i}.html": f"http://s/r{i + 1}.html"
                     for i in range(10)}
        web = FakeWeb(pages={"http://s/index.html": page("/r0.html")},
                      redirects=redirects)
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5,
                                     max_redirects=3), web).run()
        limited = [r for r in result["invalid"]
                   if r["reason"] == REASON_REDIRECT_LIMIT]
        assert len(limited) == 1

    def test_offsite_redirect_rejected_under_prefix(self):
        web = FakeWeb(
            pages={"http://s/index.html": page("/away.html")},
            redirects={"http://s/away.html": "http://elsewhere/x.html"})
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5,
                                     prefix="http://s/"), web).run()
        assert any(r["url"] == "http://elsewhere/x.html" and
                   r["reason"] == "prefix" for r in result["rejected"])

    def test_probe_url_follows_redirects(self):
        web = FakeWeb(pages={"http://s/final.html": page()},
                      redirects={"http://s/start.html":
                                 "http://s/final.html"})
        status, alive = probe_url("http://s/start.html", web)
        assert alive and status == 200

    def test_probe_url_detects_loop(self):
        web = FakeWeb(redirects={"http://s/a": "http://s/b",
                                 "http://s/b": "http://s/a"})
        status, alive = probe_url("http://s/a", web)
        assert not alive

    def test_probe_url_dead_target(self):
        web = FakeWeb(redirects={"http://s/a": "http://s/missing"})
        status, alive = probe_url("http://s/a", web)
        assert not alive and status == 404

    def test_redirect_into_disallowed_area_rejected(self):
        """Compliance survives indirection: /open redirecting into
        /private must be rejected, not silently crawled."""
        web = FakeWeb(
            pages={"http://s/index.html": page("/open.html"),
                   "http://s/private/x.html": page()},
            redirects={"http://s/open.html": "http://s/private/x.html"},
            robots="User-agent: *\nDisallow: /private\n")
        result = Webbot(WebbotConfig("http://s/index.html", max_depth=5),
                        web).run()
        robots_rejects = [r for r in result["rejected"]
                          if r["reason"] == REASON_ROBOTS]
        assert [r["url"] for r in robots_rejects] == \
            ["http://s/private/x.html"]
        assert ("GET", "http://s/private/x.html") not in web.log


class TestGeneratedSiteFeatures:
    def spec(self):
        return SiteSpec(host="www.r.test", n_pages=40, total_bytes=120_000,
                        redirect_fraction=0.05, redirect_dead_fraction=0.4,
                        robots_disallow=("/private",), private_pages=5,
                        seed=13)

    def test_ground_truth_populated(self):
        site = generate_site(self.spec())
        assert site.redirects
        assert site.truth.redirect_alive or site.truth.redirect_dead
        assert len(site.truth.robots_blocked) == 5
        assert site.robots_txt and "Disallow: /private" in site.robots_txt

    def test_alive_redirects_point_at_real_pages(self):
        site = generate_site(self.spec())
        for _src, href in site.truth.redirect_alive:
            assert site.redirects[href] in site.pages

    def test_dead_redirects_point_nowhere(self):
        site = generate_site(self.spec())
        for _src, href in site.truth.redirect_dead:
            assert site.redirects[href] not in site.pages

    def test_server_serves_robots_and_redirects(self, kernel, network):
        site = generate_site(self.spec())
        host = SimHost(kernel, network, site.host)
        server = WebServer(host, site)
        robots, _ = server.handle(HttpRequest("GET", "/robots.txt"))
        assert robots.status == 200 and "Disallow" in robots.body
        redirect_path = next(iter(site.redirects))
        response, _ = server.handle(HttpRequest("GET", redirect_path))
        assert response.status == 301
        assert response.location.startswith(f"http://{site.host}/")

    def test_end_to_end_crawl_with_features(self, kernel, network):
        site = generate_site(self.spec())
        host = SimHost(kernel, network, site.host)
        deployment = WebDeployment([WebServer(host, site)])
        http = SimHttpClient(host, network, deployment, CostLedger())
        config = WebbotConfig(site.root_url, prefix=f"http://{site.host}/",
                              max_depth=20)
        result = Webbot(config, http).run()
        # Robots-disallowed pages were rejected, not crawled.
        blocked_urls = {f"http://{site.host}{p}"
                        for _s, p in site.truth.robots_blocked}
        robots_rejected = {r["url"] for r in result["rejected"]
                           if r["reason"] == REASON_ROBOTS}
        assert robots_rejected <= blocked_urls
        # Dead-behind-redirect links surfaced as invalid.
        dead_redirect_urls = {f"http://{site.host}{p}"
                              for _s, p in site.truth.redirect_dead}
        invalid_urls = {r["url"] for r in result["invalid"]}
        assert invalid_urls & dead_redirect_urls
        # Alive redirects did not produce false positives.
        alive_redirect_urls = {f"http://{site.host}{p}"
                               for _s, p in site.truth.redirect_alive}
        assert not (invalid_urls & alive_redirect_urls)
        assert result["redirects_followed"] > 0
