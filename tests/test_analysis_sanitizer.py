"""The briefcase-aliasing sanitizer: positives, transfers, and the
no-false-positive property over the real experiment flows.

The snapshot contract says every briefcase crossing an agent boundary
is copied (``send`` snapshots, ``go``/``spawn`` snapshot, VM launch
snapshots), so the sanitizer must stay silent across the E1 experiment,
the chaos recovery runs, and the overload floods — any SAN finding
there is a real state-sharing bug.  Conversely, deliberately sharing a
Folder between two live contexts must fire SAN001, and same-instant
writes attributed to different agents must fire SAN002.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agent.context import AgentContext
from repro.analysis.sanitizer import (
    RULE_ALIASING,
    RULE_CONFLICT,
    AliasingSanitizer,
    sanitizing,
)
from repro.core.briefcase import Briefcase
from repro.sim.eventloop import Kernel, ambient_sanitizer


class _Node:
    """Minimal stand-in for a VM/driver node: just a kernel."""

    def __init__(self, kernel):
        self.kernel = kernel


def _context(node, vm_name, briefcase, principal="tester"):
    return AgentContext(node, vm_name, briefcase, principal)


def test_ambient_sanitizer_install_and_restore():
    assert ambient_sanitizer() is None
    with sanitizing("probe") as sanitizer:
        assert ambient_sanitizer() is sanitizer
        assert Kernel().sanitizer is sanitizer
    assert ambient_sanitizer() is None
    assert Kernel().sanitizer is None


def test_aliased_briefcase_fires_san001():
    with sanitizing("alias") as sanitizer:
        node = _Node(Kernel())
        shared = Briefcase()
        shared.put("DATA", "hello")
        _context(node, "vm-a", shared, principal="alice")
        _context(node, "vm-b", shared, principal="bob")
    rules = [f.rule for f in sanitizer.sorted_findings()]
    assert RULE_ALIASING in rules
    finding = next(f for f in sanitizer.findings
                   if f.rule == RULE_ALIASING)
    assert "alice" in finding.message and "bob" in finding.message
    assert finding.path == "runtime:alias"


def test_snapshot_does_not_fire():
    with sanitizing("snapshot") as sanitizer:
        node = _Node(Kernel())
        original = Briefcase()
        original.put("DATA", "hello")
        _context(node, "vm-a", original, principal="alice")
        _context(node, "vm-b", original.snapshot(), principal="bob")
    assert sanitizer.clean
    assert sanitizer.observations > 0


def test_same_instant_conflicting_writes_fire_san002():
    with sanitizing("conflict") as sanitizer:
        node = _Node(Kernel())
        shared = Briefcase()
        shared.put("DATA", "v0")
        a = _context(node, "vm-a", shared, principal="alice")
        shared.put("DATA", "v1")
        a._sanitize(shared, "send")          # write attributed to alice
        shared.put("DATA", "v2")
        _context(node, "vm-b", shared, "bob")  # bob writes, same instant
    rules = {f.rule for f in sanitizer.findings}
    assert RULE_CONFLICT in rules


def test_repeated_writes_by_one_agent_are_fine():
    with sanitizing("solo") as sanitizer:
        node = _Node(Kernel())
        briefcase = Briefcase()
        briefcase.put("DATA", "v0")
        ctx = _context(node, "vm-a", briefcase, principal="alice")
        for i in range(5):
            briefcase.put("DATA", f"v{i + 1}")
            ctx._sanitize(briefcase, "send")
    assert sanitizer.clean


def test_ownership_transfer_from_finished_agent():
    with sanitizing("transfer") as sanitizer:
        node = _Node(Kernel())
        briefcase = Briefcase()
        briefcase.put("DATA", "hello")
        a = _context(node, "vm-a", briefcase, principal="alice")
        a.finished = True                    # agent completed its run
        _context(node, "vm-b", briefcase, principal="bob")
    assert sanitizer.clean


def test_findings_deduplicate():
    sanitizer = AliasingSanitizer("dedup")
    with sanitizing("dedup", sanitizer):
        node = _Node(Kernel())
        shared = Briefcase()
        shared.put("DATA", "hello")
        a = _context(node, "vm-a", shared, principal="alice")
        b = _context(node, "vm-b", shared, principal="bob")
        for _ in range(4):
            a._sanitize(shared, "send")
            b._sanitize(shared, "send")
    aliasing = [f for f in sanitizer.findings if f.rule == RULE_ALIASING]
    assert len(aliasing) == 1


# -- no false positives on the real flows ------------------------------------


def test_quickstart_runs_clean_under_sanitizer():
    with sanitizing("quickstart") as sanitizer:
        from repro.obs.demo import run_traced_quickstart
        run_traced_quickstart()
    assert sanitizer.clean
    assert sanitizer.observations > 50   # the taps actually fired


def test_e1_runs_clean_under_sanitizer():
    with sanitizing("e1") as sanitizer:
        from repro.bench.experiments import run_e1
        run_e1(seed=2000)
    assert sanitizer.clean
    assert sanitizer.observations > 0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50),
       scenario=st.sampled_from(["chaos", "overload"]))
def test_property_sanitizer_never_fires_on_real_flows(seed, scenario):
    """R2 (chaos recovery) and R3 (overload) runs are alias-free for
    any seed: every briefcase that crosses an agent boundary is a
    snapshot."""
    with sanitizing(f"{scenario}-{seed}") as sanitizer:
        if scenario == "chaos":
            from repro.chaos.scenario import run_chaos
            run_chaos(seed=seed, plan="mid-crash", recovery=True)
        else:
            from repro.bench.overload import run_overload
            run_overload(seed=seed, governed=True)
    assert sanitizer.clean, [f.message for f in sanitizer.findings]
    assert sanitizer.observations > 0
