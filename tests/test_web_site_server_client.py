"""Unit tests for the site generator, web server, and HTTP client."""

import pytest

from repro.sim.host import SimHost
from repro.sim.ledger import CostLedger
from repro.web.client import ClientModel, SimHttpClient
from repro.web.server import (
    HttpRequest,
    ServerModel,
    WebDeployment,
    WebServer,
)
from repro.web.site import (
    SiteSpec,
    external_stub_site,
    generate_site,
    paper_site_spec,
)
from repro.robot.webbot import extract_links


@pytest.fixture
def small_site():
    return generate_site(SiteSpec(
        host="www.test", n_pages=40, total_bytes=120_000,
        external_hosts=("ext.test",), dead_internal_fraction=0.05,
        external_link_fraction=0.1, external_dead_fraction=0.5, seed=11))


class TestSiteGenerator:
    def test_page_count_exact(self, small_site):
        assert small_site.n_pages == 40

    def test_total_bytes_close_to_budget(self, small_site):
        assert abs(small_site.total_bytes - 120_000) < 6_000

    def test_root_exists(self, small_site):
        assert small_site.root_path in small_site.pages
        assert small_site.root_url == "http://www.test/index.html"

    def test_deterministic(self):
        spec = SiteSpec(host="h.test", n_pages=20, total_bytes=40_000,
                        seed=3)
        a, b = generate_site(spec), generate_site(spec)
        assert sorted(a.pages) == sorted(b.pages)
        assert all(a.pages[p].html == b.pages[p].html for p in a.pages)

    def test_different_seeds_differ(self):
        base = dict(host="h.test", n_pages=20, total_bytes=40_000)
        a = generate_site(SiteSpec(seed=1, **base))
        b = generate_site(SiteSpec(seed=2, **base))
        assert any(a.pages[p].html != b.pages[p].html
                   for p in a.pages if p in b.pages)

    def test_every_page_reachable_from_root(self, small_site):
        seen = {small_site.root_path}
        frontier = [small_site.root_path]
        while frontier:
            path = frontier.pop()
            for href in small_site.pages[path].links:
                if href.startswith("/") and href in small_site.pages and \
                        href not in seen:
                    seen.add(href)
                    frontier.append(href)
        assert seen == set(small_site.pages)

    def test_dead_internal_links_do_not_exist(self, small_site):
        assert small_site.truth.dead_internal
        for _src, href in small_site.truth.dead_internal:
            assert href not in small_site.pages

    def test_external_links_point_off_site(self, small_site):
        assert small_site.truth.external
        for _src, href in small_site.truth.external:
            assert href.startswith("http://ext.test")

    def test_ground_truth_links_are_really_in_the_html(self, small_site):
        for src, href in small_site.truth.dead_internal[:10]:
            assert href in extract_links(small_site.pages[src].html)

    def test_depths_recorded(self, small_site):
        truth = small_site.truth
        assert truth.depth_of[small_site.root_path] == 0
        assert truth.pages_within_depth(0) == 1
        assert truth.pages_within_depth(10_000) == small_site.n_pages

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SiteSpec(n_pages=0)
        with pytest.raises(ValueError):
            SiteSpec(n_pages=100, total_bytes=10)
        with pytest.raises(ValueError):
            SiteSpec(dead_internal_fraction=1.5)

    def test_paper_spec_scale(self):
        site = generate_site(paper_site_spec())
        assert site.n_pages == 917
        assert abs(site.total_bytes - 3_000_000) < 30_000

    def test_external_stub_site(self):
        site = external_stub_site("stub.test")
        assert site.n_pages >= 1 and site.root_path in site.pages


@pytest.fixture
def served(kernel, network, small_site):
    server_host = SimHost(kernel, network, "www.test")
    client_host = SimHost(kernel, network, "client.test")
    network.link("client.test", "www.test", latency=0.001,
                 bandwidth=125_000.0)
    server = WebServer(server_host, small_site)
    deployment = WebDeployment([server])
    return server, deployment, client_host, server_host


class TestWebServer:
    def test_get_existing_page(self, served, small_site):
        server = served[0]
        response, seconds = server.handle(
            HttpRequest("GET", small_site.root_path))
        assert response.status == 200
        assert response.body == small_site.pages[small_site.root_path].html
        assert seconds > 0

    def test_get_missing_page_404(self, served):
        response, _ = served[0].handle(HttpRequest("GET", "/nope.html"))
        assert response.status == 404 and not response.ok

    def test_head_has_no_body(self, served, small_site):
        response, _ = served[0].handle(
            HttpRequest("HEAD", small_site.root_path))
        assert response.status == 200 and response.body == ""
        assert response.content_length > 0

    def test_unsupported_method_501(self, served):
        response, _ = served[0].handle(HttpRequest("POST", "/x"))
        assert response.status == 501

    def test_path_normalised(self, served, small_site):
        messy = small_site.root_path.replace("/", "//", 1)
        response, _ = served[0].handle(HttpRequest("GET", messy))
        assert response.status == 200

    def test_counters(self, served, small_site):
        server = served[0]
        server.handle(HttpRequest("GET", small_site.root_path))
        server.handle(HttpRequest("GET", "/missing"))
        assert server.requests_served == 2
        assert server.bytes_served > 0

    def test_service_time_scales_with_size(self):
        model = ServerModel(per_request_cpu=0.001, per_kilobyte_cpu=0.001)
        from repro.web.server import HttpResponse
        small = model.service_seconds(HttpResponse(200, "x"))
        large = model.service_seconds(HttpResponse(200, "x" * 10_240))
        assert large > small

    def test_deployment_resolution(self, served):
        _, deployment, _, _ = served
        from repro.web import urls
        assert deployment.resolve(urls.parse("http://www.test/")) is not None
        assert deployment.resolve(urls.parse("http://ghost/")) is None

    def test_deployment_duplicate_rejected(self, served):
        server, deployment, _, _ = served
        with pytest.raises(ValueError):
            deployment.add(server)


class TestHttpClient:
    def test_local_vs_remote_cost(self, served, small_site, kernel):
        server, deployment, client_host, server_host = served
        local_ledger, remote_ledger = CostLedger(), CostLedger()
        local = SimHttpClient(server_host, server_host.network, deployment,
                              local_ledger)
        remote = SimHttpClient(client_host, client_host.network, deployment,
                               remote_ledger)
        url = small_site.root_url
        assert local.get(url).status == 200
        assert remote.get(url).status == 200
        assert remote_ledger.seconds("network") > \
            local_ledger.seconds("network") * 10

    def test_unknown_host_connect_fail(self, served):
        _, deployment, client_host, _ = served
        client = SimHttpClient(client_host, client_host.network, deployment,
                               CostLedger())
        response = client.get("http://no-such-host/")
        assert response.status == 0 and response.failed_to_connect
        assert client.ledger.seconds("connect-fail") > 0

    def test_malformed_url_fails_cleanly(self, served):
        _, deployment, client_host, _ = served
        client = SimHttpClient(client_host, client_host.network, deployment,
                               CostLedger())
        assert client.get("not a url").status == 0

    def test_head_cheaper_than_get(self, served, small_site):
        _, deployment, client_host, _ = served
        get_ledger, head_ledger = CostLedger(), CostLedger()
        SimHttpClient(client_host, client_host.network, deployment,
                      get_ledger).get(small_site.root_url)
        SimHttpClient(client_host, client_host.network, deployment,
                      head_ledger).head(small_site.root_url)
        assert head_ledger.total_seconds < get_ledger.total_seconds

    def test_partitioned_link_is_connect_fail(self, served, small_site):
        _, deployment, client_host, _ = served
        client_host.network.set_link_up("client.test", "www.test", False)
        client = SimHttpClient(client_host, client_host.network, deployment,
                               CostLedger())
        assert client.get(small_site.root_url).failed_to_connect

    def test_handshake_rtts_charged(self, served, small_site):
        _, deployment, client_host, _ = served
        with_hs = CostLedger()
        without_hs = CostLedger()
        SimHttpClient(client_host, client_host.network, deployment, with_hs,
                      model=ClientModel(handshake_rtts=1)
                      ).get(small_site.root_url)
        SimHttpClient(client_host, client_host.network, deployment,
                      without_hs, model=ClientModel(handshake_rtts=0)
                      ).get(small_site.root_url)
        assert with_hs.seconds("network") - without_hs.seconds("network") \
            == pytest.approx(0.002)

    def test_request_counter(self, served, small_site):
        _, deployment, client_host, _ = served
        client = SimHttpClient(client_host, client_host.network, deployment,
                               CostLedger())
        client.get(small_site.root_url)
        client.head(small_site.root_url)
        assert client.requests_made == 2
