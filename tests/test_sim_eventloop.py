"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopProcess,
)
from repro.sim.eventloop import Kernel


def drain(kernel, until=None):
    return kernel.run(until=until)


class TestEventBasics:
    def test_new_event_is_pending(self, kernel):
        event = kernel.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, kernel):
        event = kernel.event()
        event.succeed(42)
        drain(kernel)
        assert event.ok and event.value == 42

    def test_fail_carries_exception(self, kernel):
        event = kernel.event()
        event.fail(ValueError("boom"))
        drain(kernel)
        assert not event.ok
        with pytest.raises(ValueError):
            _ = event.value

    def test_double_trigger_rejected(self, kernel):
        event = kernel.event()
        event.succeed(1)
        with pytest.raises(EventAlreadyTriggered):
            event.succeed(2)
        with pytest.raises(EventAlreadyTriggered):
            event.fail(RuntimeError())

    def test_fail_requires_exception_instance(self, kernel):
        event = kernel.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, kernel):
        event = kernel.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callback_after_processing_runs_immediately(self, kernel):
        event = kernel.event()
        event.succeed("x")
        drain(kernel)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_clock(self, kernel):
        kernel.timeout(5.0)
        drain(kernel)
        assert kernel.now == 5.0

    def test_timeouts_fire_in_order(self, kernel):
        order = []
        kernel.timeout(3).add_callback(lambda e: order.append(3))
        kernel.timeout(1).add_callback(lambda e: order.append(1))
        kernel.timeout(2).add_callback(lambda e: order.append(2))
        drain(kernel)
        assert order == [1, 2, 3]

    def test_same_instant_fifo(self, kernel):
        order = []
        for i in range(5):
            kernel.timeout(1.0).add_callback(
                lambda e, i=i: order.append(i))
        drain(kernel)
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.timeout(-1)

    def test_timeout_value_passthrough(self, kernel):
        event = kernel.timeout(1, value="payload")
        drain(kernel)
        assert event.value == "payload"

    def test_run_until_caps_clock(self, kernel):
        kernel.timeout(10)
        kernel.run(until=4)
        assert kernel.now == 4

    def test_run_until_with_empty_heap_advances(self, kernel):
        kernel.run(until=7)
        assert kernel.now == 7


class TestProcess:
    def test_process_returns_value(self, kernel):
        def proc():
            yield kernel.timeout(2)
            return "done"
        assert kernel.run_process(proc()) == "done"
        assert kernel.now == 2

    def test_sequential_waits_accumulate(self, kernel):
        def proc():
            yield kernel.timeout(1)
            yield kernel.timeout(2)
            yield kernel.timeout(3)
        kernel.run_process(proc())
        assert kernel.now == 6

    def test_process_receives_event_value(self, kernel):
        def proc():
            value = yield kernel.timeout(1, value="hello")
            return value
        assert kernel.run_process(proc()) == "hello"

    def test_exception_propagates_to_run_process(self, kernel):
        def proc():
            yield kernel.timeout(1)
            raise RuntimeError("inner")
        with pytest.raises(RuntimeError, match="inner"):
            kernel.run_process(proc())

    def test_failed_event_thrown_into_process(self, kernel):
        trigger = kernel.event()

        def proc():
            try:
                yield trigger
            except ValueError:
                return "caught"
        process = kernel.spawn(proc())
        trigger.fail(ValueError("x"))
        drain(kernel)
        assert process.value == "caught"

    def test_process_waits_for_process(self, kernel):
        def child():
            yield kernel.timeout(5)
            return "child-result"

        def parent():
            result = yield kernel.spawn(child())
            return result
        assert kernel.run_process(parent()) == "child-result"
        assert kernel.now == 5

    def test_yielding_non_event_fails_process(self, kernel):
        def proc():
            yield 42
        with pytest.raises(SimulationError, match="non-event"):
            kernel.run_process(proc())

    def test_yielding_foreign_event_fails(self, kernel):
        other = Kernel()

        def proc():
            yield other.timeout(1)
        with pytest.raises(SimulationError, match="another kernel"):
            kernel.run_process(proc())

    def test_spawn_requires_generator(self, kernel):
        with pytest.raises(TypeError):
            kernel.spawn(lambda: None)

    def test_stop_process_terminates_with_value(self, kernel):
        def proc():
            yield kernel.timeout(1)
            raise StopProcess("early")
            yield kernel.timeout(99)  # pragma: no cover
        assert kernel.run_process(proc()) == "early"
        assert kernel.now == 1

    def test_interrupt_raises_inside_process(self, kernel):
        def victim():
            try:
                yield kernel.timeout(100)
            except Interrupt as interrupt:
                return f"interrupted:{interrupt.cause}"
        process = kernel.spawn(victim())

        def killer():
            yield kernel.timeout(3)
            process.interrupt("bye")
        kernel.spawn(killer())
        kernel.run_until(process)
        assert process.value == "interrupted:bye"
        assert kernel.now == pytest.approx(3)

    def test_interrupt_finished_process_is_noop(self, kernel):
        def quick():
            yield kernel.timeout(1)
            return "ok"
        process = kernel.spawn(quick())
        drain(kernel)
        process.interrupt("late")  # must not raise
        assert process.value == "ok"

    def test_is_alive_tracks_lifecycle(self, kernel):
        def proc():
            yield kernel.timeout(1)
        process = kernel.spawn(proc())
        assert process.is_alive
        drain(kernel)
        assert not process.is_alive

    def test_run_process_deadlock_detected(self, kernel):
        def stuck():
            yield kernel.event()  # never triggered
        with pytest.raises(SimulationError, match="did not finish"):
            kernel.run_process(stuck())


class TestCombinators:
    def test_any_of_first_wins(self, kernel):
        def proc():
            fast = kernel.timeout(1, value="fast")
            slow = kernel.timeout(5, value="slow")
            done = yield kernel.any_of([fast, slow])
            return done
        result = kernel.run_process(proc())
        assert list(result.values()) == ["fast"]
        assert kernel.now == 1

    def test_any_of_empty_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.any_of([])

    def test_all_of_waits_for_all(self, kernel):
        def proc():
            events = [kernel.timeout(d, value=d) for d in (1, 3, 2)]
            done = yield kernel.all_of(events)
            return [done[e] for e in events]
        assert kernel.run_process(proc()) == [1, 3, 2]
        assert kernel.now == 3

    def test_all_of_empty_succeeds_immediately(self, kernel):
        def proc():
            done = yield kernel.all_of([])
            return done
        assert kernel.run_process(proc()) == {}

    def test_all_of_fails_on_child_failure(self, kernel):
        trigger = kernel.event()

        def proc():
            yield kernel.all_of([kernel.timeout(1), trigger])
        process = kernel.spawn(proc())
        trigger.fail(KeyError("nope"))
        drain(kernel)
        assert not process.ok

    def test_run_until_stops_at_event(self, kernel):
        def quick():
            yield kernel.timeout(2)
            return "x"
        kernel.timeout(100)  # would drag the clock if drained
        process = kernel.spawn(quick())
        kernel.run_until(process)
        assert process.value == "x"
        assert kernel.now == 2


class TestKernelGuards:
    def test_reentrant_run_rejected(self, kernel):
        def proc():
            kernel.run()
            yield kernel.timeout(1)
        with pytest.raises(SimulationError, match="re-entrant"):
            kernel.run_process(proc())

    def test_max_events_bounds_execution(self, kernel):
        for _ in range(10):
            kernel.timeout(1)
        kernel.run(max_events=3)
        assert kernel.processed_events == 3

    def test_processed_events_counted(self, kernel):
        kernel.timeout(1)
        kernel.timeout(2)
        drain(kernel)
        assert kernel.processed_events == 2
