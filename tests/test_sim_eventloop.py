"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopProcess,
)
from repro.sim.eventloop import Kernel


def drain(kernel, until=None):
    return kernel.run(until=until)


class TestEventBasics:
    def test_new_event_is_pending(self, kernel):
        event = kernel.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, kernel):
        event = kernel.event()
        event.succeed(42)
        drain(kernel)
        assert event.ok and event.value == 42

    def test_fail_carries_exception(self, kernel):
        event = kernel.event()
        event.fail(ValueError("boom"))
        drain(kernel)
        assert not event.ok
        with pytest.raises(ValueError):
            _ = event.value

    def test_double_trigger_rejected(self, kernel):
        event = kernel.event()
        event.succeed(1)
        with pytest.raises(EventAlreadyTriggered):
            event.succeed(2)
        with pytest.raises(EventAlreadyTriggered):
            event.fail(RuntimeError())

    def test_fail_requires_exception_instance(self, kernel):
        event = kernel.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, kernel):
        event = kernel.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callback_after_processing_runs_immediately(self, kernel):
        event = kernel.event()
        event.succeed("x")
        drain(kernel)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_clock(self, kernel):
        kernel.timeout(5.0)
        drain(kernel)
        assert kernel.now == 5.0

    def test_timeouts_fire_in_order(self, kernel):
        order = []
        kernel.timeout(3).add_callback(lambda e: order.append(3))
        kernel.timeout(1).add_callback(lambda e: order.append(1))
        kernel.timeout(2).add_callback(lambda e: order.append(2))
        drain(kernel)
        assert order == [1, 2, 3]

    def test_same_instant_fifo(self, kernel):
        order = []
        for i in range(5):
            kernel.timeout(1.0).add_callback(
                lambda e, i=i: order.append(i))
        drain(kernel)
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.timeout(-1)

    def test_timeout_value_passthrough(self, kernel):
        event = kernel.timeout(1, value="payload")
        drain(kernel)
        assert event.value == "payload"

    def test_run_until_caps_clock(self, kernel):
        kernel.timeout(10)
        kernel.run(until=4)
        assert kernel.now == 4

    def test_run_until_with_empty_heap_advances(self, kernel):
        kernel.run(until=7)
        assert kernel.now == 7


class TestProcess:
    def test_process_returns_value(self, kernel):
        def proc():
            yield kernel.timeout(2)
            return "done"
        assert kernel.run_process(proc()) == "done"
        assert kernel.now == 2

    def test_sequential_waits_accumulate(self, kernel):
        def proc():
            yield kernel.timeout(1)
            yield kernel.timeout(2)
            yield kernel.timeout(3)
        kernel.run_process(proc())
        assert kernel.now == 6

    def test_process_receives_event_value(self, kernel):
        def proc():
            value = yield kernel.timeout(1, value="hello")
            return value
        assert kernel.run_process(proc()) == "hello"

    def test_exception_propagates_to_run_process(self, kernel):
        def proc():
            yield kernel.timeout(1)
            raise RuntimeError("inner")
        with pytest.raises(RuntimeError, match="inner"):
            kernel.run_process(proc())

    def test_failed_event_thrown_into_process(self, kernel):
        trigger = kernel.event()

        def proc():
            try:
                yield trigger
            except ValueError:
                return "caught"
        process = kernel.spawn(proc())
        trigger.fail(ValueError("x"))
        drain(kernel)
        assert process.value == "caught"

    def test_process_waits_for_process(self, kernel):
        def child():
            yield kernel.timeout(5)
            return "child-result"

        def parent():
            result = yield kernel.spawn(child())
            return result
        assert kernel.run_process(parent()) == "child-result"
        assert kernel.now == 5

    def test_yielding_non_event_fails_process(self, kernel):
        def proc():
            yield 42
        with pytest.raises(SimulationError, match="non-event"):
            kernel.run_process(proc())

    def test_yielding_foreign_event_fails(self, kernel):
        other = Kernel()

        def proc():
            yield other.timeout(1)
        with pytest.raises(SimulationError, match="another kernel"):
            kernel.run_process(proc())

    def test_spawn_requires_generator(self, kernel):
        with pytest.raises(TypeError):
            kernel.spawn(lambda: None)

    def test_stop_process_terminates_with_value(self, kernel):
        def proc():
            yield kernel.timeout(1)
            raise StopProcess("early")
            yield kernel.timeout(99)  # pragma: no cover
        assert kernel.run_process(proc()) == "early"
        assert kernel.now == 1

    def test_interrupt_raises_inside_process(self, kernel):
        def victim():
            try:
                yield kernel.timeout(100)
            except Interrupt as interrupt:
                return f"interrupted:{interrupt.cause}"
        process = kernel.spawn(victim())

        def killer():
            yield kernel.timeout(3)
            process.interrupt("bye")
        kernel.spawn(killer())
        kernel.run_until(process)
        assert process.value == "interrupted:bye"
        assert kernel.now == pytest.approx(3)

    def test_interrupt_finished_process_is_noop(self, kernel):
        def quick():
            yield kernel.timeout(1)
            return "ok"
        process = kernel.spawn(quick())
        drain(kernel)
        process.interrupt("late")  # must not raise
        assert process.value == "ok"

    def test_is_alive_tracks_lifecycle(self, kernel):
        def proc():
            yield kernel.timeout(1)
        process = kernel.spawn(proc())
        assert process.is_alive
        drain(kernel)
        assert not process.is_alive

    def test_run_process_deadlock_detected(self, kernel):
        def stuck():
            yield kernel.event()  # never triggered
        with pytest.raises(SimulationError, match="did not finish"):
            kernel.run_process(stuck())


class TestCombinators:
    def test_any_of_first_wins(self, kernel):
        def proc():
            fast = kernel.timeout(1, value="fast")
            slow = kernel.timeout(5, value="slow")
            done = yield kernel.any_of([fast, slow])
            return done
        result = kernel.run_process(proc())
        assert list(result.values()) == ["fast"]
        assert kernel.now == 1

    def test_any_of_empty_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.any_of([])

    def test_all_of_waits_for_all(self, kernel):
        def proc():
            events = [kernel.timeout(d, value=d) for d in (1, 3, 2)]
            done = yield kernel.all_of(events)
            return [done[e] for e in events]
        assert kernel.run_process(proc()) == [1, 3, 2]
        assert kernel.now == 3

    def test_all_of_empty_succeeds_immediately(self, kernel):
        def proc():
            done = yield kernel.all_of([])
            return done
        assert kernel.run_process(proc()) == {}

    def test_all_of_fails_on_child_failure(self, kernel):
        trigger = kernel.event()

        def proc():
            yield kernel.all_of([kernel.timeout(1), trigger])
        process = kernel.spawn(proc())
        trigger.fail(KeyError("nope"))
        drain(kernel)
        assert not process.ok

    def test_run_until_stops_at_event(self, kernel):
        def quick():
            yield kernel.timeout(2)
            return "x"
        kernel.timeout(100)  # would drag the clock if drained
        process = kernel.spawn(quick())
        kernel.run_until(process)
        assert process.value == "x"
        assert kernel.now == 2


class TestKernelGuards:
    def test_reentrant_run_rejected(self, kernel):
        def proc():
            kernel.run()
            yield kernel.timeout(1)
        with pytest.raises(SimulationError, match="re-entrant"):
            kernel.run_process(proc())

    def test_max_events_bounds_execution(self, kernel):
        for _ in range(10):
            kernel.timeout(1)
        kernel.run(max_events=3)
        assert kernel.processed_events == 3

    def test_processed_events_counted(self, kernel):
        kernel.timeout(1)
        kernel.timeout(2)
        drain(kernel)
        assert kernel.processed_events == 2


class TestInterruptStaleResume:
    """Regression: ``interrupt()`` must not leave the old wait target's
    ``_resume`` callback able to spuriously resume the process.

    Before the fix, the event the process was waiting on at interrupt
    time kept its ``_resume`` callback; when that event later fired, it
    re-entered the generator — at whatever yield the process had moved
    on to — delivering the *stale* event's value.
    """

    def test_stale_timeout_cannot_resume_interrupted_process(self, kernel):
        log = []

        def proc():
            try:
                value = yield kernel.timeout(10.0, "stale")
                log.append(("resumed", value))
            except Interrupt:
                value = yield kernel.timeout(20.0, "fresh")
                log.append(("after-interrupt", value))
            return "done"

        process = kernel.spawn(proc())
        kernel.timeout(1.0).add_callback(lambda _e: process.interrupt("x"))
        drain(kernel)
        # Pre-fix this was [("after-interrupt", "stale")]: the t=10
        # timeout resumed the generator parked on the t=21 one.
        assert log == [("after-interrupt", "fresh")]
        assert process.value == "done"
        assert kernel.now == pytest.approx(21.0)

    def test_stale_event_resume_after_rewait_on_manual_event(self, kernel):
        resumed_with = []

        def proc():
            try:
                yield kernel.timeout(5.0, "doomed")
            except Interrupt:
                pass
            value = yield replacement
            resumed_with.append(value)
            return value

        replacement = kernel.event()
        process = kernel.spawn(proc())
        kernel.timeout(1.0).add_callback(lambda _e: process.interrupt())

        def releaser():
            yield kernel.timeout(30.0)
            replacement.succeed("replacement")
        kernel.spawn(releaser())
        drain(kernel)
        assert resumed_with == ["replacement"]
        assert process.value == "replacement"

    def test_interrupted_process_can_finish_before_stale_event(self, kernel):
        def proc():
            try:
                yield kernel.timeout(50.0)
            except Interrupt:
                return "early"

        process = kernel.spawn(proc())
        kernel.timeout(1.0).add_callback(lambda _e: process.interrupt())
        drain(kernel)  # the t=50 timeout still fires; must be a no-op
        assert process.value == "early"
        assert kernel.now == pytest.approx(50.0)


class TestCombinatorsWithProcessedChildren:
    """AnyOf/AllOf built from events the kernel has already processed."""

    def test_any_of_with_processed_child_triggers(self, kernel):
        done = kernel.timeout(1, value="early")
        drain(kernel)
        assert done.processed

        def proc():
            result = yield kernel.any_of([done, kernel.timeout(10)])
            return result
        result = kernel.run_process(proc())
        assert result == {done: "early"}
        assert kernel.now == pytest.approx(1)  # no wait for the slow leg

    def test_all_of_with_all_children_processed(self, kernel):
        first = kernel.timeout(1, value="a")
        second = kernel.timeout(2, value="b")
        drain(kernel)

        def proc():
            result = yield kernel.all_of([first, second])
            return [result[first], result[second]]
        assert kernel.run_process(proc()) == ["a", "b"]

    def test_all_of_mixed_processed_and_pending(self, kernel):
        early = kernel.timeout(1, value="early")
        drain(kernel)

        def proc():
            late = kernel.timeout(3, value="late")
            result = yield kernel.all_of([early, late])
            return sorted(result.values())
        assert kernel.run_process(proc()) == ["early", "late"]

    def test_any_of_with_processed_failed_child_fails(self, kernel):
        bad = kernel.event()
        bad.fail(KeyError("nope"))
        drain(kernel)

        def proc():
            yield kernel.any_of([bad, kernel.timeout(5)])
        process = kernel.spawn(proc())
        drain(kernel)
        assert not process.ok
        assert isinstance(process.exception, KeyError)


class TestBatchedScheduling:
    def test_succeed_many_fires_in_list_order(self, kernel):
        order = []
        events = [kernel.event() for _ in range(20)]
        for i, event in enumerate(events):
            event.add_callback(lambda _e, i=i: order.append(i))
        kernel.succeed_many(events, value="v")
        drain(kernel)
        assert order == list(range(20))
        assert all(e.value == "v" for e in events)

    def test_succeed_many_interleaves_with_heap_by_sequence(self, kernel):
        order = []
        kernel.timeout(0.0).add_callback(lambda _e: order.append("timer"))
        events = [kernel.event() for _ in range(3)]
        for i, event in enumerate(events):
            event.add_callback(lambda _e, i=i: order.append(i))
        kernel.succeed_many(events)
        drain(kernel)
        # The zero-delay timeout was scheduled first, so it keeps its
        # place ahead of the batch.
        assert order == ["timer", 0, 1, 2]

    def test_succeed_many_rejects_triggered_event(self, kernel):
        ready = kernel.event()
        ready.succeed(1)
        fresh = kernel.event()
        with pytest.raises(EventAlreadyTriggered):
            kernel.succeed_many([fresh, ready])

    def test_large_burst_uses_heapify_and_keeps_order(self, kernel):
        # > 8 entries and >= heap size triggers the extend+heapify path.
        order = []
        events = [kernel.event() for _ in range(200)]
        for i, event in enumerate(events):
            event.add_callback(lambda _e, i=i: order.append(i))
        kernel.succeed_many(events)
        drain(kernel)
        assert order == list(range(200))

    def test_post_many_with_delay(self, kernel):
        order = []
        events = [kernel.event() for _ in range(5)]
        for i, event in enumerate(events):
            event._value = i
            event.add_callback(lambda _e, i=i: order.append(i))
        kernel._post_many(events, delay=2.5)
        drain(kernel)
        assert order == [0, 1, 2, 3, 4]
        assert kernel.now == pytest.approx(2.5)


class TestSlotsAndFastDrain:
    def test_event_classes_have_no_instance_dict(self, kernel):
        from repro.sim.eventloop import AllOf, AnyOf, Event, Process, Timeout

        def gen():
            yield kernel.timeout(1)
        instances = [Event(kernel), Timeout(kernel, 1.0),
                     AnyOf(kernel, [kernel.event()]),
                     AllOf(kernel, [kernel.event()]),
                     Process(kernel, gen())]
        for obj in instances:
            with pytest.raises(AttributeError):
                _ = obj.__dict__

    def test_fast_and_slow_dispatch_agree_on_mixed_workload(self):
        from repro.sim import eventloop

        def build_and_run():
            kernel = Kernel()
            fired = []

            def worker(tag, delays):
                for delay in delays:
                    yield kernel.timeout(delay)
                    fired.append((kernel.now, tag))
                return tag

            # Deterministic pseudo-random-ish delays, same both runs.
            for tag in range(10):
                delays = [((tag * 7 + step * 3) % 5) + 0.25
                          for step in range(6)]
                kernel.spawn(worker(tag, delays))
            for i in range(500):
                kernel.timeout((i * 37 % 101) / 10.0)
            kernel.run()
            return fired, kernel.now, kernel.processed_events

        previous = eventloop.set_fast_dispatch(True)
        try:
            fast = build_and_run()
            eventloop.set_fast_dispatch(False)
            slow = build_and_run()
        finally:
            eventloop.set_fast_dispatch(previous)
        assert fast == slow

    def test_drain_survives_batch_growth_past_threshold(self):
        # Start below the sorted-batch threshold, then grow the heap far
        # beyond it from inside a callback: the drain must switch modes
        # without dropping or reordering anything.
        kernel = Kernel()
        seen = []

        def explode(_event):
            events = [kernel.event() for _ in range(500)]
            for i, event in enumerate(events):
                event.add_callback(lambda _e, i=i: seen.append(i))
            kernel.succeed_many(events)

        trigger = kernel.event()
        trigger.add_callback(explode)
        trigger.succeed(None)
        kernel.run()
        assert seen == list(range(500))
        assert kernel.processed_events == 501

    def test_telemetry_flip_mid_drain_falls_back_to_step(self):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(enabled=False)
        kernel = Kernel(telemetry=telemetry)
        for i in range(300):
            kernel.timeout(float(i))
        flip_at = []

        def flip(_event):
            telemetry.enable()
            flip_at.append(kernel.now)
        kernel.timeout(100.5).add_callback(flip)
        kernel.run()
        assert kernel.processed_events == 301
        assert kernel.now == 299.0
        # Events after the flip (t=101..299) went through step(), which
        # counts them; the 101+1 events up to and including the flip
        # were dispatched by the fast drain and are not.
        counted = telemetry.metrics.value("kernel.events_dispatched",
                                          default=0)
        assert counted == 199

    def test_callback_error_leaves_heap_consistent(self):
        kernel = Kernel()
        fired = []
        for i in range(100):
            kernel.timeout(float(i), value=i).add_callback(
                lambda e: fired.append(e.value))
        kernel.timeout(49.5).add_callback(
            lambda _e: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            kernel.run()
        survivors = len(fired)
        assert survivors == 50  # 0..49 fired before the bomb
        kernel.run()  # the remaining events are all still schedulable
        assert fired == list(range(100))
        assert kernel.processed_events == 101
