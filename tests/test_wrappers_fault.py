"""Checkpoint/recovery wrapper tests: losing and relaunching an agent."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.vm import loader
from repro.wrappers.fault import CheckpointWrapper, recover
from repro.wrappers.stack import WrapperSpec, install_wrappers


def stepper_agent(ctx, bc):
    """Counts incarnations; each reports progress home, the second one
    finishes.  The progress send is the observable action the checkpoint
    wrapper snapshots at."""
    count = int(bc.get_text("COUNT") or 0) + 1
    bc.put("COUNT", str(count))
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"PROGRESS": [str(count)]}))
    if count >= 2:
        yield from ctx.send(bc.get_text("HOME"),
                            Briefcase({"FINAL-COUNT": [str(count)]}))
        return "finished"
    # First incarnation: idle forever (will be killed by the test).
    yield from ctx.sleep(1_000_000)


def chatter_agent(ctx, bc):
    """Sends three progress reports home, bumping COUNT before each."""
    for tick in (1, 2, 3):
        bc.put("COUNT", str(tick))
        yield from ctx.send(bc.get_text("HOME"),
                            Briefcase({"TICK": [str(tick)]}))
    return "done"


class TestCheckpointWrapper:
    def test_config_required(self):
        with pytest.raises(ValueError):
            CheckpointWrapper({"drawer": "d"})

    def test_checkpoint_and_recover_after_kill(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()
        cabinet_uri = "tacoma://solo.test//ag_cabinet"
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(stepper_agent),
                               agent_name="stepper")
        briefcase.put("HOME", str(driver.uri))
        install_wrappers(briefcase, [WrapperSpec.by_ref(
            CheckpointWrapper,
            {"cabinet": cabinet_uri, "drawer": "stepper-ckpt",
             "on": ["arrive", "send"]})])

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok"
            agent_uri = AgentUri.parse(reply.get_text("AGENT-URI"))
            progress = yield from driver.recv(timeout=60)
            assert progress.briefcase.get_text("PROGRESS") == "1"
            yield single_cluster.kernel.timeout(1)

            # Simulate a crash: kill the running agent outright.
            admin = Briefcase()
            admin.put(wellknown.OP, "kill")
            admin.put(wellknown.ARGS, {"instance": agent_uri.instance})
            yield from driver.meet(AgentUri.parse("firewall"), admin,
                                   timeout=60)

            # Recover from the last checkpoint; the clone resumes with
            # COUNT=1 in its briefcase and finishes.
            relaunched = yield from recover(
                driver, cabinet_uri, "stepper-ckpt",
                single_cluster.vm_uri("solo.test"))
            assert relaunched != str(agent_uri)
            while True:
                message = yield from driver.recv(timeout=60)
                final = message.briefcase.get_text("FINAL-COUNT")
                if final is not None:
                    return final
        assert single_cluster.run(scenario()) == "2"

    def test_recover_without_checkpoint_raises(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        from repro.core.errors import TaxError

        def scenario():
            with pytest.raises(TaxError, match="no checkpoint|no drawer"):
                yield from recover(driver,
                                   "tacoma://solo.test//ag_cabinet",
                                   "missing-drawer",
                                   single_cluster.vm_uri("solo.test"))
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_checkpoint_points_config(self):
        wrapper = CheckpointWrapper({"cabinet": "c", "drawer": "d",
                                     "on": ["depart"]})
        assert wrapper.points == ("depart",)

    def test_send_point_skips_cabinet_put_traffic(self):
        # The wrapper's own checkpoint posts carry OP=put; on_send must
        # pass them through untouched or every checkpoint would trigger
        # another checkpoint.
        wrapper = CheckpointWrapper({"cabinet": "c", "drawer": "d",
                                     "on": ["send"]})
        put = Briefcase()
        put.put(wellknown.OP, "put")
        target = AgentUri.parse("tacoma://home//ag_cabinet")
        assert wrapper.on_send(None, target, put) == (target, put)
        assert wrapper.checkpoints_taken == 0

    def test_send_point_checkpoints_every_agent_send(self):
        from repro.obs.telemetry import Telemetry
        from repro.system.cluster import TaxCluster

        cluster = TaxCluster(telemetry=Telemetry(enabled=True))
        cluster.add_node("solo.test")
        driver = cluster.node("solo.test").driver()
        cabinet_uri = "tacoma://solo.test//ag_cabinet"
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(chatter_agent),
                               agent_name="chatter")
        briefcase.put("HOME", str(driver.uri))
        install_wrappers(briefcase, [WrapperSpec.by_ref(
            CheckpointWrapper,
            {"cabinet": cabinet_uri, "drawer": "chatter-ckpt",
             "on": ["send"]})])

        def scenario():
            yield from driver.meet(cluster.vm_uri("solo.test"),
                                   briefcase, timeout=60)
            seen = []
            while len(seen) < 3:
                message = yield from driver.recv(timeout=60)
                seen.append(message.briefcase.get_text("TICK"))
            yield cluster.kernel.timeout(1)  # let async puts land
            return seen
        assert cluster.run(scenario()) == ["1", "2", "3"]
        taken = cluster.telemetry.metrics.value(
            "checkpoint.taken", point="send", drawer="chatter-ckpt")
        # one checkpoint per agent send; the cabinet puts themselves
        # (3 of them) are filtered, so the count stays at 3
        assert taken == 3

        def fetch():
            request = Briefcase()
            request.put(wellknown.OP, "get")
            request.put("DRAWER", "chatter-ckpt")
            reply = yield from driver.meet(
                AgentUri.parse(cabinet_uri), request, timeout=60)
            return reply
        reply = cluster.run(fetch())
        assert reply.get_text(wellknown.STATUS) == "ok"
        # the drawer holds the newest pre-send snapshot: TICK count 3
        assert reply.get_text("COUNT") == "3"
