"""Tests for the access-log analyzer and the log-mining workload."""

import pytest

from repro.robot.loganalyzer import analyze_log, parse_log_line, \
    run_log_analysis
from repro.mining.logmining import (
    LOG_PATH,
    build_loganalyzer_program,
    generate_access_log,
    mining_args,
    publish_log,
    run_log_mobile,
    run_log_stationary,
)
from repro.system.bootstrap import build_linkcheck_testbed
from tests.conftest import small_site_spec

SAMPLE = ('10.1.2.3 - - [06/Jul/1999:12:00:01 +0100] '
          '"GET /index.html HTTP/1.0" 200 2326')


class TestParsing:
    def test_parse_valid_line(self):
        record = parse_log_line(SAMPLE)
        assert record == {"host": "10.1.2.3",
                          "time": "06/Jul/1999:12:00:01 +0100",
                          "method": "GET", "path": "/index.html",
                          "status": 200, "bytes": 2326}

    def test_parse_dash_bytes(self):
        record = parse_log_line(SAMPLE.replace("2326", "-"))
        assert record["bytes"] == 0

    @pytest.mark.parametrize("bad", [
        "", "garbage", '1.2.3.4 - - [t] "GET" 200',
        '1.2.3.4 - - [t] no-quotes 200 5',
        SAMPLE.replace("200", "two-hundred"),
    ])
    def test_malformed_lines_rejected(self, bad):
        assert parse_log_line(bad) is None


class TestAnalysis:
    def log_text(self):
        lines = [SAMPLE,
                 SAMPLE.replace("/index.html", "/a.html"),
                 SAMPLE.replace("/index.html", "/a.html"),
                 SAMPLE.replace("10.1.2.3", "10.9.9.9"),
                 SAMPLE.replace("200 2326", "404 210"),
                 "malformed line"]
        return "\n".join(lines)

    def test_aggregates(self):
        stats = analyze_log(self.log_text())
        assert stats["hits"] == 5
        assert stats["malformed"] == 1
        assert stats["unique_visitors"] == 2
        assert stats["status_counts"] == {"200": 4, "404": 1}
        # /index.html: the base sample + other-visitor + 404 variants.
        assert stats["top_pages"][0] == ["/index.html", 3]
        assert stats["top_pages"][1] == ["/a.html", 2]
        assert stats["top_error_paths"] == [["/index.html", 1]]

    def test_top_k_limit(self):
        text = "\n".join(SAMPLE.replace("/index.html", f"/p{i}.html")
                         for i in range(30))
        stats = analyze_log(text, top_k=5)
        assert len(stats["top_pages"]) == 5

    def test_json_canonical(self):
        import json
        stats = analyze_log(self.log_text())
        assert json.loads(json.dumps(stats)) == stats

    def test_run_log_analysis_entry(self):
        class Resp:
            ok = True
            status = 200
            body = self.log_text()

        class Http:
            def get(self, url):
                return Resp()

        class Env:
            http = Http()
        result = run_log_analysis({"log_url": "http://s/logs/x"}, Env)
        assert result["hits"] == 5
        assert result["log_bytes"] == len(Resp.body.encode())

    def test_run_log_analysis_fetch_failure(self):
        class Resp:
            ok = False
            status = 404
            body = ""

        class Http:
            def get(self, url):
                return Resp()

        class Env:
            http = Http()
        with pytest.raises(ValueError, match="could not fetch"):
            run_log_analysis({"log_url": "http://s/none"}, Env)


class TestWorkload:
    def test_generated_log_is_parseable_and_deterministic(self,
                                                          small_testbed):
        site = small_testbed.site_of("www.cs.uit.no")
        a = generate_access_log(site, 500, seed=7)
        b = generate_access_log(site, 500, seed=7)
        assert a == b
        stats = analyze_log(a)
        assert stats["hits"] == 500 and stats["malformed"] == 0
        assert stats["status_counts"].get("404", 0) > 0

    def test_publish_and_fetch(self, small_testbed):
        site = small_testbed.site_of("www.cs.uit.no")
        log_text = generate_access_log(site, 100, seed=7)
        publish_log(site, log_text)
        from repro.sim.ledger import CostLedger
        from repro.web.client import SimHttpClient
        http = SimHttpClient(small_testbed.server.host,
                             small_testbed.network,
                             small_testbed.deployment, CostLedger())
        response = http.get(mining_args(site.host)["log_url"])
        assert response.ok and response.body == log_text
        assert response.content_type == "text/plain"

    def test_program_builds_and_is_signed(self):
        from repro.firewall.auth import KeyChain
        keychain = KeyChain()
        keychain.create_key("tacomaproject")
        payload = build_loganalyzer_program(keychain)
        from repro.vm import loader
        assert payload.kind == loader.KIND_BINARY

    def test_stationary_and_mobile_agree(self):
        testbed = build_linkcheck_testbed(spec=small_site_spec())
        site = testbed.site_of("www.cs.uit.no")
        publish_log(site, generate_access_log(site, 800, seed=9))
        stationary = run_log_stationary(testbed, site.host)
        mobile = run_log_mobile(testbed, site.host)
        assert stationary.reports[0] == mobile.reports[0]
        assert mobile.remote_bytes < stationary.remote_bytes
