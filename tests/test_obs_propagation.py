"""Causal trace propagation: one trace id per itinerary, across hops,
retries, crashes, rejections — and zero overhead when telemetry is off.

The tentpole contract under test: every migration step of one agent is
stamped with the same ``trace_id`` and parent-linked span ids, so the
whole itinerary is a single causal tree; the context rides the message
*envelope* in-sim (zero wire bytes) and the reserved ``TRACE-CONTEXT``
briefcase folder on the raw wire (always stripped on receipt).
"""

import json

import pytest

from repro.core import codec, wellknown
from repro.core.briefcase import Briefcase
from repro.core.errors import QuotaExceededError
from repro.core.retry import RetryPolicy
from repro.core.uri import AgentUri
from repro.firewall.governor import GovernorConfig, QuotaSpec
from repro.firewall.message import SenderInfo
from repro.firewall.policy import Policy
from repro.obs import propagation
from repro.obs.demo import run_traced_quickstart
from repro.obs.propagation import TraceContext, TraceIdAllocator
from repro.obs.telemetry import Telemetry
from repro.system.cluster import TaxCluster
from repro.vm import loader


def metered_cluster(*hosts):
    cluster = TaxCluster(telemetry=Telemetry(enabled=True))
    for host in hosts:
        cluster.add_node(host)
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            cluster.network.link(a, b)
    return cluster


def spans_named(tracer, name):
    return [s for s in tracer.spans if s.name == name]


def instants_named(tracer, name):
    return [i for i in tracer.instants if i["name"] == name]


# -- the context and its header ------------------------------------------------------


class TestTraceContextHeader:
    def test_header_round_trip(self):
        context = TraceContext(trace_id="t00000001", span_id="s00000002",
                               parent_span_id="s00000001", hop=3)
        header = context.to_header()
        assert header == "00-t00000001-s00000002-s00000001-03"
        assert TraceContext.from_header(header) == context

    def test_header_round_trip_without_parent(self):
        context = TraceContext(trace_id="t00000001", span_id="s00000001")
        assert TraceContext.from_header(context.to_header()) == context
        assert context.parent_span_id is None
        assert context.hop == 0

    @pytest.mark.parametrize("bad", [
        "", "garbage", "00-t1-s1", "99-t1-s2-s1-00", "00-t1-s2-s1-zz",
        "00--s2-s1-00", "00-t1--s1-00", "00-t1-s2-s1-00-extra",
    ])
    def test_malformed_headers_parse_to_none(self, bad):
        # Hostile wire input must degrade to "untraced", never crash.
        assert TraceContext.from_header(bad) is None

    def test_allocator_is_deterministic(self):
        one, two = TraceIdAllocator(), TraceIdAllocator()
        assert one.root() == two.root()
        assert one.new_trace_id() == two.new_trace_id()
        one.reset()
        assert one.root() == TraceIdAllocator().root()

    def test_child_advances_hop_only_across_host_boundaries(self):
        ids = TraceIdAllocator()
        root = ids.root()
        same_hop = ids.child(root)
        next_hop = ids.child(same_hop, advance_hop=True)
        assert root.hop == 0
        assert same_hop.hop == 0 and same_hop.parent_span_id == root.span_id
        assert next_hop.hop == 1
        assert {root.trace_id} == {same_hop.trace_id, next_hop.trace_id}


# -- the reserved wire folder --------------------------------------------------------


class TestWireFolder:
    def test_trace_context_is_a_reserved_system_folder(self):
        assert wellknown.TRACE_CONTEXT in wellknown.SYSTEM_FOLDERS

    def test_inject_extract_survives_codec_round_trip(self):
        context = TraceIdAllocator().root()
        briefcase = Briefcase({"DATA": ["payload"]})
        propagation.inject(briefcase, context)
        decoded = codec.decode(codec.encode(briefcase))
        assert decoded.has(wellknown.TRACE_CONTEXT)
        extracted = propagation.extract(decoded)
        assert extracted == context
        # Extraction strips the folder: it exists only on the wire.
        assert not decoded.has(wellknown.TRACE_CONTEXT)
        assert decoded.folder("DATA").texts() == ["payload"]

    def test_extract_without_folder_is_none(self):
        assert propagation.extract(Briefcase()) is None

    def test_malformed_folder_is_stripped_and_ignored(self):
        briefcase = Briefcase()
        briefcase.put(wellknown.TRACE_CONTEXT, "not-a-header")
        assert propagation.extract(briefcase) is None
        assert not briefcase.has(wellknown.TRACE_CONTEXT)

    def test_firewall_adopts_trace_from_raw_wire(self):
        cluster = metered_cluster("solo.test")
        driver = cluster.node("solo.test").driver()
        external = TraceContext(trace_id="t0000feed",
                                span_id="s0000beef", hop=4)
        briefcase = Briefcase({"BODY": ["external"]})
        propagation.inject(briefcase, external)
        wire = codec.encode(briefcase)

        def scenario():
            cluster.node("solo.test").firewall.receive_wire(
                wire, driver.uri,
                SenderInfo(principal="peer", host="elsewhere.example"))
            message = yield from driver.recv(timeout=10)
            return message
        message = cluster.run(scenario())
        assert message.trace == external
        assert not message.briefcase.has(wellknown.TRACE_CONTEXT)

    def test_disabled_telemetry_still_strips_but_discards(self):
        cluster = TaxCluster()  # telemetry off
        cluster.add_node("solo.test")
        driver = cluster.node("solo.test").driver()
        briefcase = Briefcase({"BODY": ["external"]})
        propagation.inject(briefcase, TraceIdAllocator().root())
        wire = codec.encode(briefcase)

        def scenario():
            cluster.node("solo.test").firewall.receive_wire(
                wire, driver.uri,
                SenderInfo(principal="peer", host="elsewhere.example"))
            message = yield from driver.recv(timeout=10)
            return message
        message = cluster.run(scenario())
        assert message.trace is None
        assert not message.briefcase.has(wellknown.TRACE_CONTEXT)


# -- the acceptance itinerary --------------------------------------------------------


class TestOneTraceAcrossHosts:
    def test_multi_hop_run_is_one_causal_tree(self):
        cluster, _ = run_traced_quickstart()
        tracer = cluster.telemetry.tracer
        runs = sorted(spans_named(tracer, "run:hello"),
                      key=lambda s: s.start)
        assert len(runs) == 3
        trace_ids = {s.args["trace_id"] for s in runs}
        assert len(trace_ids) == 1  # ONE trace id spans >= 3 hosts
        assert len({s.track for s in runs}) == 3
        assert [s.args["hop"] for s in runs] == [1, 2, 3]

        # Parentage: run@cl1 -> go -> run@cl2 -> go -> run@cl3.
        gos = sorted(spans_named(tracer, "go"), key=lambda s: s.start)
        assert len(gos) == 2
        for hop, (residency, go) in enumerate(zip(runs, gos), start=1):
            assert go.args["trace_id"] == residency.args["trace_id"]
            assert go.args["parent_span_id"] == residency.args["span_id"]
            assert go.args["hop"] == hop
            assert runs[hop].args["parent_span_id"] == go.args["span_id"]

    def test_chrome_export_has_cross_track_flow_events(self, tmp_path):
        cluster, _ = run_traced_quickstart()
        out = tmp_path / "trace.json"
        cluster.telemetry.tracer.export_chrome(str(out))
        events = json.loads(out.read_text())["traceEvents"]
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert starts and len(starts) == len(finishes)
        assert {e["cat"] for e in starts} == {"flow"}
        by_id = {e["id"]: e for e in starts}
        for finish in finishes:
            start = by_id[finish["id"]]
            assert finish["bp"] == "e"
            # A flow arrow only makes sense between different tracks.
            assert (start["pid"], start["tid"]) != \
                (finish["pid"], finish["tid"])

    def test_trace_export_is_deterministic_across_runs(self, tmp_path):
        paths = []
        for n in range(2):
            cluster, _ = run_traced_quickstart()
            path = tmp_path / f"trace{n}.json"
            cluster.telemetry.tracer.export_chrome(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


# -- survival through failure paths --------------------------------------------------


def echo_agent(ctx, bc):
    while True:
        message = yield from ctx.recv()
        yield from ctx.reply(message, Briefcase(
            {"ECHO": [message.briefcase.get_text("BODY") or ""]}))


def late_agent(ctx, bc):
    message = yield from ctx.recv(timeout=60)
    bc.append("TRACE-SEEN",
              message.trace.trace_id if message.trace else "none")
    yield from ctx.send(bc.get_text("HOME"), bc.snapshot())
    return "done"


class TestTraceSurvival:
    def test_retries_link_to_the_senders_trace(self):
        cluster = metered_cluster("alpha.test", "beta.test")
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(echo_agent),
                               agent_name="echo")
        beta_driver = cluster.node("beta.test").driver(name="launcher")

        def launch():
            reply = yield from beta_driver.meet(
                cluster.vm_uri("beta.test"), briefcase, timeout=30)
            return reply.get_text("AGENT-URI")
        echo_uri = cluster.run(launch())

        driver = cluster.node("alpha.test").driver()
        driver.configure_retry(RetryPolicy(
            max_attempts=5, base_delay=0.2, multiplier=2.0, jitter=0.0))
        cluster.network.set_link_up("alpha.test", "beta.test", False)

        def healer():
            yield cluster.kernel.timeout(0.5)
            cluster.network.set_link_up("alpha.test", "beta.test", True)

        def scenario():
            cluster.kernel.spawn(healer())
            yield from driver.send(AgentUri.parse(echo_uri),
                                   Briefcase({"BODY": ["hi"]}))
            return "sent"
        assert cluster.run(scenario()) == "sent"

        retries = instants_named(cluster.telemetry.tracer,
                                 "transport.retry")
        assert retries
        assert driver.trace is not None
        for instant in retries:
            assert instant["args"]["trace_id"] == driver.trace.trace_id
            assert instant["args"]["parent_span_id"]

    def test_dead_letter_retransmit_preserves_the_trace(self):
        cluster = metered_cluster("alpha.test", "beta.test")
        beta = cluster.node("beta.test")
        driver = cluster.node("alpha.test").driver()
        target = AgentUri.parse("tacoma://beta.test//late")

        def park():
            yield from driver.send(target, Briefcase({"BODY": ["x"]}),
                                   queue_timeout=300)
        cluster.run(park())
        assert driver.trace is not None
        trace_id = driver.trace.trace_id

        beta.crash()
        assert len(beta.firewall.pending.dead_letters) == 1
        dead_trace = beta.firewall.pending.dead_letters[0].message.trace
        assert dead_trace is not None
        assert dead_trace.trace_id == trace_id
        beta.restart()

        retransmits = instants_named(cluster.telemetry.tracer,
                                     "fw.retransmit")
        assert len(retransmits) == 1
        assert retransmits[0]["args"]["trace_id"] == trace_id
        assert retransmits[0]["args"]["parent_span_id"] == \
            dead_trace.span_id

        # The retransmitted message reaches a re-registered agent with
        # its causal identity intact.
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(late_agent),
                               agent_name="late")
        briefcase.put("HOME", str(driver.uri))
        beta_driver = beta.driver(name="d2")

        def relaunch():
            yield from beta_driver.meet(cluster.vm_uri("beta.test"),
                                        briefcase, timeout=30)
            message = yield from driver.recv(timeout=30)
            return message.briefcase.folder("TRACE-SEEN").texts()
        assert cluster.run(relaunch()) == [trace_id]

    def test_governor_rejection_links_to_the_trace(self):
        cluster = TaxCluster(telemetry=Telemetry(enabled=True))
        cluster.add_node("solo.test", policy=Policy(
            governor=GovernorConfig(quotas={
                "alice": QuotaSpec(messages_per_second=0.001, burst=1),
            })))
        driver = cluster.node("solo.test").driver(
            name="alice-driver", principal="alice")
        target = AgentUri.parse("ag_fs")

        def scenario():
            yield from driver.send(target, Briefcase({"BODY": ["one"]}))
            with pytest.raises(QuotaExceededError):
                yield from driver.send(target,
                                       Briefcase({"BODY": ["two"]}))
            return "done"
        assert cluster.run(scenario()) == "done"

        rejected = instants_named(cluster.telemetry.tracer,
                                  "fw.admission_rejected")
        assert [i["args"]["reason"] for i in rejected] == ["quota"]
        assert driver.trace is not None
        assert rejected[0]["args"]["trace_id"] == driver.trace.trace_id
        assert rejected[0]["args"]["parent_span_id"]

    def test_poison_quarantine_dumps_the_flight_recorder(self):
        cluster = metered_cluster("solo.test")
        firewall = cluster.node("solo.test").firewall
        target = AgentUri(host="solo.test", name="nobody")
        firewall.receive_wire(
            b"\x00garbage-that-cannot-decode",
            target, SenderInfo(principal="poisoner", host="evil.example"))
        dumps = cluster.telemetry.flight.dumps
        assert [d["reason"] for d in dumps] == ["poison-quarantine"]
        assert dumps[0]["host"] == "solo.test"
        assert any(e["kind"] == "poison" for e in dumps[0]["events"])


# -- the no-op path (telemetry off) --------------------------------------------------


class TestDisabledTelemetryOverhead:
    def test_tracing_adds_zero_wire_bytes_and_no_folder(self):
        """Satellite contract: enabled vs disabled telemetry move the
        same bytes and finish at the same virtual instant — the trace
        context never touches the in-sim wire."""
        runs = {}
        for enabled in (True, False):
            cluster, result = run_traced_quickstart(
                telemetry=Telemetry(enabled=enabled))
            assert len(result.folder("GREETINGS").texts()) == 3
            assert not result.has(wellknown.TRACE_CONTEXT)
            runs[enabled] = (cluster.network.total_remote_bytes(),
                             cluster.network.total_remote_messages(),
                             cluster.kernel.now)
        assert runs[True] == runs[False]

    def test_disabled_facade_allocates_no_contexts(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.new_trace() is None
        assert telemetry.child_context(None) is None
        cluster, _ = run_traced_quickstart(telemetry=telemetry)
        assert cluster.telemetry.tracer.spans == []
        assert cluster.telemetry.flight.hosts() == []
