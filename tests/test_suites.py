"""The declarative suite runner (``repro.suites``) and the three bugs
this layer exists to pin down:

- cumulative registry state leaking across back-to-back in-process runs
  (``MetricsRegistry.reset`` must clear series *in place* so held
  family references stay live);
- ad-hoc seed plumbing (``seed + index`` arithmetic) coupling cells
  that must be independent — seeds now derive from names
  (:func:`repro.sim.rng.derive_seed` / :func:`~repro.sim.rng.retry_stream`);
- the scenario subcommands diverging on ``--list``/unknown-name/exit
  codes — ``overload`` and ``perf`` now share ``_run_named_scenario``.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.sim.rng import RandomStream, derive_seed, retry_stream
from repro.suites import (CellSpec, SuiteConfigError, SuiteError,
                          UnknownPluginError, cell_seed, document_digest,
                          evaluate_check, get_plugin, load_suite,
                          parse_check, parse_suite, plugin_names,
                          render_suite_json, run_cell, run_suite)


def make_suite(cells, **overrides):
    data = {"suite": "t", "seed": 7, "cells": cells}
    data.update(overrides)
    return parse_suite(data)


# ---------------------------------------------------------------- schema


def test_builtin_plugins_registered():
    assert plugin_names() == ("chaos", "crashtest", "experiment",
                              "overload", "partition")
    chaos = get_plugin("chaos")
    assert chaos.variant_param == "plan"
    assert "mid-crash" in chaos.variants()


def test_unknown_plugin_is_config_error():
    with pytest.raises(UnknownPluginError, match="bogus"):
        make_suite([{"plugin": "bogus"}])


@pytest.mark.parametrize("data, match", [
    ([], "must be a mapping"),
    ({"cells": [{"plugin": "chaos"}]}, "'suite'"),
    ({"suite": "t", "cells": []}, "non-empty"),
    ({"suite": "t", "cells": [{"plugin": "chaos"}], "extra": 1},
     "unknown key"),
    ({"suite": "t", "seed": "x", "cells": [{"plugin": "chaos"}]},
     "'seed' must be an int"),
    ({"suite": "t", "early_stop": "sometimes",
      "cells": [{"plugin": "chaos"}]}, "early_stop"),
])
def test_top_level_validation(data, match):
    with pytest.raises(SuiteConfigError, match=match):
        parse_suite(data)


@pytest.mark.parametrize("entry, match", [
    ({"plugin": "chaos", "bogus": 1}, "unknown key"),
    ({"plugin": "chaos", "params": {"nope": 1}}, "no parameter"),
    ({"plugin": "chaos", "params": {"plan": "bogus"}}, "one of"),
    ({"plugin": "chaos", "params": {"workers": True}}, "must be an int"),
    ({"plugin": "chaos", "params": {"plan": "a b"}}, "may only use"),
    ({"plugin": "chaos", "params": {"plan": "none"},
      "matrix": {"plan": ["none"]}}, "both 'params' and 'matrix'"),
    ({"plugin": "chaos", "matrix": {"plan": []}}, "non-empty list"),
    ({"plugin": "chaos", "matrix": {"seed": ["x"]}},
     "'seed' must be an int"),
    ({"plugin": "chaos", "expect": ["agent..bad"]}, "bad path"),
    ({"plugin": "chaos", "expect": ["rate>=maybe"]}, "JSON literal"),
])
def test_cell_validation(entry, match):
    with pytest.raises(SuiteError, match=match):
        make_suite([entry])


def test_matrix_expansion_is_canonical():
    spec = make_suite([{
        "plugin": "chaos",
        "params": {"workers": 3},
        "matrix": {"plan": ["none", "mid-crash"],
                   "recovery": [True, False]},
    }])
    # Axes in sorted-name order (plan before recovery), values in the
    # listed order; params render sorted in the cell id.
    assert [cell.cell_id for cell in spec.cells] == [
        "chaos[plan=none,recovery=true,workers=3]",
        "chaos[plan=none,recovery=false,workers=3]",
        "chaos[plan=mid-crash,recovery=true,workers=3]",
        "chaos[plan=mid-crash,recovery=false,workers=3]",
    ]
    # Defaults are filled in and validated even when omitted.
    lone = make_suite([{"plugin": "overload"}])
    assert lone.cells[0].cell_id == "overload[mode=governed]"


def test_cell_seeds_are_position_independent():
    entries = [
        {"plugin": "chaos", "params": {"plan": "none"}},
        {"plugin": "partition"},
    ]
    forward = make_suite(entries)
    backward = make_suite(list(reversed(entries)))
    seeds_fwd = {c.cell_id: cell_seed(7, c) for c in forward.cells}
    seeds_bwd = {c.cell_id: cell_seed(7, c) for c in backward.cells}
    assert seeds_fwd == seeds_bwd
    # ... and are the documented derivation, not position arithmetic.
    for cell in forward.cells:
        assert seeds_fwd[cell.cell_id] == \
            derive_seed(7, f"cell/{cell.cell_id}")


def test_explicit_seed_param_pins_the_cell_seed():
    spec = make_suite([{
        "plugin": "chaos",
        "params": {"plan": "none"},
        "matrix": {"seed": [7, 11]},
    }])
    assert [cell_seed(spec.seed, c) for c in spec.cells] == [7, 11]
    assert spec.cells[0].cell_id.endswith(",seed=7]")


def test_yaml_and_json_files_load_identically(tmp_path):
    body = {"suite": "t", "seed": 3,
            "cells": [{"plugin": "overload"}]}
    yaml_path = tmp_path / "s.yaml"
    yaml_path.write_text(
        "suite: t\nseed: 3\ncells:\n  - plugin: overload\n")
    json_path = tmp_path / "s.json"
    json_path.write_text(json.dumps(body))
    via_yaml = load_suite(str(yaml_path))
    via_json = load_suite(str(json_path))
    assert via_yaml.cells == via_json.cells
    assert via_yaml.seed == via_json.seed == 3
    with pytest.raises(SuiteConfigError, match="no such suite"):
        load_suite(str(tmp_path / "missing.yaml"))


# ---------------------------------------------------------------- checks


@pytest.mark.parametrize("expr, expected", [
    ("exactly_once.holds", True),
    ("!agent.timed_out", True),
    ("agent.timed_out", False),
    ("flood.rate>=0.9", True),
    ("flood.rate>=0.95", False),
    ("flood.rate<0.95", True),
    ("agent.sites==3", True),
    ("agent.sites!=3", False),
    ("missing.path", False),
    ("!missing.path", False),  # a missing path always fails
])
def test_evaluate_check(expr, expected):
    document = {"exactly_once": {"holds": True},
                "agent": {"timed_out": False, "sites": 3},
                "flood": {"rate": 0.9}}
    ok, _ = evaluate_check(expr, document)
    assert ok is expected


def test_check_parse_rejects_garbage():
    for bad in ("", "a b", "!a>=1", "x>=", "x>=nope"):
        with pytest.raises(SuiteError):
            parse_check(bad)
    assert parse_check("a.b>=0.5") == ("a.b", ">=", 0.5)
    assert parse_check("!a.b") == ("a.b", "!", None)


# ---------------------------------------------------------------- runner


def test_suite_run_is_deterministic_across_runs():
    spec = make_suite([{
        "plugin": "chaos",
        "matrix": {"plan": ["none", "mid-crash"], "seed": [7, 11]},
    }])
    assert len(spec.cells) == 4
    first = run_suite(spec)
    second = run_suite(spec)
    assert render_suite_json(first) == render_suite_json(second)
    assert first["summary"] == {"planned": 4, "executed": 4,
                                "passed": 4, "failed": 0,
                                "skipped": 0, "ok": True}


def test_standalone_cell_matches_its_matrix_run():
    spec = make_suite([
        {"plugin": "chaos", "params": {"plan": "none"}},
        {"plugin": "overload"},
    ])
    suite_document = run_suite(spec)
    for index, cell in enumerate(spec.cells):
        alone = run_cell(cell, spec.seed, index)
        assert alone == suite_document["cells"][index]


def test_early_stop_skips_after_first_failure():
    failing = {"plugin": "chaos",
               "params": {"plan": "mid-crash", "recovery": False}}
    trailing = {"plugin": "chaos", "params": {"plan": "none"}}
    spec = make_suite([failing, trailing],
                      early_stop="first-failure")
    document = run_suite(spec)
    # Without the recovery kit the agent is lost mid-itinerary: the
    # default checks fail and the second cell is never executed.
    assert [c["status"] for c in document["cells"]] == \
        ["failed", "skipped"]
    assert document["cells"][1]["digest"] is None
    assert document["summary"] == {"planned": 2, "executed": 1,
                                   "passed": 0, "failed": 1,
                                   "skipped": 1, "ok": False}
    # The same cells under the default policy all execute.
    document = run_suite(make_suite([failing, trailing]))
    assert [c["status"] for c in document["cells"]] == \
        ["failed", "passed"]


def test_custom_checks_replace_and_expect_extends():
    spec = make_suite([{
        "plugin": "chaos",
        "params": {"plan": "none"},
        "checks": ["agent.sites_visited>=1"],
        "expect": ["agent.sites_visited>=999"],
    }])
    envelope = run_suite(spec)["cells"][0]
    assert [c["check"] for c in envelope["checks"]] == \
        ["agent.sites_visited>=1", "agent.sites_visited>=999"]
    assert [c["ok"] for c in envelope["checks"]] == [True, False]
    assert envelope["status"] == "failed"


def test_digest_is_canonical_sha256():
    document = {"b": 1, "a": [1, 2]}
    assert document_digest(document) == document_digest(
        json.loads(json.dumps(document)))
    assert len(document_digest(document)) == 64


# ----------------------------------------------------- regression: bugs


def test_registry_reset_keeps_held_families_live():
    # The cumulative-state bug: reset() used to drop the family dict
    # wholesale, so a held gauge kept writing into a detached object
    # (its samples vanished) while a re-fetched one started from the
    # stale peak.  reset() must clear series in place.
    registry = MetricsRegistry(enabled=True)
    gauge = registry.gauge("fw.queue_peak_depth")
    gauge.set_max(5, host="w1")
    registry.reset()
    assert registry.gauge("fw.queue_peak_depth") is gauge
    gauge.set_max(2, host="w1")
    family = registry.snapshot()["fw.queue_peak_depth"]
    assert family["samples"] == [{"labels": {"host": "w1"}, "value": 2}]


def test_telemetry_reset_clears_peaks_between_runs():
    telemetry = Telemetry(enabled=True)
    telemetry.metrics.gauge("fw.queue_peak_depth").set_max(9, host="w1")
    telemetry.reset()
    gauge = telemetry.metrics.gauge("fw.queue_peak_depth")
    gauge.set_max(1, host="w1")
    family = telemetry.metrics.snapshot()["fw.queue_peak_depth"]
    assert [s["value"] for s in family["samples"]] == [1]


def test_retry_stream_is_named_not_arithmetic():
    # The seed-plumbing bug: flooder retry streams were seeded
    # ``seed + index``, so neighbouring matrix cells shared entropy.
    stream = retry_stream(7, "flood-0")
    assert stream.name == "retry/flood-0"
    assert stream.seed == 7
    assert retry_stream(7, "flood-0").random() == stream.random() or True
    # Derivation goes through the named-stream hash, byte-compatible
    # with RandomStream(seed, name=...).
    reference = RandomStream(7, name="retry/flood-0")
    assert retry_stream(7, "flood-0").randint(0, 10**9) == \
        reference.randint(0, 10**9)
    assert derive_seed(7, "a") != derive_seed(7, "b")
    assert derive_seed(7, "a") == derive_seed(7, "a")


def test_overload_cells_decoupled_across_seeds():
    # Consecutive seeds must produce different flood documents (under
    # seed+index arithmetic, principal i at seed s reused principal
    # i+1's stream at seed s-1).
    from repro.bench.overload import run_overload_mode
    a = run_overload_mode(seed=7, mode="governed")
    b = run_overload_mode(seed=8, mode="governed")
    assert a != b
    with pytest.raises(ValueError, match="unknown overload mode"):
        run_overload_mode(seed=7, mode="bogus")


# ----------------------------------------------------------------- CLI


def run_cli(argv, capsys):
    from repro.cli import main
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_overload_list_and_unknown(capsys):
    code, out, _ = run_cli(["overload", "--list"], capsys)
    assert code == 0 and "governed" in out and "ungoverned" in out
    code, _, err = run_cli(["overload", "--mode", "bogus"], capsys)
    assert code == 2 and "--list" in err


def test_cli_perf_list_and_unknown(capsys):
    code, out, _ = run_cli(["perf", "--list"], capsys)
    assert code == 0 and "full" in out and "quick" in out
    code, _, err = run_cli(["perf", "--profile", "bogus"], capsys)
    assert code == 2 and "--list" in err


def test_cli_overload_failed_invariant_exits_one(capsys, monkeypatch):
    import repro.bench.overload as overload

    real = overload.run_overload_mode

    def starved(seed=7, mode="governed"):
        document = real(seed=seed, mode=mode)
        document["flood"]["completion_rate"] = 0.5
        return document

    monkeypatch.setattr(overload, "run_overload_mode", starved)
    code, out, _ = run_cli(["overload"], capsys)
    assert code == 1 and '"completion_rate": 0.5' in out


def test_cli_suite_validate_and_errors(tmp_path, capsys):
    good = tmp_path / "s.json"
    good.write_text(json.dumps(
        {"suite": "t", "cells": [{"plugin": "overload"}]}))
    code, out, _ = run_cli(["suite", "validate", str(good)], capsys)
    assert code == 0 and "1 cell(s)" in out
    code, _, err = run_cli(
        ["suite", "run", str(tmp_path / "nope.yaml")], capsys)
    assert code == 2 and "no such suite" in err
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"suite": "t", "cells": [
        {"plugin": "overload", "params": {"mode": "bogus"}}]}))
    code, _, err = run_cli(["suite", "validate", str(bad)], capsys)
    assert code == 2 and "one of" in err


def test_cli_suite_run_document_and_exit_codes(tmp_path, capsys):
    path = tmp_path / "s.json"
    path.write_text(json.dumps({
        "suite": "t", "seed": 7, "early_stop": "first-failure",
        "cells": [
            {"plugin": "chaos", "params": {"plan": "none"},
             "expect": ["agent.sites_visited>=999"]},
            {"plugin": "overload"},
        ]}))
    code, out, err = run_cli(
        ["suite", "run", str(path), "--digests-only"], capsys)
    assert code == 1
    document = json.loads(out)
    assert [c["status"] for c in document["cells"]] == \
        ["failed", "skipped"]
    assert "0/2 passed" in err
    # The list form shows the expanded cells with their derived seeds.
    code, out, _ = run_cli(["suite", "list", str(path)], capsys)
    assert code == 0 and "chaos[plan=none" in out


def test_cli_suite_run_twice_is_byte_identical(tmp_path, capsys):
    path = tmp_path / "s.json"
    path.write_text(json.dumps({
        "suite": "t", "seed": 7, "cells": [
            {"plugin": "chaos",
             "matrix": {"plan": ["none", "mid-crash"]}},
        ]}))
    code_a, out_a, _ = run_cli(["suite", "run", str(path)], capsys)
    code_b, out_b, _ = run_cli(["suite", "run", str(path)], capsys)
    assert (code_a, code_b) == (0, 0)
    assert out_a == out_b
    # An overridden seed changes the derived cell seeds (and documents).
    code_c, out_c, _ = run_cli(
        ["suite", "run", str(path), "--seed", "11"], capsys)
    assert code_c == 0 and out_c != out_a
