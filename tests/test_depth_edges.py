"""Depth tests: kernel combinator edges, stream failure modes, and the
compile-chain payload preservation."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import CommTimeoutError
from repro.core import wellknown
from repro.agent import streams
from repro.vm import loader


class TestCombinatorEdges:
    def test_any_of_with_already_processed_event(self, kernel):
        done = kernel.event()
        done.succeed("early")
        kernel.run()  # process it fully
        pending = kernel.event()

        def proc():
            result = yield kernel.any_of([done, pending])
            return result
        result = kernel.run_process(proc())
        assert result[done] == "early"

    def test_all_of_with_mixed_readiness(self, kernel):
        ready = kernel.event()
        ready.succeed(1)

        def proc():
            later = kernel.timeout(5, value=2)
            done = yield kernel.all_of([ready, later])
            return sorted(done.values())
        assert kernel.run_process(proc()) == [1, 2]
        assert kernel.now == 5

    def test_nested_any_of(self, kernel):
        def proc():
            inner = kernel.any_of([kernel.timeout(1, "a"),
                                   kernel.timeout(9, "b")])
            outer = yield kernel.any_of([inner, kernel.timeout(5, "c")])
            return list(outer)[0].value
        value = kernel.run_process(proc())
        assert list(value.values()) == ["a"]

    def test_process_chain_of_spawns(self, kernel):
        def leaf():
            yield kernel.timeout(1)
            return 1

        def middle():
            value = yield kernel.spawn(leaf())
            return value + 1

        def root():
            value = yield kernel.spawn(middle())
            return value + 1
        assert kernel.run_process(root()) == 3


class TestStreamFailures:
    def test_send_stream_times_out_without_receiver(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        ghost = "tacoma://solo.test//nobody-listens"

        def scenario():
            with pytest.raises(CommTimeoutError):
                yield from streams.send_stream(driver, ghost, b"data",
                                               timeout=3)
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_recv_stream_times_out_without_sender(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            with pytest.raises(CommTimeoutError):
                yield from streams.recv_stream(driver, timeout=3)
            return "done"
        assert single_cluster.run(scenario()) == "done"


def orig_code_probe(ctx, bc):
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"KIND": [bc.get_text("CODE-KIND")]}))
    return "ok"


class TestCodeOrigPreservation:
    SOURCE = (
        "def orig_code_probe(ctx, bc):\n"
        "    out = bc.snapshot()\n"
        "    out.put('KIND', bc.get_text('CODE-KIND'))\n"
        "    yield from ctx.send(bc.get_text('HOME'), out)\n"
        "    return 'ok'\n")

    def test_agent_launched_via_chain_still_carries_source(
            self, single_cluster):
        """After the vm_source -> vm_bin chain, the *running* agent's
        briefcase must hold the original py-source payload, not the
        site-local binary (Figure 3 repeats per landing pad)."""
        driver = single_cluster.node("solo.test").driver()
        briefcase = Briefcase()
        loader.install_payload(
            briefcase, loader.pack_source(self.SOURCE, "orig_code_probe"),
            agent_name="probe")
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test", "vm_source"),
                briefcase, timeout=120)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)
            message = yield from driver.recv(timeout=120)
            inbound = message.briefcase
            return (inbound.get_text("KIND"),
                    inbound.has(wellknown.CODE_ORIG))
        kind, has_orig = single_cluster.run(scenario())
        assert kind == loader.KIND_SOURCE
        assert not has_orig  # the stash folder is cleaned up at launch
