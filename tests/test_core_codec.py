"""Unit tests for the briefcase wire codec."""

import pytest

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import CodecError


def sample() -> Briefcase:
    return Briefcase({
        "HOSTS": ["tacoma://a/vm", "tacoma://b/vm"],
        "DATA": [b"\x00\x01\x02", b""],
        "EMPTY": [],
    })


class TestRoundTrip:
    def test_basic_round_trip(self):
        briefcase = sample()
        assert codec.decode(codec.encode(briefcase)) == briefcase

    def test_empty_briefcase(self):
        assert codec.decode(codec.encode(Briefcase())) == Briefcase()

    def test_empty_elements_survive(self):
        briefcase = Briefcase({"F": [b"", b"", b"x"]})
        decoded = codec.decode(codec.encode(briefcase))
        assert [e.data for e in decoded.get("F")] == [b"", b"", b"x"]

    def test_unicode_folder_names(self):
        briefcase = Briefcase({"FÖLDER-名": ["v"]})
        assert codec.decode(codec.encode(briefcase)) == briefcase

    def test_binary_payloads(self):
        blob = bytes(range(256)) * 4
        briefcase = Briefcase({"BIN": [blob]})
        assert codec.decode(
            codec.encode(briefcase)).get("BIN")[0].data == blob

    def test_encode_is_deterministic(self):
        assert codec.encode(sample()) == codec.encode(sample())

    def test_reencode_is_byte_identical(self):
        wire = codec.encode(sample())
        assert codec.encode(codec.decode(wire)) == wire


class TestSizeAccounting:
    def test_encoded_size_matches_encoding(self):
        briefcase = sample()
        assert codec.encoded_size(briefcase) == len(codec.encode(briefcase))

    def test_size_grows_with_payload(self):
        small = Briefcase({"F": [b"x"]})
        large = Briefcase({"F": [b"x" * 1000]})
        assert codec.encoded_size(large) == \
            codec.encoded_size(small) + 999

    def test_dropping_a_folder_shrinks_the_wire(self):
        briefcase = sample()
        before = codec.encoded_size(briefcase)
        briefcase.drop("DATA")
        assert codec.encoded_size(briefcase) < before


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(CodecError, match="magic"):
            codec.decode(b"NOPE" + codec.encode(Briefcase())[4:])

    def test_bad_version(self):
        wire = bytearray(codec.encode(Briefcase()))
        wire[4] = 99
        with pytest.raises(CodecError, match="version"):
            codec.decode(bytes(wire))

    def test_truncated_buffer(self):
        wire = codec.encode(sample())
        with pytest.raises(CodecError, match="truncated"):
            codec.decode(wire[:len(wire) // 2])

    def test_trailing_garbage(self):
        with pytest.raises(CodecError, match="trailing"):
            codec.decode(codec.encode(sample()) + b"junk")

    def test_empty_input(self):
        with pytest.raises(CodecError):
            codec.decode(b"")

    def test_duplicate_folder_rejected(self):
        # Hand-craft a wire image with the same folder twice.
        import struct
        name = b"F"
        folder = struct.pack(">H", 1) + name + struct.pack(">I", 0)
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 2) + folder + folder)
        with pytest.raises(CodecError, match="duplicate"):
            codec.decode(wire)

    def test_empty_folder_name_rejected(self):
        import struct
        folder = struct.pack(">H", 0) + struct.pack(">I", 0)
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1) + folder)
        with pytest.raises(CodecError, match="empty folder name"):
            codec.decode(wire)

    def test_implausible_folder_count_rejected(self):
        import struct
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", codec.MAX_FOLDERS + 1))
        with pytest.raises(CodecError, match="implausible"):
            codec.decode(wire)

    def test_non_utf8_folder_name_rejected(self):
        import struct
        folder = struct.pack(">H", 2) + b"\xff\xfe" + struct.pack(">I", 0)
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1) + folder)
        with pytest.raises(CodecError, match="UTF-8"):
            codec.decode(wire)

    def test_overlong_folder_name_rejected_on_encode(self):
        briefcase = Briefcase({"x" * 70_000: ["v"]})
        with pytest.raises(CodecError, match="too long"):
            codec.encode(briefcase)


class TestDecodeLimitsNone:
    """``decode(data, limits=None)`` must disable every configured cap.

    Regression: the docstring always promised this, but decode kept
    enforcing the module-level MAX_FOLDERS / MAX_ELEMENTS /
    MAX_ELEMENT_BYTES plausibility caps.  With ``limits=None`` the only
    checks left are well-formedness (declared counts must fit the bytes
    actually present) and the absolute ``ABSOLUTE_MAX_WIRE_BYTES``
    buffer backstop.
    """

    def test_accepts_what_configured_limits_reject(self):
        from repro.core.limits import WireLimits

        briefcase = Briefcase({"BULK": [b"x"] * 50})
        wire = codec.encode(briefcase)
        tight = WireLimits(max_total_elements=10)
        with pytest.raises(CodecError):
            codec.decode(wire, limits=tight)
        assert codec.decode(wire, limits=None) == briefcase

    def test_accepts_element_larger_than_configured_cap(self):
        from repro.core.limits import WireLimits

        briefcase = Briefcase({"BLOB": [b"\xab" * 4096]})
        wire = codec.encode(briefcase)
        tight = WireLimits(max_element_bytes=1024)
        with pytest.raises(CodecError):
            codec.decode(wire, limits=tight)
        assert codec.decode(wire, limits=None) == briefcase

    def test_accepts_more_folders_than_configured_cap(self):
        from repro.core.limits import WireLimits

        briefcase = Briefcase({f"F{i:03d}": [b"v"] for i in range(40)})
        wire = codec.encode(briefcase)
        tight = WireLimits(max_folders=8)
        with pytest.raises(CodecError):
            codec.decode(wire, limits=tight)
        assert codec.decode(wire, limits=None) == briefcase

    def test_accepts_buffer_over_configured_encoded_bytes(self):
        from repro.core.limits import WireLimits

        briefcase = Briefcase({"DATA": [b"z" * 2000]})
        wire = codec.encode(briefcase)
        tight = WireLimits(max_encoded_bytes=100)
        with pytest.raises(CodecError, match="limit 100"):
            codec.decode(wire, limits=tight)
        assert codec.decode(wire, limits=None) == briefcase

    def test_wellformedness_still_enforced(self):
        import struct

        # Declared folder count far beyond what the buffer could hold.
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1_000_000))
        with pytest.raises(CodecError, match="implausible folder count"):
            codec.decode(wire, limits=None)

    def test_truncated_element_still_rejected(self):
        import struct

        folder = (struct.pack(">H", 1) + b"F" + struct.pack(">I", 1) +
                  struct.pack(">I", 500) + b"short")
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1) + folder)
        with pytest.raises(CodecError, match="truncated|implausible"):
            codec.decode(wire, limits=None)

    def test_absolute_backstop_boundary(self, monkeypatch):
        briefcase = Briefcase({"F": [b"payload"]})
        wire = codec.encode(briefcase)
        # Exactly at the backstop: accepted.
        monkeypatch.setattr(codec, "ABSOLUTE_MAX_WIRE_BYTES", len(wire))
        assert codec.decode(wire, limits=None) == briefcase
        # One byte over: rejected outright, before any parsing.
        monkeypatch.setattr(codec, "ABSOLUTE_MAX_WIRE_BYTES", len(wire) - 1)
        with pytest.raises(codec.BriefcaseTooLargeError,
                           match="absolute backstop"):
            codec.decode(wire, limits=None)

    def test_backstop_does_not_apply_with_configured_limits(self, monkeypatch):
        from repro.core.limits import WireLimits

        briefcase = Briefcase({"F": [b"payload"]})
        wire = codec.encode(briefcase)
        monkeypatch.setattr(codec, "ABSOLUTE_MAX_WIRE_BYTES", 1)
        # Configured limits govern instead of the backstop.
        assert codec.decode(
            wire, limits=WireLimits(max_encoded_bytes=len(wire))) == briefcase

    def test_both_decoders_honour_limits_none(self):
        briefcase = Briefcase({"BULK": [b"x"] * 50})
        wire = codec.encode(briefcase)
        previous = codec.set_fast_paths(False)
        try:
            reference = codec.decode(wire, limits=None)
            codec.set_fast_paths(True)
            fast = codec.decode(wire, limits=None)
        finally:
            codec.set_fast_paths(previous)
        assert reference == fast == briefcase
