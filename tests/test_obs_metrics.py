"""Metrics registry semantics: families, labels, histograms, no-op mode."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.inc("hits", host="a")
        registry.inc("hits", 2, host="b")
        assert registry.value("hits", host="a") == 1
        assert registry.value("hits", host="b") == 2
        assert registry.value("hits") is None

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("x", a="1", b="2")
        registry.inc("x", b="2", a="1")
        assert registry.value("x", b="2", a="1") == 2

    def test_label_values_are_stringified(self):
        registry = MetricsRegistry()
        registry.inc("x", port=80)
        assert registry.value("x", port="80") == 1

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("ups").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value() == 7

    def test_gauges_can_fall(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue", 5, host="a")
        registry.set_gauge("queue", 2, host="a")
        assert registry.value("queue", host="a") == 2


class TestHistogram:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        sample = histogram.samples()[0]["value"]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(5.555)
        assert sample["min"] == 0.005
        assert sample["max"] == 5.0
        assert sample["buckets"] == {"0.01": 1, "0.1": 1, "1": 1,
                                     "+inf": 1}

    def test_boundary_value_falls_in_lower_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        sample = histogram.samples()[0]["value"]
        assert sample["buckets"]["1"] == 1

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_empty_bucket_list_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())


class TestRegistry:
    def test_families_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("series")
        with pytest.raises(MetricError):
            registry.gauge("series")

    def test_value_default_for_missing(self):
        registry = MetricsRegistry()
        assert registry.value("nope", default=0) == 0
        registry.inc("yes", host="a")
        assert registry.value("yes", 0, host="other") == 0

    def test_collect_filters_by_prefix_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("fw.delivered", host="a")
        registry.inc("fw.delivered", host="b")
        registry.inc("net.bytes", 10, host="a")
        rows = registry.collect("fw.", host="a")
        assert [(r["name"], r["value"]) for r in rows] == \
            [("fw.delivered", 1)]
        assert len(registry.collect("")) == 3

    def test_snapshot_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z.last", host="b")
        registry.inc("a.first")
        registry.observe("m.hist", 0.5, host="a")
        registry.set_gauge("g.now", 3.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        round_trip = json.loads(json.dumps(snapshot))
        assert round_trip["a.first"]["kind"] == "counter"
        assert round_trip["m.hist"]["samples"][0]["value"]["count"] == 1

    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("x", host="b")
            registry.inc("x", host="a")
            registry.observe("y", 0.2)
            return json.dumps(registry.snapshot(), sort_keys=True)

        assert build() == build()

    def test_reset_clears_series_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        registry.reset()
        # Families stay registered (held references stay live); every
        # series is gone.  Dropping the family dict wholesale instead
        # orphaned held references: post-reset writes landed in a
        # detached object and silently vanished.
        snapshot = registry.snapshot()
        assert snapshot["x"]["samples"] == []
        assert registry.counter("x") is counter
        counter.inc(2)
        [sample] = registry.snapshot()["x"]["samples"]
        assert sample["value"] == 2


class TestDisabledRegistry:
    def test_recording_is_a_no_op(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c", host="a")
        registry.set_gauge("g", 1)
        registry.observe("h", 0.5)
        assert registry.snapshot() == {}

    def test_direct_family_recording_is_also_no_op(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value() is None

    def test_reenabling_records_again(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("x")
        registry.enabled = True
        registry.inc("x")
        assert registry.value("x") == 1
