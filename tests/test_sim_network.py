"""Unit tests for the simulated network."""

import pytest

from repro.sim.network import (
    BANDWIDTH_100MBIT,
    LATENCY_LAN,
    Link,
    LinkDownError,
    Network,
    NoRouteError,
)


@pytest.fixture
def lan(kernel):
    net = Network(kernel)
    net.link("a", "b", latency=0.001, bandwidth=1000.0)
    return net


class TestTopology:
    def test_link_is_symmetric(self, lan):
        assert lan.link_between("a", "b").latency == 0.001
        assert lan.link_between("b", "a").latency == 0.001

    def test_links_are_independent_directions(self, lan):
        lan.link_between("a", "b").stats.record(10, 1.0)
        assert lan.link_between("b", "a").stats.messages == 0

    def test_loopback_is_implicit(self, lan):
        loop = lan.link_between("a", "a")
        assert loop.latency < 0.0001

    def test_explicit_loopback_rejected(self, lan):
        with pytest.raises(ValueError):
            lan.link("a", "a")

    def test_missing_route_raises(self, lan):
        with pytest.raises(NoRouteError):
            lan.link_between("a", "nowhere")

    def test_default_link_parameters(self, kernel):
        net = Network(kernel, default_latency=0.01,
                      default_bandwidth=500.0)
        net.add_host("x")
        net.add_host("y")
        link = net.link_between("x", "y")
        assert link.latency == 0.01 and link.bandwidth == 500.0

    def test_default_links_require_known_hosts(self, kernel):
        net = Network(kernel, default_latency=0.01,
                      default_bandwidth=500.0)
        net.add_host("x")
        with pytest.raises(NoRouteError):
            net.link_between("x", "unknown")

    def test_hosts_listing(self, lan):
        assert list(lan.hosts) == ["a", "b"]


class TestCostModel:
    def test_transfer_time_formula(self, lan):
        # 1000 bytes at 1000 B/s + 1 ms latency.
        assert lan.transfer_time("a", "b", 1000) == pytest.approx(1.001)

    def test_zero_bytes_costs_latency_only(self, lan):
        assert lan.transfer_time("a", "b", 0) == pytest.approx(0.001)

    def test_negative_bytes_rejected(self, lan):
        with pytest.raises(ValueError):
            lan.transfer_time("a", "b", -1)

    def test_invalid_link_parameters(self):
        with pytest.raises(ValueError):
            Link("a", "b", latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            Link("a", "b", latency=0, bandwidth=0)

    def test_100mbit_constant(self, kernel):
        net = Network(kernel)
        net.link("a", "b", latency=0, bandwidth=BANDWIDTH_100MBIT)
        # 3 MB over 100 Mbit/s = 0.24 s.
        assert net.transfer_time("a", "b", 3_000_000) == \
            pytest.approx(0.24)


class TestTransfer:
    def test_transfer_process_advances_clock(self, kernel, lan):
        def proc():
            seconds = yield from lan.transfer("a", "b", 500)
            return seconds
        elapsed = kernel.run_process(proc())
        assert elapsed == pytest.approx(0.501)
        assert kernel.now == pytest.approx(0.501)

    def test_transfer_records_stats(self, kernel, lan):
        def proc():
            yield from lan.transfer("a", "b", 500)
        kernel.run_process(proc())
        stats = lan.stats_between("a", "b")
        assert stats.messages == 1
        assert stats.payload_bytes == 500

    def test_charge_records_without_waiting(self, kernel, lan):
        seconds = lan.charge("a", "b", 500)
        assert seconds == pytest.approx(0.501)
        assert kernel.now == 0
        assert lan.stats_between("a", "b").messages == 1

    def test_partition_blocks_transfer(self, kernel, lan):
        lan.set_link_up("a", "b", False)
        with pytest.raises(LinkDownError):
            lan.charge("a", "b", 10)

        def proc():
            yield from lan.transfer("a", "b", 10)
        with pytest.raises(LinkDownError):
            kernel.run_process(proc())

    def test_partition_heals(self, lan):
        lan.set_link_up("a", "b", False)
        lan.set_link_up("a", "b", True)
        assert lan.charge("a", "b", 10) > 0

    def test_partition_unknown_link_raises(self, lan):
        with pytest.raises(NoRouteError):
            lan.set_link_up("a", "zzz", False)

    def test_remote_byte_accounting_excludes_loopback(self, lan):
        lan.charge("a", "a", 10_000)
        lan.charge("a", "b", 100)
        assert lan.total_remote_bytes() == 100
        assert lan.total_remote_messages() == 1

    def test_reset_stats(self, lan):
        lan.charge("a", "b", 100)
        lan.reset_stats()
        assert lan.total_remote_bytes() == 0
        assert lan.stats_between("a", "b").messages == 0

    def test_busy_seconds_accumulate(self, lan):
        lan.charge("a", "b", 1000)
        lan.charge("a", "b", 1000)
        assert lan.stats_between("a", "b").busy_seconds == \
            pytest.approx(2.002)
