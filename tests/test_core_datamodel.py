"""Unit tests for elements, folders, and briefcases."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.element import Element
from repro.core.errors import BriefcaseError, FolderNotFoundError
from repro.core.folder import Folder


class TestElement:
    def test_wraps_bytes(self):
        assert Element(b"abc").data == b"abc"

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            Element("text")  # strings need Element.of / from_text

    def test_of_str_is_utf8(self):
        assert Element.of("héllo").data == "héllo".encode("utf-8")

    def test_of_bytes_raw(self):
        assert Element.of(b"\x00\xff").data == b"\x00\xff"

    def test_of_json_containers(self):
        element = Element.of({"b": 1, "a": [True, None]})
        assert element.as_json() == {"b": 1, "a": [True, None]}

    def test_of_json_is_canonical(self):
        assert Element.of({"a": 1, "b": 2}) == Element.of({"b": 2, "a": 1})

    def test_of_unencodable_rejected(self):
        with pytest.raises(BriefcaseError):
            Element.of(object())

    def test_of_element_passthrough(self):
        element = Element(b"x")
        assert Element.of(element) is element

    def test_int_round_trip(self):
        assert Element.from_int(42).as_int() == 42

    def test_as_int_rejects_garbage(self):
        with pytest.raises(BriefcaseError):
            Element(b"not-a-number").as_int()

    def test_as_text_rejects_binary(self):
        with pytest.raises(BriefcaseError):
            Element(b"\xff\xfe").as_text()

    def test_as_json_rejects_garbage(self):
        with pytest.raises(BriefcaseError):
            Element(b"{broken").as_json()

    def test_equality_with_bytes(self):
        assert Element(b"x") == b"x"
        assert Element(b"x") == Element(b"x")
        assert Element(b"x") != Element(b"y")

    def test_hashable(self):
        assert len({Element(b"a"), Element(b"a"), Element(b"b")}) == 2

    def test_len_is_byte_count(self):
        assert len(Element.of("abc")) == 3


class TestFolder:
    def test_requires_name(self):
        with pytest.raises(BriefcaseError):
            Folder("")

    def test_push_encodes(self):
        folder = Folder("F")
        folder.push("text")
        folder.push(7)
        assert folder[0].as_text() == "text"
        assert folder[1].as_json() == 7

    def test_ordering_preserved(self):
        folder = Folder("F", ["a", "b", "c"])
        assert folder.texts() == ["a", "b", "c"]

    def test_pop_first_fifo(self):
        folder = Folder("F", ["a", "b"])
        assert folder.pop_first().as_text() == "a"
        assert folder.pop_first().as_text() == "b"
        assert folder.pop_first() is None

    def test_pop_last(self):
        folder = Folder("F", ["a", "b"])
        assert folder.pop_last().as_text() == "b"

    def test_insert_and_remove_at(self):
        folder = Folder("F", ["a", "c"])
        folder.insert(1, "b")
        assert folder.texts() == ["a", "b", "c"]
        removed = folder.remove_at(1)
        assert removed.as_text() == "b"

    def test_remove_at_out_of_range(self):
        with pytest.raises(BriefcaseError):
            Folder("F").remove_at(0)

    def test_getitem_out_of_range(self):
        with pytest.raises(BriefcaseError):
            Folder("F")[3]

    def test_first_last_empty(self):
        folder = Folder("F")
        assert folder.first() is None and folder.last() is None

    def test_replace(self):
        folder = Folder("F", ["old"])
        folder.replace(["new1", "new2"])
        assert folder.texts() == ["new1", "new2"]

    def test_byte_size(self):
        folder = Folder("F", [b"12", b"345"])
        assert folder.byte_size() == 5

    def test_copy_is_snapshot(self):
        folder = Folder("F", ["a"])
        clone = folder.copy()
        folder.push("b")
        assert clone.texts() == ["a"]

    def test_bool_and_len(self):
        assert not Folder("F")
        assert Folder("F", ["x"]) and len(Folder("F", ["x", "y"])) == 2

    def test_equality(self):
        assert Folder("F", ["a"]) == Folder("F", ["a"])
        assert Folder("F", ["a"]) != Folder("G", ["a"])
        assert Folder("F", ["a"]) != Folder("F", ["b"])


class TestBriefcase:
    def test_folder_created_on_demand(self):
        briefcase = Briefcase()
        briefcase.folder("NEW").push("x")
        assert briefcase.has("NEW")

    def test_get_missing_raises(self):
        with pytest.raises(FolderNotFoundError):
            Briefcase().get("MISSING")

    def test_constructor_mapping(self):
        briefcase = Briefcase({"A": ["1"], "B": [b"2", b"3"]})
        assert len(briefcase.get("B")) == 2

    def test_drop_state(self):
        briefcase = Briefcase({"BIG": ["data"], "KEEP": ["x"]})
        assert briefcase.drop("BIG")
        assert not briefcase.drop("BIG")
        assert briefcase.names() == ["KEEP"]

    def test_drop_all_except(self):
        briefcase = Briefcase({"A": [], "B": [], "C": []})
        dropped = briefcase.drop_all_except(["B"])
        assert sorted(dropped) == ["A", "C"]
        assert briefcase.names() == ["B"]

    def test_put_replaces(self):
        briefcase = Briefcase()
        briefcase.put("K", "v1")
        briefcase.put("K", "v2")
        assert briefcase.get_text("K") == "v2"
        assert len(briefcase.get("K")) == 1

    def test_get_text_default(self):
        briefcase = Briefcase()
        assert briefcase.get_text("NONE") is None
        assert briefcase.get_text("NONE", "dflt") == "dflt"

    def test_get_json(self):
        briefcase = Briefcase()
        briefcase.put("J", {"k": 1})
        assert briefcase.get_json("J") == {"k": 1}
        assert briefcase.get_json("MISSING", 5) == 5

    def test_append(self):
        briefcase = Briefcase()
        briefcase.append("L", "a")
        briefcase.append("L", "b")
        assert briefcase.get("L").texts() == ["a", "b"]

    def test_snapshot_isolated(self):
        briefcase = Briefcase({"F": ["a"]})
        snapshot = briefcase.snapshot()
        briefcase.folder("F").push("b")
        briefcase.folder("NEW").push("c")
        assert snapshot.get("F").texts() == ["a"]
        assert not snapshot.has("NEW")

    def test_merge_appends(self):
        a = Briefcase({"F": ["1"]})
        b = Briefcase({"F": ["2"], "G": ["3"]})
        a.merge(b)
        assert a.get("F").texts() == ["1", "2"]
        assert a.get("G").texts() == ["3"]

    def test_merge_replace_mode(self):
        a = Briefcase({"F": ["1"]})
        a.merge(Briefcase({"F": ["2"]}), append=False)
        assert a.get("F").texts() == ["2"]

    def test_payload_bytes(self):
        briefcase = Briefcase({"A": [b"1234"], "B": [b"56"]})
        assert briefcase.payload_bytes() == 6

    def test_equality_ignores_insertion_order(self):
        a = Briefcase({"X": ["1"], "Y": ["2"]})
        b = Briefcase({"Y": ["2"], "X": ["1"]})
        assert a == b

    def test_dict_round_trip(self):
        original = Briefcase({"A": ["x"], "B": [b"\x00"]})
        assert Briefcase.from_dict(original.to_dict()) == original

    def test_iteration_and_contains(self):
        briefcase = Briefcase({"A": [], "B": []})
        assert {f.name for f in briefcase} == {"A", "B"}
        assert "A" in briefcase and "Z" not in briefcase
        assert len(briefcase) == 2
