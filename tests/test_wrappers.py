"""Tests for the wrapper framework and the concrete wrappers."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.firewall.message import Message, SenderInfo
from repro.vm import loader
from repro.wrappers.base import AgentWrapper
from repro.wrappers.groupcomm import GroupCommWrapper, group_send
from repro.wrappers.location import LocationWrapper, resolve, send_via
from repro.wrappers.logwrap import LoggingWrapper
from repro.wrappers.monitor import MonitorLog, MonitorWrapper
from repro.wrappers.stack import (
    WrapperSpec,
    WrapperStack,
    build_stack,
    install_wrappers,
    read_wrapper_specs,
)


class TagWrapper(AgentWrapper):
    """Appends its tag to briefcases in both directions (test helper)."""

    kind = "tag"

    def on_send(self, ctx, target, briefcase):
        briefcase.append("SENT-VIA", self.config.get("tag", "?"))
        return target, briefcase

    def on_receive(self, ctx, message):
        message.briefcase.append("RECEIVED-VIA", self.config.get("tag", "?"))
        return message


class DropWrapper(AgentWrapper):
    kind = "drop"

    def on_send(self, ctx, target, briefcase):
        return None

    def on_receive(self, ctx, message):
        return None


def make_message(text="x"):
    return Message(target=AgentUri.parse("someone"),
                   briefcase=Briefcase({"BODY": [text]}),
                   sender=SenderInfo("tester", "host"))


class TestWrapperStack:
    def test_send_applies_innermost_first(self):
        stack = WrapperStack([TagWrapper({"tag": "outer"}),
                              TagWrapper({"tag": "inner"})])
        target, briefcase = stack.apply_send(None, AgentUri.parse("t"),
                                             Briefcase())
        assert briefcase.get("SENT-VIA").texts() == ["inner", "outer"]

    def test_receive_applies_outermost_first(self):
        stack = WrapperStack([TagWrapper({"tag": "outer"}),
                              TagWrapper({"tag": "inner"})])
        message = stack.apply_receive(None, make_message())
        assert message.briefcase.get("RECEIVED-VIA").texts() == \
            ["outer", "inner"]

    def test_swallowed_send(self):
        stack = WrapperStack([DropWrapper()])
        assert stack.apply_send(None, AgentUri.parse("t"), Briefcase()) \
            is None

    def test_consumed_receive(self):
        stack = WrapperStack([DropWrapper()])
        assert stack.apply_receive(None, make_message()) is None

    def test_lifecycle_fan_out(self):
        events = []

        class Probe(AgentWrapper):
            def __init__(self, config=None):
                super().__init__(config)

            def on_attach(self, ctx):
                events.append("attach")

            def on_arrive(self, ctx):
                events.append("arrive")

            def on_depart(self, ctx, target):
                events.append("depart")

            def on_detach(self, ctx):
                events.append("detach")

        stack = WrapperStack([Probe(), Probe()])
        stack.on_attach(None)
        stack.on_arrive(None)
        stack.on_depart(None, AgentUri.parse("t"))
        stack.on_detach(None)
        assert events == ["attach"] * 2 + ["arrive"] * 2 + \
            ["depart"] * 2 + ["detach"] * 2

    def test_spec_serialisation_round_trip(self):
        spec = WrapperSpec.by_ref(LoggingWrapper, {"trace": True})
        clone = WrapperSpec.from_json(spec.to_json())
        assert clone == spec

    def test_install_and_rebuild_from_briefcase(self):
        briefcase = Briefcase()
        install_wrappers(briefcase, [
            WrapperSpec.by_ref(LoggingWrapper, {"trace": False}),
            WrapperSpec.by_ref(MonitorWrapper, {}),
        ])
        specs = read_wrapper_specs(briefcase)
        stack = build_stack(specs)
        assert stack.depth == 2
        assert isinstance(stack.layers[0], LoggingWrapper)
        assert isinstance(stack.layers[1], MonitorWrapper)

    def test_empty_briefcase_has_no_wrappers(self):
        assert read_wrapper_specs(Briefcase()) == []

    def test_non_wrapper_factory_rejected(self):
        from repro.core.errors import VMError
        spec = WrapperSpec.by_ref(
            "tests.test_wrappers:make_message", {})
        with pytest.raises((VMError, TypeError)):
            build_stack([spec])

    def test_describe(self):
        stack = WrapperStack([TagWrapper({"tag": "a"})])
        assert stack.describe() == [{"kind": "tag", "config": {"tag": "a"}}]


def pinger_agent(ctx, bc):
    """Sends N pings to a group and then idles until stopped."""
    n = int(bc.get_text("N") or 3)
    for i in range(n):
        yield from group_send(ctx, "swarm", Briefcase({"PING": [str(i)]}))
    while True:
        message = yield from ctx.recv()
        if message.briefcase.get_text(wellknown.OP) == "stop":
            return "done"


def group_listener_agent(ctx, bc):
    """Collects PINGs it hears until stopped; reports them home."""
    heard = []
    while True:
        message = yield from ctx.recv(timeout=500)
        if message.briefcase.get_text(wellknown.OP) == "stop":
            yield from ctx.send(bc.get_text("HOME"),
                                Briefcase({"HEARD": heard}))
            return "done"
        ping = message.briefcase.get_text("PING")
        if ping is not None:
            heard.append(ping)


class TestGroupComm:
    def launch(self, cluster, entry, name, wrappers, home, host="solo.test",
               folders=None):
        briefcase = Briefcase(folders or {})
        loader.install_payload(briefcase, loader.pack_ref(entry),
                               agent_name=name)
        briefcase.put("HOME", home)
        install_wrappers(briefcase, wrappers)
        driver_uri = None

        node = cluster.node(host)
        driver = node.driver(name=f"launcher-{name}")

        def scenario():
            reply = yield from driver.meet(cluster.vm_uri(host), briefcase,
                                           timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)
            return reply.get_text("AGENT-URI")
        return cluster.run(scenario())

    def test_fifo_multicast_delivers_in_order(self, single_cluster):
        home = single_cluster.node("solo.test").driver(name="home")
        members = ["tacoma://solo.test//listener_a",
                   "tacoma://solo.test//listener_b"]
        config = {"group": "swarm", "members": members,
                  "ordering": "fifo"}
        spec = [WrapperSpec.by_ref(GroupCommWrapper, config)]
        a = self.launch(single_cluster, group_listener_agent, "listener_a",
                        spec, str(home.uri))
        b = self.launch(single_cluster, group_listener_agent, "listener_b",
                        spec, str(home.uri))
        sender_spec = [WrapperSpec.by_ref(GroupCommWrapper, config)]
        self.launch(single_cluster, pinger_agent, "pinger", sender_spec,
                    str(home.uri), folders={"N": ["4"]})

        def scenario():
            yield single_cluster.kernel.timeout(5)
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            for uri in (a, b):
                yield from home.send(AgentUri.parse(uri), stop)
            heard = []
            for _ in range(2):
                message = yield from home.recv(timeout=60)
                heard.append(message.briefcase.folder("HEARD").texts())
            return heard
        results = single_cluster.run(scenario())
        assert results == [["0", "1", "2", "3"], ["0", "1", "2", "3"]]

    def test_group_wrapper_requires_members(self):
        with pytest.raises(ValueError):
            GroupCommWrapper({"group": "g", "members": []})

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError):
            GroupCommWrapper({"group": "g", "members": ["x"],
                              "ordering": "psychic"})

    def test_non_group_traffic_passes_through(self):
        wrapper = GroupCommWrapper({"group": "g", "members": ["m"]})
        message = make_message()
        assert wrapper.on_receive(None, message) is message

    def test_fifo_holdback_reorders(self, single_cluster):
        """Deliver seq 2 before seq 1: the wrapper must hold it back."""
        node = single_cluster.node("solo.test")
        driver = node.driver(name="member")
        config = {"group": "g", "members": [str(driver.uri)]}
        wrapper = GroupCommWrapper(config)
        driver.wrappers = WrapperStack([wrapper])

        def gc_message(seq, body):
            briefcase = Briefcase({"BODY": [body]})
            briefcase.put("GC-GROUP", "g")
            briefcase.put("GC-SENDER", "tacoma://x//peer:1")
            briefcase.put("GC-KIND", "data")
            briefcase.put("GC-SEQ", seq)
            return Message(target=driver.uri, briefcase=briefcase,
                           sender=SenderInfo("peer", "x"))

        out_of_order = wrapper.on_receive(driver, gc_message(2, "second"))
        assert out_of_order is None  # held back
        in_order = wrapper.on_receive(driver, gc_message(1, "first"))
        assert in_order.briefcase.get_text("BODY") == "first"
        assert wrapper.reordered == 1

        def scenario():
            # The held-back message is re-injected via the firewall.
            message = yield from driver.recv(timeout=30)
            return message.briefcase.get_text("BODY")
        assert single_cluster.run(scenario()) == "second"

    def test_duplicate_suppressed(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver(name="member2")
        wrapper = GroupCommWrapper(
            {"group": "g", "members": [str(driver.uri)]})
        briefcase = Briefcase()
        briefcase.put("GC-GROUP", "g")
        briefcase.put("GC-SENDER", "tacoma://x//peer:1")
        briefcase.put("GC-KIND", "data")
        briefcase.put("GC-SEQ", 1)
        message = Message(target=driver.uri, briefcase=briefcase,
                          sender=SenderInfo("peer", "x"))
        assert wrapper.on_receive(driver, message) is not None
        duplicate = Message(target=driver.uri,
                            briefcase=briefcase.snapshot(),
                            sender=SenderInfo("peer", "x"))
        assert wrapper.on_receive(driver, duplicate) is None


class TestMonitorWrapper:
    def test_status_query_answered_without_agent(self, single_cluster):
        node = single_cluster.node("solo.test")
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(pinger_agent),
                               agent_name="watched")
        briefcase.put("N", "0")
        monitor_log = MonitorLog()
        node.firewall.register_agent(
            name="monitor-tool", principal="system", vm_name="vm_python",
            deliver_fn=monitor_log.deliver)
        install_wrappers(briefcase, [WrapperSpec.by_ref(
            MonitorWrapper,
            {"monitor": "tacoma://solo.test//monitor-tool",
             "tag": "watched"})])
        driver = node.driver()

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            agent_uri = reply.get_text("AGENT-URI")
            query = Briefcase()
            query.put(wellknown.OP, "status-query")
            status = yield from driver.meet(AgentUri.parse(agent_uri),
                                            query, timeout=60)
            results = status.get_json(wellknown.RESULTS)
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            yield from driver.send(AgentUri.parse(agent_uri), stop)
            return results
        results = single_cluster.run(scenario())
        assert results["host"] == "solo.test"
        assert results["agent"].startswith("watched:")
        assert monitor_log.last_known_host("watched") == "solo.test"
        events = [e["event"] for e in monitor_log.events]
        assert "arrived" in events

    def test_non_query_traffic_forwarded(self):
        wrapper = MonitorWrapper({})
        message = make_message()
        assert wrapper.on_receive(None, message) is message
        assert wrapper.messages_forwarded == 1

    def test_status_query_carries_live_telemetry(self, single_cluster):
        single_cluster.telemetry.enable()
        node = single_cluster.node("solo.test")
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(pinger_agent),
                               agent_name="watched")
        briefcase.put("N", "0")
        install_wrappers(briefcase,
                         [WrapperSpec.by_ref(MonitorWrapper,
                                             {"tag": "watched"})])
        driver = node.driver()

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            agent_uri = reply.get_text("AGENT-URI")
            # One plain delivery first, so the counters have something.
            yield from driver.send(AgentUri.parse(agent_uri),
                                   Briefcase({"NOISE": ["x"]}))
            query = Briefcase()
            query.put(wellknown.OP, "status-query")
            status = yield from driver.meet(AgentUri.parse(agent_uri),
                                            query, timeout=60)
            results = status.get_json(wellknown.RESULTS)
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            yield from driver.send(AgentUri.parse(agent_uri), stop)
            return results
        results = single_cluster.run(scenario())
        telemetry = results["telemetry"]
        assert telemetry["enabled"] is True
        assert telemetry["messages_in"] >= 1
        assert telemetry["hops"] == 0
        assert "running_since" in telemetry
        metrics = single_cluster.telemetry.metrics
        assert metrics.value("monitor.reports", tag="watched",
                             event="arrived") == 1


class TestMonitorLog:
    def _event_message(self, event, host, t, tag="bot"):
        from repro.wrappers.monitor import EVENT_FOLDER
        briefcase = Briefcase()
        briefcase.put(EVENT_FOLDER, {"event": event, "host": host,
                                     "t": t, "tag": tag,
                                     "agent": f"{tag}:1"})
        return Message(target=AgentUri.parse("monitor-tool"),
                       briefcase=briefcase,
                       sender=SenderInfo("system", host))

    def test_residency_spans_reconstructed_from_reports(self):
        log = MonitorLog()
        for event, host, t in (("arrived", "a.test", 1.0),
                               ("departing", "a.test", 3.0),
                               ("arrived", "b.test", 4.0),
                               ("finished", "b.test", 6.0)):
            log.deliver(self._event_message(event, host, t))
        spans = log.residency_spans("bot")
        assert [(s.name, s.start, s.end_time) for s in spans] == \
            [("at:a.test", 1.0, 3.0), ("at:b.test", 4.0, 6.0)]
        assert [s.args["outcome"] for s in spans] == \
            ["departing", "finished"]
        # The classic location API is untouched.
        assert log.last_known_host("bot") == "b.test"
        assert len(log.locations()) == 4

    def test_instants_recorded_for_every_report(self):
        log = MonitorLog()
        log.deliver(self._event_message("arrived", "a.test", 1.0))
        assert len(log.tracer.instants) == 1
        assert log.tracer.instants[0]["name"] == "monitor.arrived"
        assert log.tracer.instants[0]["t"] == 1.0

    def test_shared_tracer_is_used(self):
        from repro.obs.tracing import Tracer
        tracer = Tracer(enabled=True)
        log = MonitorLog(tracer=tracer)
        log.deliver(self._event_message("arrived", "a.test", 1.0))
        log.deliver(self._event_message("departing", "a.test", 2.0))
        assert tracer.find(track="monitor:bot")


class TestLoggingWrapper:
    def test_counters_and_trace(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        wrapper = LoggingWrapper({"trace": True})
        driver.wrappers = WrapperStack([wrapper])

        def scenario():
            yield from driver.send(AgentUri.parse("ag_fs"), Briefcase())
        single_cluster.run(scenario())
        assert wrapper.sent == 1 and wrapper.sent_bytes > 0
        trace = driver.briefcase.folder("WRAPLOG")
        assert len(trace) == 1
        assert wrapper.counters()["sent"] == 1

    def test_trace_capped(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        wrapper = LoggingWrapper({"trace": True, "max_trace": 2})
        driver.wrappers = WrapperStack([wrapper])

        def scenario():
            for _ in range(5):
                yield from driver.send(AgentUri.parse("ag_fs"), Briefcase())
        single_cluster.run(scenario())
        assert len(driver.briefcase.folder("WRAPLOG")) == 2
        assert wrapper.sent == 5


class TestLocation:
    def test_wrapper_requires_config(self):
        with pytest.raises(ValueError):
            LocationWrapper({})

    def test_publish_resolve_send_via(self, pair_cluster):
        registry_uri = "tacoma://beta.test//ag_locator"
        node = pair_cluster.node("alpha.test")
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(pinger_agent),
                               agent_name="roamer")
        briefcase.put("N", "0")
        install_wrappers(briefcase, [WrapperSpec.by_ref(
            LocationWrapper,
            {"registry": registry_uri, "logical": "the-roamer"})])
        driver = node.driver()

        def scenario():
            yield from driver.meet(pair_cluster.vm_uri("alpha.test"),
                                   briefcase, timeout=60)
            yield pair_cluster.kernel.timeout(1)
            where = yield from resolve(driver, registry_uri, "the-roamer")
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            yield from send_via(driver, registry_uri, "the-roamer", stop)
            return str(where)
        where = pair_cluster.run(scenario())
        assert "alpha.test" in where and "roamer" in where

    def test_resolve_unknown_raises(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        from repro.core.errors import AgentNotFoundError

        def scenario():
            with pytest.raises(AgentNotFoundError):
                yield from resolve(driver, "tacoma://solo.test//ag_locator",
                                   "nobody")
            return "done"
        assert single_cluster.run(scenario()) == "done"
