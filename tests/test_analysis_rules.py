"""Per-rule fixtures for the static analyzer (repro.analysis).

Every rule has a seeded fixture file under ``tests/fixtures/lint``
containing positive cases, negative (allowed) cases, and an inline
suppression; these tests pin the exact rule ids and line numbers the
analyzer must report, plus the scoping, suppression, fingerprint, and
baseline machinery.
"""

import os

import pytest

from repro.analysis import Analyzer, RULES, apply_baseline, load_baseline
from repro.analysis.baseline import write_baseline
from repro.analysis.findings import fingerprinted, sort_findings
from repro.analysis.rules import all_rule_ids

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
CASES = os.path.join(FIXTURES, "cases")
SCOPED = os.path.join(FIXTURES, "scoped")


def lint_file(*parts):
    return sort_findings(Analyzer().analyze_file(os.path.join(*parts)))


def rule_lines(findings, rule):
    return [f.line for f in findings if f.rule == rule]


def test_rule_pack_registered():
    ids = all_rule_ids()
    assert ids == ("DET001", "DET002", "DET003", "DET004", "DET005",
                   "DET006", "DUR001", "ERR001", "KER001", "MUT001",
                   "MUT002", "OBS001", "OBS002")
    assert len(RULES) == len(ids)


def test_det001_wall_clock():
    findings = lint_file(CASES, "det001_wallclock.py")
    assert rule_lines(findings, "DET001") == [8, 9]
    assert all(f.rule == "DET001" for f in findings)


def test_det002_unseeded_random():
    findings = lint_file(CASES, "det002_random.py")
    assert rule_lines(findings, "DET002") == [9, 10, 11, 12]
    assert all(f.rule == "DET002" for f in findings)


def test_det002_sanctuary_module_exempt():
    source = "import random\nx = random.random()\n"
    analyzer = Analyzer()
    assert analyzer.analyze_source(source, module="repro.sim.rng") == []
    outside = analyzer.analyze_source(source, module="repro.sim.network")
    assert [f.rule for f in outside] == ["DET002"]


def test_det003_env_scoped():
    findings = lint_file(SCOPED, "repro", "core", "env_read.py")
    assert rule_lines(findings, "DET003") == [9, 10]
    assert lint_file(SCOPED, "repro", "other", "env_ok.py") == []
    assert lint_file(CASES, "env_unscoped.py") == []


def test_det004_set_iteration():
    findings = lint_file(CASES, "det004_setiter.py")
    assert rule_lines(findings, "DET004") == [6, 8]
    assert all(f.rule == "DET004" for f in findings)


def test_det005_identity_order():
    findings = lint_file(CASES, "det005_identity.py")
    assert rule_lines(findings, "DET005") == [5, 6, 8, 9]
    assert all(f.rule == "DET005" for f in findings)


def test_det006_popitem():
    findings = lint_file(CASES, "det006_popitem.py")
    assert rule_lines(findings, "DET006") == [5]
    assert all(f.rule == "DET006" for f in findings)


def test_dur001_journal_bypass():
    findings = lint_file(CASES, "dur001_journal_bypass.py")
    assert rule_lines(findings, "DUR001") == [6, 7, 11, 12]
    assert all(f.rule == "DUR001" for f in findings)


def test_dur001_recovery_module_exempt():
    source = "firewall.dedup = image.dedup\n"
    analyzer = Analyzer()
    assert analyzer.analyze_source(
        source, module="repro.durability.recovery") == []
    outside = analyzer.analyze_source(
        source, module="repro.firewall.firewall")
    assert [f.rule for f in outside] == ["DUR001"]


def test_err001_broad_except():
    findings = lint_file(CASES, "err001_broad.py")
    assert rule_lines(findings, "ERR001") == [7, 12, 17]
    assert all(f.rule == "ERR001" for f in findings)


def test_ker001_kernel_bypass():
    findings = lint_file(CASES, "ker001_bypass.py")
    assert rule_lines(findings, "KER001") == [3, 5, 9]
    assert all(f.rule == "KER001" for f in findings)


def test_ker001_kernel_module_exempt():
    analyzer = Analyzer()
    source = "import heapq\n"
    assert analyzer.analyze_source(
        source, module="repro.sim.eventloop") == []
    outside = analyzer.analyze_source(source, module="repro.agent.context")
    assert [f.rule for f in outside] == ["KER001"]


def test_mut001_mutable_defaults():
    findings = lint_file(CASES, "mut001_defaults.py")
    assert rule_lines(findings, "MUT001") == [6, 11, 15]
    assert all(f.rule == "MUT001" for f in findings)


def test_mut002_missing_slots():
    findings = lint_file(CASES, "mut002_slots.py")
    assert rule_lines(findings, "MUT002") == [7, 13]
    assert all(f.rule == "MUT002" for f in findings)


def test_obs001_telemetry_facade():
    findings = lint_file(CASES, "obs001_facade.py")
    assert rule_lines(findings, "OBS001") == [10, 11, 12]
    assert all(f.rule == "OBS001" for f in findings)


def test_obs001_facade_module_exempt():
    source = ("from repro.obs.tracing import Tracer\n"
              "def build():\n"
              "    return Tracer(enabled=True)\n")
    analyzer = Analyzer()
    assert analyzer.analyze_source(
        source, module="repro.obs.telemetry") == []
    outside = analyzer.analyze_source(
        source, module="repro.wrappers.monitor")
    assert [f.rule for f in outside] == ["OBS001"]


def test_obs002_module_global_state():
    findings = lint_file(CASES, "obs002_module_state.py")
    assert rule_lines(findings, "OBS002") == [8, 9, 10, 11]
    # Line 9 binds a registry at module scope: both the facade rule and
    # the module-global rule apply, and the function-local and
    # suppressed constructions produce nothing.
    assert rule_lines(findings, "OBS001") == [9]
    assert {f.rule for f in findings} == {"OBS001", "OBS002"}


def test_file_wide_suppression():
    assert lint_file(CASES, "disable_file.py") == []


def test_fingerprints_survive_line_drift():
    source = open(os.path.join(CASES, "det006_popitem.py")).read()
    analyzer = Analyzer()
    before = fingerprinted(analyzer.analyze_source(source, path="x.py"))
    drifted = fingerprinted(analyzer.analyze_source(
        "\n\n\n" + source, path="x.py"))
    assert [f.fingerprint for f in before] == \
        [f.fingerprint for f in drifted]
    assert [f.line for f in before] != [f.line for f in drifted]


def test_fingerprints_distinguish_identical_lines():
    source = "d.popitem()\nd.popitem()\n"
    findings = fingerprinted(
        Analyzer().analyze_source(source, path="x.py"))
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint


def test_baseline_round_trip(tmp_path):
    path = os.path.join(CASES, "det006_popitem.py")
    report = Analyzer().analyze_paths([path])
    assert report.exit_code == 1
    baseline_path = str(tmp_path / "baseline.json")
    count = write_baseline(report.findings, baseline_path)
    assert count == len(report.findings) == 1
    apply_baseline(report, load_baseline(baseline_path))
    assert report.exit_code == 0
    assert all(f.baselined for f in report.findings)
    # A finding absent from the baseline still fails the gate.
    fresh = Analyzer().analyze_paths(
        [path, os.path.join(CASES, "det001_wallclock.py")])
    apply_baseline(fresh, load_baseline(baseline_path))
    assert fresh.exit_code == 1
    assert {f.rule for f in fresh.new_findings} == {"DET001"}


def test_bad_baseline_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_baseline(str(bad))


def test_report_ordering_is_total():
    report = Analyzer().analyze_paths([CASES])
    keys = [f.sort_key() for f in report.findings]
    assert keys == sorted(keys)
    assert report.findings  # the fixture tree is not silently empty
