"""Fault plans, the per-message fault injector, and host-down semantics."""

import pytest

from repro.sim.faults import (
    KIND_CRASH,
    KIND_LINK_DOWN,
    KIND_LINK_UP,
    KIND_RESTART,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.sim.network import (
    HostDownError,
    Network,
    TransferDroppedError,
)
from repro.sim.rng import RandomStream


class TestFaultEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor-strike", host="a")

    def test_crash_needs_host(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, KIND_CRASH)

    def test_link_event_needs_link(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, KIND_LINK_DOWN)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-0.1, KIND_CRASH, host="a")

    def test_to_dict(self):
        event = FaultEvent(2.0, KIND_LINK_UP, link=("a", "b"))
        assert event.to_dict() == {"at": 2.0, "kind": "link-up",
                                   "link": ["a", "b"]}


class TestFaultPlan:
    def test_builders_and_sorting(self):
        plan = FaultPlan(name="p")
        plan.crash(3.0, "b", outage=2.0)
        plan.flap(1.0, "a", "b", 0.5)
        kinds = [(e.at, e.kind) for e in plan.sorted_events()]
        assert kinds == [(1.0, KIND_LINK_DOWN), (1.5, KIND_LINK_UP),
                         (3.0, KIND_CRASH), (5.0, KIND_RESTART)]
        assert plan.horizon == 5.0

    def test_crash_without_outage_has_no_restart(self):
        plan = FaultPlan().crash(1.0, "b")
        assert [e.kind for e in plan.events] == [KIND_CRASH]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)

    def test_to_dict_is_sorted_and_json_friendly(self):
        plan = FaultPlan(name="p", drop_probability=0.1)
        plan.crash(2.0, "b")
        plan.link_down(1.0, "a", "b")
        body = plan.to_dict()
        assert body["name"] == "p"
        assert [e["at"] for e in body["events"]] == [1.0, 2.0]

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(hosts=["a", "b", "c"], links=[("a", "b")],
                      horizon=30.0, crashes=2, flaps=1)
        one = FaultPlan.generate(11, **kwargs)
        two = FaultPlan.generate(11, **kwargs)
        other = FaultPlan.generate(12, **kwargs)
        assert one.to_dict() == two.to_dict()
        assert one.to_dict() != other.to_dict()
        assert sum(e.kind == KIND_CRASH for e in one.events) == 2
        # every crash generated with an outage gets a paired restart
        assert sum(e.kind == KIND_RESTART for e in one.events) == 2


class TestFaultInjector:
    def test_verdict_sequence_is_seed_deterministic(self):
        plan = FaultPlan(drop_probability=0.3, corrupt_probability=0.2)
        one = FaultInjector(plan, seed_or_stream=5)
        two = FaultInjector(plan, seed_or_stream=5)
        verdicts = [one.verdict("a", "b", 100) for _ in range(50)]
        assert verdicts == [two.verdict("a", "b", 100) for _ in range(50)]
        assert one.stats() == two.stats()
        assert one.stats()["rolls"] == 50
        assert one.stats()["dropped"] > 0

    def test_clean_plan_never_faults(self):
        injector = FaultInjector(FaultPlan(), seed_or_stream=5)
        assert all(injector.verdict("a", "b", 1) is None
                   for _ in range(20))
        assert injector.stats() == {"rolls": 20, "dropped": 0,
                                    "corrupted": 0}

    def test_accepts_prebuilt_stream(self):
        plan = FaultPlan(drop_probability=1.0)
        injector = FaultInjector(plan,
                                 seed_or_stream=RandomStream(1, name="x"))
        assert injector.verdict("a", "b", 1) == "drop"


@pytest.fixture
def lan(kernel):
    net = Network(kernel)
    net.link("a", "b", latency=0.001, bandwidth=1000.0)
    return net


class TestHostDownSemantics:
    def test_transfer_to_down_host_raises(self, kernel, lan):
        lan.set_host_up("b", False)

        def proc():
            yield from lan.transfer("a", "b", 100)
        with pytest.raises(HostDownError):
            kernel.run_process(proc())
        assert not lan.host_is_up("b")

    def test_failed_transfer_not_charged(self, kernel, lan):
        lan.set_host_up("b", False)

        def proc():
            yield from lan.transfer("a", "b", 100)
        with pytest.raises(HostDownError):
            kernel.run_process(proc())
        stats = lan.stats_between("a", "b")
        assert stats.messages == 0 and stats.payload_bytes == 0

    def test_crash_mid_flight_drops_transfer(self, kernel, lan):
        # The receiver dies while the bytes are on the wire: the transfer
        # spends its time, then fails, and the link is never charged.
        def killer():
            yield kernel.timeout(0.05)
            lan.set_host_up("b", False)

        def proc():
            kernel.spawn(killer())
            yield from lan.transfer("a", "b", 500)  # 0.501 s on the wire
        with pytest.raises(HostDownError):
            kernel.run_process(proc())
        assert kernel.now == pytest.approx(0.501)
        assert lan.stats_between("a", "b").messages == 0

    def test_revived_host_transfers_again(self, kernel, lan):
        lan.set_host_up("b", False)
        lan.set_host_up("b", True)

        def proc():
            yield from lan.transfer("a", "b", 100)
        kernel.run_process(proc())
        assert lan.stats_between("a", "b").messages == 1

    def test_injected_drop_raises_and_not_charged(self, kernel, lan):
        plan = FaultPlan(drop_probability=1.0)
        lan.fault_injector = FaultInjector(plan, seed_or_stream=3)

        def proc():
            yield from lan.transfer("a", "b", 100)
        with pytest.raises(TransferDroppedError):
            kernel.run_process(proc())
        assert lan.stats_between("a", "b").messages == 0
        assert lan.fault_injector.stats()["dropped"] == 1

    def test_loopback_exempt_from_injection(self, kernel, lan):
        plan = FaultPlan(drop_probability=1.0)
        lan.fault_injector = FaultInjector(plan, seed_or_stream=3)

        def proc():
            yield from lan.transfer("a", "a", 100)
        kernel.run_process(proc())
        assert lan.fault_injector.stats()["rolls"] == 0
