"""Fault plans, the per-message fault injector, and host-down semantics."""

import pytest

from repro.sim.faults import (
    KIND_CRASH,
    KIND_HEAL,
    KIND_LINK_DOWN,
    KIND_LINK_DOWN_ONEWAY,
    KIND_LINK_UP,
    KIND_LINK_UP_ONEWAY,
    KIND_PARTITION,
    KIND_RESTART,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.sim.network import (
    HostDownError,
    Network,
    TransferDroppedError,
)
from repro.sim.rng import RandomStream


class TestFaultEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor-strike", host="a")

    def test_crash_needs_host(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, KIND_CRASH)

    def test_link_event_needs_link(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, KIND_LINK_DOWN)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-0.1, KIND_CRASH, host="a")

    def test_to_dict(self):
        event = FaultEvent(2.0, KIND_LINK_UP, link=("a", "b"))
        assert event.to_dict() == {"at": 2.0, "kind": "link-up",
                                   "link": ["a", "b"]}


class TestFaultPlan:
    def test_builders_and_sorting(self):
        plan = FaultPlan(name="p")
        plan.crash(3.0, "b", outage=2.0)
        plan.flap(1.0, "a", "b", 0.5)
        kinds = [(e.at, e.kind) for e in plan.sorted_events()]
        assert kinds == [(1.0, KIND_LINK_DOWN), (1.5, KIND_LINK_UP),
                         (3.0, KIND_CRASH), (5.0, KIND_RESTART)]
        assert plan.horizon == 5.0

    def test_crash_without_outage_has_no_restart(self):
        plan = FaultPlan().crash(1.0, "b")
        assert [e.kind for e in plan.events] == [KIND_CRASH]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)

    def test_to_dict_is_sorted_and_json_friendly(self):
        plan = FaultPlan(name="p", drop_probability=0.1)
        plan.crash(2.0, "b")
        plan.link_down(1.0, "a", "b")
        body = plan.to_dict()
        assert body["name"] == "p"
        assert [e["at"] for e in body["events"]] == [1.0, 2.0]

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(hosts=["a", "b", "c"], links=[("a", "b")],
                      horizon=30.0, crashes=2, flaps=1)
        one = FaultPlan.generate(11, **kwargs)
        two = FaultPlan.generate(11, **kwargs)
        other = FaultPlan.generate(12, **kwargs)
        assert one.to_dict() == two.to_dict()
        assert one.to_dict() != other.to_dict()
        assert sum(e.kind == KIND_CRASH for e in one.events) == 2
        # every crash generated with an outage gets a paired restart
        assert sum(e.kind == KIND_RESTART for e in one.events) == 2


class TestFaultInjector:
    def test_verdict_sequence_is_seed_deterministic(self):
        plan = FaultPlan(drop_probability=0.3, corrupt_probability=0.2)
        one = FaultInjector(plan, seed_or_stream=5)
        two = FaultInjector(plan, seed_or_stream=5)
        verdicts = [one.verdict("a", "b", 100) for _ in range(50)]
        assert verdicts == [two.verdict("a", "b", 100) for _ in range(50)]
        assert one.stats() == two.stats()
        assert one.stats()["rolls"] == 50
        assert one.stats()["dropped"] > 0

    def test_clean_plan_never_faults(self):
        injector = FaultInjector(FaultPlan(), seed_or_stream=5)
        assert all(injector.verdict("a", "b", 1) is None
                   for _ in range(20))
        assert injector.stats() == {"rolls": 20, "dropped": 0,
                                    "corrupted": 0, "delivery_rolls": 0,
                                    "duplicated": 0, "reordered": 0,
                                    "wire_corrupted": 0,
                                    "slow_fsyncs": 0, "torn_tails": 0,
                                    "lost_suffixes": 0}

    def test_accepts_prebuilt_stream(self):
        plan = FaultPlan(drop_probability=1.0)
        injector = FaultInjector(plan,
                                 seed_or_stream=RandomStream(1, name="x"))
        assert injector.verdict("a", "b", 1) == "drop"


@pytest.fixture
def lan(kernel):
    net = Network(kernel)
    net.link("a", "b", latency=0.001, bandwidth=1000.0)
    return net


class TestHostDownSemantics:
    def test_transfer_to_down_host_raises(self, kernel, lan):
        lan.set_host_up("b", False)

        def proc():
            yield from lan.transfer("a", "b", 100)
        with pytest.raises(HostDownError):
            kernel.run_process(proc())
        assert not lan.host_is_up("b")

    def test_failed_transfer_not_charged(self, kernel, lan):
        lan.set_host_up("b", False)

        def proc():
            yield from lan.transfer("a", "b", 100)
        with pytest.raises(HostDownError):
            kernel.run_process(proc())
        stats = lan.stats_between("a", "b")
        assert stats.messages == 0 and stats.payload_bytes == 0

    def test_crash_mid_flight_drops_transfer(self, kernel, lan):
        # The receiver dies while the bytes are on the wire: the transfer
        # spends its time, then fails, and the link is never charged.
        def killer():
            yield kernel.timeout(0.05)
            lan.set_host_up("b", False)

        def proc():
            kernel.spawn(killer())
            yield from lan.transfer("a", "b", 500)  # 0.501 s on the wire
        with pytest.raises(HostDownError):
            kernel.run_process(proc())
        assert kernel.now == pytest.approx(0.501)
        assert lan.stats_between("a", "b").messages == 0

    def test_revived_host_transfers_again(self, kernel, lan):
        lan.set_host_up("b", False)
        lan.set_host_up("b", True)

        def proc():
            yield from lan.transfer("a", "b", 100)
        kernel.run_process(proc())
        assert lan.stats_between("a", "b").messages == 1

    def test_injected_drop_raises_and_not_charged(self, kernel, lan):
        plan = FaultPlan(drop_probability=1.0)
        lan.fault_injector = FaultInjector(plan, seed_or_stream=3)

        def proc():
            yield from lan.transfer("a", "b", 100)
        with pytest.raises(TransferDroppedError):
            kernel.run_process(proc())
        assert lan.stats_between("a", "b").messages == 0
        assert lan.fault_injector.stats()["dropped"] == 1

    def test_loopback_exempt_from_injection(self, kernel, lan):
        plan = FaultPlan(drop_probability=1.0)
        lan.fault_injector = FaultInjector(plan, seed_or_stream=3)

        def proc():
            yield from lan.transfer("a", "a", 100)
        kernel.run_process(proc())
        assert lan.fault_injector.stats()["rolls"] == 0


class TestDeliveryVerdicts:
    def test_delivery_sequence_is_seed_deterministic(self):
        plan = FaultPlan(duplicate_probability=0.3,
                         reorder_probability=0.2,
                         wire_corrupt_probability=0.1)
        one = FaultInjector(plan, seed_or_stream=5)
        two = FaultInjector(plan, seed_or_stream=5)
        verdicts = [one.delivery_verdict("a", "b", 100)
                    for _ in range(60)]
        assert verdicts == [two.delivery_verdict("a", "b", 100)
                            for _ in range(60)]
        assert one.stats() == two.stats()
        assert one.stats()["delivery_rolls"] == 60
        assert one.stats()["duplicated"] > 0
        assert one.stats()["reordered"] > 0
        assert one.stats()["wire_corrupted"] > 0

    def test_delivery_stream_is_independent_of_verdict_stream(self):
        """Interleaving classic drop rolls must not shift the delivery
        stream (they fork from separate substreams)."""
        plan = FaultPlan(duplicate_probability=0.5, drop_probability=0.5)
        one = FaultInjector(plan, seed_or_stream=9)
        two = FaultInjector(plan, seed_or_stream=9)
        pure = [one.delivery_verdict("a", "b", 10) for _ in range(20)]
        interleaved = []
        for _ in range(20):
            two.verdict("a", "b", 10)
            interleaved.append(two.delivery_verdict("a", "b", 10))
        assert pure == interleaved

    def test_clean_plan_has_no_delivery_faults(self):
        injector = FaultInjector(FaultPlan(), seed_or_stream=5)
        assert not FaultPlan().has_delivery_faults
        assert all(injector.delivery_verdict("a", "b", 1) is None
                   for _ in range(20))

    def test_reorder_delay_within_configured_bounds(self):
        plan = FaultPlan(reorder_probability=1.0,
                         reorder_delay=(0.25, 0.75))
        injector = FaultInjector(plan, seed_or_stream=3)
        for _ in range(50):
            kind, delay = injector.delivery_verdict("a", "b", 10)
            assert kind == "delay"
            assert 0.25 <= delay <= 0.75

    def test_delivery_probability_validation(self):
        for field in ("duplicate_probability", "reorder_probability",
                      "wire_corrupt_probability"):
            with pytest.raises(ValueError):
                FaultPlan(**{field: 1.5})

    def test_flip_bit_changes_exactly_one_bit(self):
        plan = FaultPlan(wire_corrupt_probability=1.0)
        injector = FaultInjector(plan, seed_or_stream=4)
        original = bytes(range(32))
        flipped = injector.flip_bit(original)
        assert len(flipped) == len(original)
        diff = [(a ^ b) for a, b in zip(original, flipped)]
        assert sum(bin(d).count("1") for d in diff) == 1


class TestPartitionEvents:
    def test_partition_and_heal_builders(self):
        plan = FaultPlan()
        plan.partition(1.0, ["a"], ["b", "c"])
        plan.heal(2.0)
        kinds = [e.kind for e in plan.sorted_events()]
        assert kinds == [KIND_PARTITION, KIND_HEAL]

    def test_split_brain_builder_pairs_partition_with_heal(self):
        plan = FaultPlan().split_brain(1.0, 2.5, ["a"], ["b"])
        events = plan.sorted_events()
        assert [(e.at, e.kind) for e in events] == \
            [(1.0, KIND_PARTITION), (3.5, KIND_HEAL)]
        assert events[0].groups == (("a",), ("b",))

    def test_oneway_builders(self):
        plan = FaultPlan()
        plan.link_down_oneway(1.0, "a", "b")
        plan.link_up_oneway(2.0, "a", "b")
        kinds = [e.kind for e in plan.sorted_events()]
        assert kinds == [KIND_LINK_DOWN_ONEWAY, KIND_LINK_UP_ONEWAY]


class TestPartitionNetworkSemantics:
    @pytest.fixture
    def mesh(self, kernel):
        net = Network(kernel)
        for pair in (("a", "b"), ("a", "c"), ("b", "c")):
            net.link(*pair, latency=0.001, bandwidth=1000.0)
        return net

    def test_partition_downs_only_cross_group_links(self, mesh):
        downed = mesh.partition([["a"], ["b", "c"]])
        assert downed == 4  # a↔b and a↔c, both directions
        assert not mesh.link_between("a", "b").up
        assert not mesh.link_between("b", "a").up
        assert mesh.link_between("b", "c").up

    def test_heal_restores_everything(self, mesh):
        mesh.partition([["a"], ["b", "c"]])
        mesh.set_link_up_oneway("b", "c", False)
        assert mesh.heal() == 5
        for pair in (("a", "b"), ("b", "a"), ("b", "c")):
            assert mesh.link_between(*pair).up

    def test_oneway_failure_is_asymmetric(self, mesh):
        mesh.set_link_up_oneway("a", "b", False)
        assert not mesh.link_between("a", "b").up
        assert mesh.link_between("b", "a").up
