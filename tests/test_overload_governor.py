"""Overload protection: limits primitives, governor, bounded queue,
breakers, and the R3 flood scenario.

The property tests pin the two conservation invariants the subsystem is
built on:

- queue occupancy never exceeds its bounds, and every offered message is
  accounted for (``offered == accepted + rejected``);
- a token bucket's level stays in ``[0, capacity]`` no matter the
  take/refill interleaving.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    BriefcaseTooLargeError,
    CircuitOpenError,
    OverloadError,
    QueueFullError,
    QuotaExceededError,
    TransientError,
)
from repro.core.identity import SYSTEM_PRINCIPAL
from repro.core.limits import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
    QueueLimits,
    TokenBucket,
    WireLimits,
)
from repro.core.uri import AgentUri
from repro.firewall.governor import Governor, GovernorConfig, QuotaSpec
from repro.firewall.message import Message, SenderInfo
from repro.firewall.msgqueue import PendingQueue
from repro.obs.telemetry import Telemetry
from repro.sim.eventloop import Kernel


def message(target="svc", principal="alice", timeout=30.0, priority=0,
            payload=b""):
    briefcase = Briefcase()
    if payload:
        briefcase.append("PAYLOAD", payload)
    return Message(target=AgentUri.parse(target), briefcase=briefcase,
                   sender=SenderInfo(principal=principal, host="h",
                                     authenticated=True),
                   queue_timeout=timeout, priority=priority)


def telemetry_kernel() -> Kernel:
    return Kernel(telemetry=Telemetry(enabled=True))


# -- error taxonomy -----------------------------------------------------------------


class TestErrorTaxonomy:
    def test_overload_errors_are_transient(self):
        for exc_type in (OverloadError, QueueFullError,
                         QuotaExceededError, CircuitOpenError):
            assert issubclass(exc_type, TransientError)
            assert exc_type("x").transient

    def test_wire_errors_are_permanent(self):
        assert not BriefcaseTooLargeError("x").transient


# -- token bucket -------------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, capacity=3.0, now=0.0)
        assert all(bucket.try_take(1.0, now=0.0) for _ in range(3))
        assert not bucket.try_take(1.0, now=0.0)

    def test_refills_at_rate_capped_at_capacity(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0, now=0.0)
        for _ in range(4):
            bucket.try_take(1.0, now=0.0)
        assert bucket.peek(1.0) == pytest.approx(2.0)
        assert bucket.peek(100.0) == pytest.approx(4.0)

    def test_failed_take_removes_nothing(self):
        bucket = TokenBucket(rate=0.0, capacity=2.0, now=0.0)
        assert not bucket.try_take(3.0, now=0.0)
        assert bucket.peek(0.0) == pytest.approx(2.0)

    def test_seconds_until(self):
        bucket = TokenBucket(rate=2.0, capacity=10.0, now=0.0, level=0.0)
        assert bucket.seconds_until(4.0, now=0.0) == pytest.approx(2.0)
        assert bucket.seconds_until(11.0, now=0.0) == float("inf")
        assert TokenBucket(rate=0.0, capacity=5.0, level=1.0) \
            .seconds_until(2.0, now=0.0) == float("inf")

    @given(
        rate=st.floats(min_value=0.0, max_value=50.0,
                       allow_nan=False, allow_infinity=False),
        capacity=st.floats(min_value=0.1, max_value=50.0,
                           allow_nan=False, allow_infinity=False),
        steps=st.lists(st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
            max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_level_always_within_bounds(self, rate, capacity, steps):
        bucket = TokenBucket(rate=rate, capacity=capacity, now=0.0)
        now = 0.0
        for dt, want in steps:
            now += dt
            before = bucket.peek(now)
            took = bucket.try_take(want, now=now)
            assert 0.0 <= bucket.level <= bucket.capacity + 1e-9
            if took:
                assert bucket.level == pytest.approx(
                    max(0.0, before - want), abs=1e-6)
            else:
                assert bucket.level == pytest.approx(before)


# -- circuit breaker ----------------------------------------------------------------


class TestCircuitBreaker:
    def config(self, **overrides):
        base = dict(failure_threshold=3, cooldown_seconds=2.0,
                    half_open_probes=1)
        base.update(overrides)
        return BreakerConfig(**base)

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(self.config())
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(1.0)
        assert breaker.fast_failures == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(self.config())
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.allow(2.5)  # past cooldown: the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow(2.5)  # only one probe allowed
        breaker.record_success(2.6)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow(2.7)

    def test_half_open_probe_reopens_on_failure(self):
        breaker = CircuitBreaker(self.config())
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.allow(2.5)
        breaker.record_failure(2.5)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(3.0)  # cooldown restarted at 2.5
        assert breaker.allow(4.6)

    def test_transition_callback_and_snapshot(self):
        seen = []
        breaker = CircuitBreaker(
            self.config(), on_transition=lambda o, n, t: seen.append((o, n)))
        for _ in range(3):
            breaker.record_failure(1.0)
        breaker.allow(4.0)
        breaker.record_success(4.0)
        assert seen == [(BREAKER_CLOSED, BREAKER_OPEN),
                        (BREAKER_OPEN, BREAKER_HALF_OPEN),
                        (BREAKER_HALF_OPEN, BREAKER_CLOSED)]
        snapshot = breaker.snapshot()
        assert snapshot["state"] == BREAKER_CLOSED
        assert snapshot["opened_count"] == 1


# -- config round trips -------------------------------------------------------------


class TestConfigRoundTrips:
    def test_quota_spec(self):
        spec = QuotaSpec(messages_per_second=5.0, burst=8,
                         max_bytes_in_flight=1000)
        assert QuotaSpec.from_config(spec.to_config()) == spec
        assert QuotaSpec.from_config(None) is None
        assert QuotaSpec(messages_per_second=3.0).bucket_capacity == 6.0

    def test_wire_limits(self):
        limits = WireLimits(max_encoded_bytes=1024, max_folders=4)
        assert WireLimits.from_config(limits.to_config()) == limits

    def test_breaker_config(self):
        config = BreakerConfig(failure_threshold=2, cooldown_seconds=1.0)
        assert BreakerConfig.from_config(config.to_config()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaSpec(messages_per_second=0.0)
        with pytest.raises(ValueError):
            QueueLimits(max_messages=0)
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            GovernorConfig(overflow="bogus")


# -- governor admission -------------------------------------------------------------


class TestGovernor:
    def governor(self, **config):
        kernel = telemetry_kernel()
        return Governor(kernel, "h.test", GovernorConfig(**config)), kernel

    def test_no_quota_admits_everything(self):
        governor, _ = self.governor()
        for _ in range(100):
            governor.admit_message("alice", 10_000)
        assert governor.admitted == 100

    def test_system_principal_exempt_from_default(self):
        governor, _ = self.governor(
            default_quota=QuotaSpec(messages_per_second=1.0, burst=1))
        governor.admit_message("system", 10)
        governor.admit_message("system", 10)  # would exceed burst=1
        with pytest.raises(QuotaExceededError):
            governor.admit_message("alice", 10)
            governor.admit_message("alice", 10)

    def test_explicit_system_quota_is_honoured(self):
        governor, _ = self.governor(
            quotas={SYSTEM_PRINCIPAL: QuotaSpec(messages_per_second=1.0,
                                                burst=1)})
        governor.admit_message("system", 10)
        with pytest.raises(QuotaExceededError):
            governor.admit_message("system", 10)

    def test_rate_quota_refills_with_virtual_time(self):
        governor, kernel = self.governor(
            default_quota=QuotaSpec(messages_per_second=2.0, burst=2))
        governor.admit_message("alice", 1)
        governor.admit_message("alice", 1)
        with pytest.raises(QuotaExceededError):
            governor.admit_message("alice", 1)
        kernel.run(until=1.0)  # 2 tokens refill
        governor.admit_message("alice", 1)
        assert governor.rejections == {"rate": 1}

    def test_bytes_in_flight_quota(self):
        governor, kernel = self.governor(
            default_quota=QuotaSpec(max_bytes_in_flight=100))
        queue = PendingQueue(kernel)
        queue.park(message(principal="alice", payload=b"x" * 80))
        wire = 90
        with pytest.raises(QuotaExceededError, match="bytes-in-flight|quota"):
            governor.admit_message("alice", wire, pending=queue)
        # A different principal is unaffected.
        governor.admit_message("bob", wire, pending=queue)

    def test_wire_limit_is_permanent_not_transient(self):
        governor, _ = self.governor(
            wire_limits=WireLimits(max_encoded_bytes=100))
        with pytest.raises(BriefcaseTooLargeError):
            governor.admit_message("alice", 101)

    def test_agent_and_cabinet_quotas(self):
        governor, _ = self.governor(
            default_quota=QuotaSpec(max_resident_agents=2,
                                    max_cabinet_bytes=100))
        governor.admit_agent("alice", 1)
        with pytest.raises(QuotaExceededError):
            governor.admit_agent("alice", 2)
        governor.admit_cabinet("alice", 50, 50)
        with pytest.raises(QuotaExceededError):
            governor.admit_cabinet("alice", 50, 51)

    def test_snapshot_is_deterministic_and_jsonable(self):
        import json
        governor, _ = self.governor(
            default_quota=QuotaSpec(messages_per_second=1.0, burst=1))
        governor.admit_message("b", 1)
        governor.admit_message("a", 1)
        snapshot = governor.snapshot()
        assert json.dumps(snapshot, sort_keys=True)
        assert list(snapshot["buckets"]) == ["a", "b"]


# -- bounded pending queue ----------------------------------------------------------


class TestBoundedQueue:
    def test_unbounded_by_default(self, kernel):
        queue = PendingQueue(kernel)
        for _ in range(500):
            queue.park(message())
        assert len(queue) == 500

    def test_reject_policy_raises_transient(self):
        kernel = telemetry_kernel()
        queue = PendingQueue(kernel, host="h",
                             limits=QueueLimits(max_messages=2))
        queue.park(message())
        queue.park(message())
        with pytest.raises(QueueFullError) as info:
            queue.park(message())
        assert info.value.transient
        assert len(queue) == 2 and queue.rejected == 1
        assert kernel.telemetry.metrics.value(
            "fw.queue_rejected", host="h", policy="reject") == 1

    def test_byte_bound(self, kernel):
        queue = PendingQueue(kernel, limits=QueueLimits(max_bytes=300))
        queue.park(message(payload=b"x" * 200))
        with pytest.raises(QueueFullError):
            queue.park(message(payload=b"y" * 200))

    def test_oversized_message_rejected_even_when_empty(self, kernel):
        queue = PendingQueue(kernel, limits=QueueLimits(max_bytes=50),
                             overflow="drop-oldest")
        with pytest.raises(QueueFullError, match="alone exceeds"):
            queue.park(message(payload=b"x" * 100))

    def test_drop_oldest_evicts_to_dead_letters(self):
        kernel = telemetry_kernel()
        queue = PendingQueue(kernel, host="h",
                             limits=QueueLimits(max_messages=2),
                             overflow="drop-oldest")
        first = message(target="a")
        queue.park(first)
        queue.park(message(target="b"))
        queue.park(message(target="c"))
        assert [t.name for t in queue.peek_targets()] == ["b", "c"]
        assert queue.evicted == 1
        assert queue.dead_letters[-1].message is first
        assert queue.dead_letters[-1].reason == "evicted"
        assert kernel.telemetry.metrics.value(
            "fw.queue_evictions", host="h", policy="drop-oldest") == 1

    def test_shed_priority_evicts_strictly_lower(self, kernel):
        queue = PendingQueue(kernel, limits=QueueLimits(max_messages=2),
                             overflow="shed-priority")
        queue.park(message(target="low", priority=0))
        queue.park(message(target="high", priority=5))
        queue.park(message(target="urgent", priority=9))
        assert [t.name for t in queue.peek_targets()] == ["high", "urgent"]
        # An equal-priority newcomer is rejected, not shed for.
        with pytest.raises(QueueFullError, match="no lower-priority"):
            queue.park(message(target="also-high", priority=5))

    def test_watermarks_track_peak(self):
        kernel = telemetry_kernel()
        queue = PendingQueue(kernel, host="h",
                             limits=QueueLimits(max_messages=10))
        for _ in range(4):
            queue.park(message())
        queue.claim(lambda target: True)
        metrics = kernel.telemetry.metrics
        assert metrics.value("fw.queue_depth", host="h") == 0
        assert metrics.value("fw.queue_peak_depth", host="h") == 4

    def test_dead_letter_ledger_trims_visibly(self):
        kernel = telemetry_kernel()
        notes = []
        queue = PendingQueue(kernel, host="h", dead_letter_limit=2,
                             log=notes.append)
        for i in range(4):
            queue.park(message(target=f"t{i}", timeout=1.0))
        kernel.run(until=2.0)
        assert queue.expired_count == 4
        assert len(queue.dead_letters) == 2
        assert queue.dead_letter_evictions == 2
        assert kernel.telemetry.metrics.value(
            "fw.dead_letter_evictions", host="h") == 2
        trim_notes = [n for n in notes if "dead-letter ledger full" in n]
        assert len(trim_notes) == 2 and "t0" in trim_notes[0]

    def test_bad_configuration_rejected(self, kernel):
        with pytest.raises(ValueError):
            PendingQueue(kernel, overflow="bogus")
        with pytest.raises(ValueError):
            PendingQueue(kernel, dead_letter_limit=0)

    @given(
        max_messages=st.integers(min_value=1, max_value=8),
        max_bytes=st.integers(min_value=50, max_value=2000),
        policy=st.sampled_from(["reject", "drop-oldest", "shed-priority"]),
        offers=st.lists(st.tuples(
            st.integers(min_value=0, max_value=400),   # payload bytes
            st.integers(min_value=0, max_value=3)),    # priority
            max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_conservation_hold(self, max_messages, max_bytes,
                                          policy, offers):
        kernel = Kernel()
        limits = QueueLimits(max_messages=max_messages, max_bytes=max_bytes)
        queue = PendingQueue(kernel, limits=limits, overflow=policy)
        for payload_bytes, priority in offers:
            try:
                queue.park(message(payload=b"x" * payload_bytes,
                                   priority=priority))
            except QueueFullError:
                pass
            # Bounds hold after every single offer.
            assert len(queue) <= max_messages
            assert queue.bytes <= max_bytes
        accounting = queue.accounting()
        assert accounting["offered"] == len(offers)
        assert accounting["offered"] == \
            accounting["accepted"] + accounting["rejected"]
        assert accounting["accepted"] == \
            accounting["claimed"] + accounting["expired"] + \
            accounting["crashed"] + accounting["evicted"] + \
            accounting["parked_now"]
        assert accounting["parked_bytes"] == \
            sum(e.wire_bytes for e in queue._pending)


# -- the flood scenario (R3) --------------------------------------------------------


class TestOverloadScenario:
    @pytest.fixture(scope="class")
    def documents(self):
        from repro.bench.overload import run_overload
        return {
            "governed": run_overload(seed=7, governed=True),
            "ungoverned": run_overload(seed=7, governed=False),
        }

    def test_ungoverned_queue_is_unbounded(self, documents):
        bare = documents["ungoverned"]
        assert bare["target"]["queue_peak_depth"] >= \
            bare["flood"]["offered"]
        assert bare["stats"]["queue_rejected"] == 0
        assert bare["breaker"]["fast_failed"] == 0

    def test_governed_queue_stays_bounded(self, documents):
        governed = documents["governed"]
        cap = governed["target"]["governor"]["queue_limits"]["max_messages"]
        assert governed["target"]["queue_peak_depth"] <= cap

    def test_governed_flood_still_completes(self, documents):
        governed = documents["governed"]
        assert governed["flood"]["completion_rate"] >= 0.95
        assert governed["stats"]["overload_rejections"] > 0
        assert governed["stats"]["transport_retries"] > 0

    def test_breaker_fast_fails_dead_host(self, documents):
        governed = documents["governed"]
        assert governed["breaker"]["fast_failed"] > 0
        link = governed["breaker"]["links"][
            "target.overload.example->dead.overload.example"]
        assert link["opened_count"] >= 1

    def test_poison_quarantined_not_crashed(self, documents):
        assert documents["ungoverned"]["target"]["quarantined"] == 2
        # The governed wire limit additionally catches the oversized one.
        assert documents["governed"]["target"]["quarantined"] == 3

    def test_accounting_identity_in_both_modes(self, documents):
        for document in documents.values():
            queue = document["target"]["queue"]
            assert queue["offered"] == queue["accepted"] + queue["rejected"]
            assert queue["accepted"] == \
                queue["claimed"] + queue["expired"] + queue["crashed"] + \
                queue["evicted"] + queue["parked_now"]

    def test_document_is_deterministic(self, documents):
        from repro.bench.overload import render_overload_json, run_overload
        again = run_overload(seed=7, governed=True)
        assert render_overload_json(again) == \
            render_overload_json(documents["governed"])

    def test_r3_claims_hold(self):
        from repro.bench.experiments import run_r3
        report = run_r3()
        assert report.all_claims_hold
