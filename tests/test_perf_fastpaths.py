"""Tests for the hot-path optimisations: fast decoder vs reference,
briefcase encoding cache, wire coalescing, and the perf harness."""

import struct

import pytest

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import CodecError
from repro.sim.eventloop import Kernel
from repro.sim.network import Network


@pytest.fixture
def both_decoders():
    """Yields a helper that runs decode under both regimes and asserts
    they agree (same briefcase, or same error type and message)."""
    def run(data, limits=codec.DEFAULT_WIRE_LIMITS
            if hasattr(codec, "DEFAULT_WIRE_LIMITS") else None):
        results = {}
        for enabled in (False, True):
            previous = codec.set_fast_paths(enabled)
            try:
                try:
                    results[enabled] = ("ok", codec.decode(data))
                except CodecError as exc:
                    results[enabled] = ("err", type(exc), str(exc))
            finally:
                codec.set_fast_paths(previous)
        assert results[False] == results[True], (
            f"decoders disagree on {data!r}: {results}")
        return results[True]
    return run


def wire_of(mapping) -> bytes:
    return codec.encode(Briefcase(mapping))


class TestDecoderEquivalence:
    def test_agree_on_valid_input(self, both_decoders):
        status, briefcase = both_decoders(wire_of({
            "HOSTS": ["a", "b"], "DATA": [b"\x00\x01", b""], "EMPTY": []}))
        assert status == "ok"
        assert briefcase.names() == ["HOSTS", "DATA", "EMPTY"]

    @pytest.mark.parametrize("cut", list(range(0, 10)))
    def test_agree_on_every_short_prefix(self, both_decoders, cut):
        wire = wire_of({"F": [b"xy"]})
        status, *_ = both_decoders(wire[:cut])
        if cut < len(wire):
            assert status == "err"

    @pytest.mark.parametrize("cut", [10, 12, 15, 20, -1])
    def test_agree_on_truncated_body(self, both_decoders, cut):
        wire = wire_of({"FOLDER": [b"payload", b"more"]})
        status, *_ = both_decoders(wire[:cut])
        assert status == "err"

    def test_agree_on_bad_magic(self, both_decoders):
        wire = bytearray(wire_of({"F": [b"x"]}))
        wire[0] = 0x00
        status, _type, message = both_decoders(bytes(wire))
        assert status == "err" and "magic" in message

    def test_agree_on_bad_version(self, both_decoders):
        wire = bytearray(wire_of({"F": [b"x"]}))
        wire[4] = 9
        status, _type, message = both_decoders(bytes(wire))
        assert status == "err" and "version 9" in message

    def test_agree_on_trailing_garbage(self, both_decoders):
        status, _type, message = both_decoders(wire_of({"F": [b"x"]}) + b"!!")
        assert status == "err" and "trailing" in message

    def test_agree_on_duplicate_folder(self, both_decoders):
        one = wire_of({"DUP": [b"x"]})
        body = one[9:]
        wire = one[:5] + struct.pack(">I", 2) + body + body
        status, _type, message = both_decoders(wire)
        assert status == "err" and "duplicate" in message

    def test_agree_on_non_utf8_name(self, both_decoders):
        folder = struct.pack(">H", 2) + b"\xff\xfe" + struct.pack(">I", 0)
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1) + folder)
        status, _type, message = both_decoders(wire)
        assert status == "err" and "UTF-8" in message

    def test_agree_on_empty_name(self, both_decoders):
        folder = struct.pack(">H", 0) + struct.pack(">I", 0)
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1) + folder)
        status, _type, message = both_decoders(wire)
        assert status == "err" and "empty folder name" in message

    def test_fast_decoder_accepts_bytearray_and_memoryview(self):
        wire = wire_of({"F": [b"data", b""], "G": []})
        expected = codec.decode(wire)
        assert codec.decode(bytearray(wire)) == expected
        assert codec.decode(memoryview(wire)) == expected

    def test_fast_decoder_accepts_window_into_larger_buffer(self):
        wire = wire_of({"F": [b"data"]})
        framed = b"HEAD" + wire + b"TAIL"
        window = memoryview(framed)[4:4 + len(wire)]
        assert codec.decode(window) == codec.decode(wire)


class TestEncodingCache:
    def setup_method(self):
        self._previous = codec.set_fast_paths(True)

    def teardown_method(self):
        codec.set_fast_paths(self._previous)

    def test_repeat_encode_returns_cached_object(self):
        briefcase = Briefcase({"F": [b"x", b"y"]})
        first = codec.encode(briefcase)
        assert codec.encode(briefcase) is first

    def test_encoded_size_served_from_encode_cache(self):
        briefcase = Briefcase({"F": [b"x" * 100]})
        wire = codec.encode(briefcase)
        assert codec.encoded_size(briefcase) == len(wire)

    def test_mutation_invalidates_cache(self):
        briefcase = Briefcase({"F": [b"x"]})
        stale = codec.encode(briefcase)
        briefcase.folder("F").push(b"y")
        fresh = codec.encode(briefcase)
        assert fresh != stale
        assert codec.decode(fresh) == briefcase

    def test_decode_seeds_cache_with_input_buffer(self):
        wire = wire_of({"F": [b"data"]})
        briefcase = codec.decode(wire)
        # Canonical format: re-encoding is the input buffer itself.
        assert codec.encode(briefcase) is wire

    def test_decode_of_view_does_not_seed_cache(self):
        wire = wire_of({"F": [b"data"]})
        briefcase = codec.decode(memoryview(wire))
        assert briefcase._wire_bytes is None
        assert codec.encode(briefcase) == wire

    def test_snapshot_inherits_valid_cache(self):
        briefcase = Briefcase({"F": [b"x"]})
        wire = codec.encode(briefcase)
        snapshot = briefcase.snapshot()
        assert codec.encode(snapshot) is wire

    def test_snapshot_cache_survives_source_mutation(self):
        briefcase = Briefcase({"F": [b"x"]})
        wire = codec.encode(briefcase)
        snapshot = briefcase.snapshot()
        briefcase.folder("F").push(b"mutate-source")
        assert codec.encode(snapshot) == wire
        assert codec.encode(briefcase) != wire

    def test_fast_paths_off_bypasses_cache(self):
        briefcase = Briefcase({"F": [b"x"]})
        previous = codec.set_fast_paths(False)
        try:
            first = codec.encode(briefcase)
            second = codec.encode(briefcase)
        finally:
            codec.set_fast_paths(previous)
        assert first == second
        assert first is not second
        assert briefcase._wire_bytes is None

    def test_check_briefcase_stores_size_for_reuse(self):
        from repro.core.limits import WireLimits

        briefcase = Briefcase({"F": [b"x" * 50]})
        size = codec.check_briefcase(briefcase, WireLimits())
        assert briefcase._wire_cached_size() == size
        assert codec.encoded_size(briefcase) == size


class TestCoalescing:
    def make(self, latency=0.05, bandwidth=1000.0):
        kernel = Kernel()
        network = Network(kernel)
        network.link("a", "b", latency=latency, bandwidth=bandwidth)
        return kernel, network

    def run_burst(self, kernel, network, sizes, src="a", dst="b"):
        durations = []

        def sender(n):
            seconds = yield from network.transfer(src, dst, n)
            durations.append(round(seconds, 9))

        for size in sizes:
            kernel.spawn(sender(size))
        kernel.run()
        return durations

    def test_off_by_default_and_semantics_preserving(self):
        kernel, network = self.make()
        durations = self.run_burst(kernel, network, [100, 100, 100])
        assert durations == [0.15, 0.15, 0.15]
        assert network.coalesced_messages == 0

    def test_same_instant_burst_pays_one_latency(self):
        kernel, network = self.make()
        network.configure_coalescing(True)
        durations = self.run_burst(kernel, network, [100, 100, 100])
        # One message pays latency + serialisation; followers only
        # serialise, so they complete first.
        assert durations == [0.1, 0.1, 0.15]
        assert network.coalesced_messages == 2
        stats = network.stats_between("a", "b")
        assert stats.busy_seconds == pytest.approx(0.05 + 3 * 0.1)
        assert stats.messages == 3
        assert stats.payload_bytes == 300

    def test_different_instants_do_not_coalesce(self):
        kernel, network = self.make()
        network.configure_coalescing(True)

        def staggered():
            yield from network.transfer("a", "b", 100)
            yield from network.transfer("a", "b", 100)
        kernel.run_process(staggered())
        assert network.coalesced_messages == 0

    def test_opposite_directions_do_not_coalesce(self):
        kernel, network = self.make()
        network.configure_coalescing(True)
        sent = []

        def one(src, dst):
            seconds = yield from network.transfer(src, dst, 100)
            sent.append(round(seconds, 9))

        kernel.spawn(one("a", "b"))
        kernel.spawn(one("b", "a"))
        kernel.run()
        assert sent == [0.15, 0.15]
        assert network.coalesced_messages == 0

    def test_loopback_never_coalesces(self):
        kernel, network = self.make()
        network.add_host("a")
        network.configure_coalescing(True)
        durations = self.run_burst(kernel, network, [100, 100],
                                   src="a", dst="a")
        assert durations[0] == durations[1]
        assert network.coalesced_messages == 0

    def test_disable_clears_marks(self):
        kernel, network = self.make()
        network.configure_coalescing(True)
        self.run_burst(kernel, network, [100, 100])
        assert network._coalesce_marks
        network.configure_coalescing(False)
        assert not network._coalesce_marks
        assert not network.coalescing_enabled

    def test_deterministic_across_identical_runs(self):
        def once():
            kernel, network = self.make()
            network.configure_coalescing(True)
            durations = self.run_burst(kernel, network,
                                       [100, 300, 50, 700, 200])
            stats = network.stats_between("a", "b")
            return (durations, network.coalesced_messages,
                    round(stats.busy_seconds, 9))
        assert once() == once()


class TestPerfHarness:
    def test_fast_paths_context_restores_state(self):
        from repro.bench import perf
        from repro.sim import eventloop

        codec_before = codec.fast_paths_enabled()
        kernel_before = eventloop.fast_dispatch_enabled()
        with perf.fast_paths(not codec_before):
            assert codec.fast_paths_enabled() is (not codec_before)
        assert codec.fast_paths_enabled() is codec_before
        assert eventloop.fast_dispatch_enabled() is kernel_before

    def test_baseline_kernel_replica_matches_real_kernel(self):
        from repro.bench import perf

        delays = perf._timer_delays(500, seed=7)
        replica = perf._BaselineKernel()
        for delay in delays:
            replica.timeout(delay)
        replica.run()
        kernel = Kernel()
        for delay in delays:
            kernel.timeout(delay)
        kernel.run()
        assert replica.processed_events == kernel.processed_events == 500
        assert replica.now == kernel.now

    def test_bench_pair_reports_medians_and_speedup(self):
        from repro.bench.perf import _bench_pair

        row = _bench_pair("demo", lambda: 0.2, lambda: 0.1,
                          repeats=3, workload={"n": 1})
        assert row["baseline_median_s"] == pytest.approx(0.2)
        assert row["fast_median_s"] == pytest.approx(0.1)
        assert row["speedup"] == pytest.approx(2.0)

    def test_coalescing_digest_is_stable(self):
        from repro.bench.perf import _coalescing_determinism_digest

        first = _coalescing_determinism_digest()
        assert len(first) == 64
        assert _coalescing_determinism_digest() == first

    def test_codec_workload_round_trips_identically_both_paths(self):
        from repro.bench import perf

        briefcase = perf.make_codec_workload(folders=6, elements=6,
                                             element_size=16)
        with perf.fast_paths(False):
            wire = codec.encode(briefcase)
            reference = codec.decode(wire)
        with perf.fast_paths(True):
            fast = codec.decode(wire)
            assert codec.encode(fast) == wire
        assert fast == reference == briefcase
