"""Tests for the fork-join parallel audit."""

import pytest

from repro.mining.parallel import run_parallel_mobile
from repro.mining.strategies import CrawlTask, run_mobile
from repro.system.bootstrap import build_campus_testbed


def campus(n=3):
    return build_campus_testbed(n_servers=n, pages_per_server=20,
                                bytes_per_server=40_000)


def tasks_for(testbed):
    return [CrawlTask.for_site(testbed.sites[name])
            for name in sorted(testbed.sites)]


class TestParallelAudit:
    def test_all_servers_report(self):
        testbed = campus()
        metrics = run_parallel_mobile(testbed, tasks_for(testbed))
        assert len(metrics.reports) == 3
        assert {r["site"] for r in metrics.reports} == set(testbed.sites)
        assert metrics.failures == []

    def test_findings_match_sequential(self):
        testbed = campus()
        parallel = run_parallel_mobile(testbed, tasks_for(testbed))
        testbed2 = campus()
        sequential = run_mobile(testbed2, tasks_for(testbed2))
        assert parallel.dead_links_found == sequential.dead_links_found
        assert parallel.pages_scanned == sequential.pages_scanned

    def test_parallel_faster_than_sequential(self):
        testbed = campus()
        parallel = run_parallel_mobile(testbed, tasks_for(testbed))
        testbed2 = campus()
        sequential = run_mobile(testbed2, tasks_for(testbed2))
        assert parallel.elapsed_seconds < sequential.elapsed_seconds

    def test_unreachable_server_reported_as_spawn_failure(self):
        testbed = campus()
        dead = testbed.servers[0].host.name
        for other in list(testbed.cluster.network.hosts):
            if other != dead:
                try:
                    testbed.cluster.network.set_link_up(dead, other, False)
                except Exception:
                    pass
        metrics = run_parallel_mobile(testbed, tasks_for(testbed))
        assert len(metrics.reports) == 2
        assert len(metrics.failures) == 1
        assert metrics.failures[0]["phase"] == "spawn"
        assert dead in metrics.failures[0]["host"]
