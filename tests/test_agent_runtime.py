"""Tests for mailboxes and the agent context (the TAX library)."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    CommTimeoutError,
    MigrationError,
    TaxError,
)
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.agent.mailbox import Mailbox
from repro.firewall.message import Message, SenderInfo
from repro.vm import loader


def make_message(kernel, text="x", target="someone"):
    briefcase = Briefcase({"BODY": [text]})
    return Message(target=AgentUri.parse(target), briefcase=briefcase,
                   sender=SenderInfo("tester", "host"))


class TestMailbox:
    def test_deliver_then_receive(self, kernel):
        mailbox = Mailbox(kernel)
        mailbox.deliver(make_message(kernel, "hello"))

        def proc():
            message = yield from mailbox.receive()
            return message.briefcase.get_text("BODY")
        assert kernel.run_process(proc()) == "hello"

    def test_receive_blocks_until_delivery(self, kernel):
        mailbox = Mailbox(kernel)

        def consumer():
            message = yield from mailbox.receive()
            return kernel.now, message.briefcase.get_text("BODY")

        def producer():
            yield kernel.timeout(5)
            mailbox.deliver(make_message(kernel, "late"))
        process = kernel.spawn(consumer())
        kernel.spawn(producer())
        kernel.run()
        assert process.value == (5, "late")

    def test_fifo_order(self, kernel):
        mailbox = Mailbox(kernel)
        for text in ("1", "2", "3"):
            mailbox.deliver(make_message(kernel, text))

        def proc():
            out = []
            for _ in range(3):
                message = yield from mailbox.receive()
                out.append(message.briefcase.get_text("BODY"))
            return out
        assert kernel.run_process(proc()) == ["1", "2", "3"]

    def test_match_skips_non_matching(self, kernel):
        mailbox = Mailbox(kernel)
        mailbox.deliver(make_message(kernel, "noise"))
        mailbox.deliver(make_message(kernel, "signal"))

        def proc():
            message = yield from mailbox.receive(
                match=lambda m: m.briefcase.get_text("BODY") == "signal")
            leftover = yield from mailbox.receive()
            return (message.briefcase.get_text("BODY"),
                    leftover.briefcase.get_text("BODY"))
        assert kernel.run_process(proc()) == ("signal", "noise")

    def test_timeout_raises(self, kernel):
        mailbox = Mailbox(kernel)

        def proc():
            with pytest.raises(CommTimeoutError):
                yield from mailbox.receive(timeout=3)
            return kernel.now
        assert kernel.run_process(proc()) == 3

    def test_late_message_queues_after_timeout(self, kernel):
        mailbox = Mailbox(kernel)

        def proc():
            try:
                yield from mailbox.receive(timeout=1)
            except CommTimeoutError:
                pass
            mailbox.deliver(make_message(kernel, "late"))
            message = yield from mailbox.receive()
            return message.briefcase.get_text("BODY")
        assert kernel.run_process(proc()) == "late"

    def test_capacity_drops_excess(self, kernel):
        mailbox = Mailbox(kernel, capacity=1)
        assert mailbox.deliver(make_message(kernel))
        assert not mailbox.deliver(make_message(kernel))
        assert mailbox.dropped_count == 1

    def test_waiting_receiver_bypasses_capacity(self, kernel):
        mailbox = Mailbox(kernel, capacity=0)

        def proc():
            message = yield from mailbox.receive()
            return message.briefcase.get_text("BODY")
        process = kernel.spawn(proc())
        kernel.run(max_events=1)
        assert mailbox.deliver(make_message(kernel, "direct"))
        kernel.run()
        assert process.value == "direct"

    def test_close_rejects_and_fails_waiters(self, kernel):
        mailbox = Mailbox(kernel)

        def proc():
            with pytest.raises(CommTimeoutError, match="closed"):
                yield from mailbox.receive()
            return "ok"
        process = kernel.spawn(proc())
        kernel.run(max_events=2)
        mailbox.close()
        kernel.run()
        assert process.value == "ok"
        assert not mailbox.deliver(make_message(kernel))

    def test_try_receive(self, kernel):
        mailbox = Mailbox(kernel)
        assert mailbox.try_receive() is None
        mailbox.deliver(make_message(kernel, "x"))
        assert mailbox.try_receive().briefcase.get_text("BODY") == "x"


def echo_agent(ctx, bc):
    """Replies to meets; stops on OP=stop."""
    while True:
        message = yield from ctx.recv()
        if message.briefcase.get_text(wellknown.OP) == "stop":
            return "stopped"
        response = Briefcase({"ECHO": [message.briefcase.get_text("BODY")
                                       or ""]})
        yield from ctx.reply(message, response)


def wanderer_agent(ctx, bc):
    """Tries to reach a nonexistent host, reports the failure home."""
    try:
        yield from ctx.go("tacoma://nowhere.test/vm_python")
    except MigrationError:
        bc.append("LOG", "unable to reach")
    yield from ctx.send(bc.get_text("HOME"), bc.snapshot())


def forker_agent(ctx, bc):
    """Spawns a clone on beta.test; both report home."""
    if bc.get_text("ROLE") == "clone":
        yield from ctx.send(bc.get_text("HOME"),
                            Briefcase({"FROM": [ctx.host_name]}))
        return "clone-done"
    bc.put("ROLE", "clone")
    clone_uri = yield from ctx.spawn_to("tacoma://beta.test/vm_python")
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"PARENT": [str(clone_uri)]}))
    return "parent-done"


class TestAgentContext:
    def launch_echo(self, cluster, host="alpha.test"):
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(echo_agent),
                               agent_name="echo")
        driver = cluster.node(host).driver()

        def scenario():
            reply = yield from driver.meet(
                cluster.vm_uri(host), briefcase, timeout=30)
            assert reply.get_text(wellknown.STATUS) == "ok"
            return reply.get_text("AGENT-URI")
        uri = cluster.run(scenario())
        return driver, uri

    def test_meet_round_trip(self, pair_cluster):
        driver, echo_uri = self.launch_echo(pair_cluster)

        def scenario():
            request = Briefcase({"BODY": ["ping"]})
            reply = yield from driver.meet(echo_uri, request, timeout=30)
            return reply.get_text("ECHO")
        assert pair_cluster.run(scenario()) == "ping"

    def test_meet_remote_agent(self, pair_cluster):
        driver_beta = pair_cluster.node("beta.test").driver(name="d2")
        _driver, echo_uri = self.launch_echo(pair_cluster, "alpha.test")

        def scenario():
            request = Briefcase({"BODY": ["cross-host"]})
            reply = yield from driver_beta.meet(echo_uri, request,
                                                timeout=30)
            return reply.get_text("ECHO")
        assert pair_cluster.run(scenario()) == "cross-host"

    def test_meet_timeout(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            with pytest.raises(CommTimeoutError):
                yield from driver.meet(AgentUri.parse("ghost"),
                                       Briefcase(), timeout=2)
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_send_returns_true_when_queued(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            ok = yield from driver.send(AgentUri.parse("not-yet-here"),
                                        Briefcase())
            return ok
        assert single_cluster.run(scenario()) is True

    def test_send_to_unknown_host_raises(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            from repro.core.errors import AgentNotFoundError
            with pytest.raises(AgentNotFoundError):
                yield from driver.send(
                    AgentUri.parse("tacoma://ghost.host/x"), Briefcase())
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_reply_without_reply_to_raises(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            with pytest.raises(TaxError, match="REPLY-TO"):
                yield from driver.reply(Briefcase(), Briefcase())
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_call_service_error_surfaces(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            with pytest.raises(TaxError, match="unknown op"):
                yield from driver.call_service("ag_fs", "no-such-op")
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_sleep_and_charge(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        from repro.sim.ledger import CostLedger
        ledger = CostLedger()
        ledger.add_cpu(2.5)

        def scenario():
            yield from driver.sleep(1.0)
            yield from driver.charge(ledger)
            yield from driver.charge(0.5)
            return single_cluster.kernel.now
        assert single_cluster.run(scenario()) == pytest.approx(4.0)

    def test_charge_rejects_negative(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            with pytest.raises(ValueError):
                yield from driver.charge(-1.0)
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_go_to_unreachable_host_is_migration_error(self, pair_cluster):
        driver = pair_cluster.node("alpha.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(wanderer_agent),
                               agent_name="wanderer")
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            yield from driver.meet(pair_cluster.vm_uri("alpha.test"),
                                   briefcase, timeout=30)
            message = yield from driver.recv(timeout=30)
            return message.briefcase.folder("LOG").texts()
        assert pair_cluster.run(scenario()) == ["unable to reach"]

    def test_spawn_to_clones_and_parent_continues(self, pair_cluster):
        driver = pair_cluster.node("alpha.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(forker_agent),
                               agent_name="forker")
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            yield from driver.meet(pair_cluster.vm_uri("alpha.test"),
                                   briefcase, timeout=30)
            seen = {}
            for _ in range(2):
                message = yield from driver.recv(timeout=30)
                for folder in message.briefcase:
                    seen[folder.name] = folder.texts()[0]
            return seen
        seen = pair_cluster.run(scenario())
        assert seen["FROM"] == "beta.test"
        assert "beta.test" in seen["PARENT"]

    def test_is_pending_reply_tracking(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        fake = Message(target=AgentUri.parse("x"),
                       briefcase=Briefcase({wellknown.MEET_TOKEN: ["zzz"]}),
                       sender=SenderInfo("s", "h"))
        assert not driver.is_pending_reply(fake)
