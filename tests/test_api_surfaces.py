"""Small-API coverage: constructors, properties, and helpers not hit by
the scenario tests."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.element import Element
from repro.core.folder import Folder
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.sim.eventloop import Kernel
from repro.web import urls


class TestElementConstructors:
    def test_from_text_and_from_json(self):
        assert Element.from_text("abc").as_text() == "abc"
        assert Element.from_json([1, "x"]).as_json() == [1, "x"]

    def test_of_bool_and_none_are_json(self):
        assert Element.of(True).as_json() is True
        assert Element.of(None).as_json() is None

    def test_bytearray_and_memoryview_coerced(self):
        assert Element(bytearray(b"ab")).data == b"ab"
        assert Element(memoryview(b"cd")).data == b"cd"

    def test_repr_truncates(self):
        text = repr(Element(b"x" * 100))
        assert "..." in text and "100 bytes" in text


class TestFolderBriefcaseMisc:
    def test_push_all_and_clear(self):
        folder = Folder("F")
        folder.push_all(["a", "b"])
        assert len(folder) == 2
        folder.clear()
        assert not folder

    def test_briefcase_repr_lists_folders(self):
        briefcase = Briefcase({"B": [], "A": []})
        assert "'A'" in repr(briefcase) and "'B'" in repr(briefcase)

    def test_system_folders_constant(self):
        assert wellknown.CODE in wellknown.SYSTEM_FOLDERS
        assert wellknown.RESULTS not in wellknown.SYSTEM_FOLDERS

    def test_merge_then_encode_stable(self):
        from repro.core import codec
        a = Briefcase({"X": ["1"]})
        a.merge(Briefcase({"Y": ["2"]}))
        wire = codec.encode(a)
        assert codec.decode(wire) == a


class TestKernelSurfaces:
    def test_timeout_value_only_after_fire(self):
        kernel = Kernel()
        timeout = kernel.timeout(1, value="v")
        assert not timeout.triggered
        kernel.run()
        assert timeout.triggered and timeout.value == "v"

    def test_event_exception_property(self):
        kernel = Kernel()
        event = kernel.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.exception is error

    def test_start_time_offset(self):
        kernel = Kernel(start_time=100.0)
        kernel.timeout(5)
        kernel.run()
        assert kernel.now == 105.0

    def test_spawn_on_dead_kernel_conceptually_allowed(self):
        # The kernel only refuses spawn after explicit death; running to
        # empty heap does not kill it.
        kernel = Kernel()
        kernel.run()

        def proc():
            yield kernel.timeout(1)
        assert kernel.run_process(proc()) is None


class TestUrlSurfaces:
    def test_with_path_normalizes(self):
        url = urls.parse("http://h/a").with_path("/x/../y")
        assert url.path == "/y"

    def test_site_and_str_with_default_port(self):
        url = urls.parse("http://h:80/p")
        assert url.site == "h" and str(url) == "http://h/p"

    def test_is_absolute(self):
        assert urls.is_absolute("http://x/")
        assert not urls.is_absolute("/relative")


class TestUriSurfaces:
    def test_with_principal(self):
        uri = AgentUri.parse("w:1").with_principal("alice")
        assert uri.principal == "alice"
        assert uri.with_principal(None).principal is None

    def test_local_of_local_is_identity(self):
        uri = AgentUri.parse("w:1")
        assert uri.local() == uri


class TestNodeSurfaces:
    def test_duplicate_vm_and_service_rejected(self, single_cluster):
        node = single_cluster.node("solo.test")
        from repro.vm.vm_python import VmPython
        from repro.services.ag_fs import AgFs
        with pytest.raises(ValueError):
            node.add_vm(VmPython(node))
        with pytest.raises(ValueError):
            node.add_service(AgFs(node))

    def test_boot_is_idempotent(self, single_cluster):
        node = single_cluster.node("solo.test")
        vms_before = dict(node.vms)
        assert node.boot() is node
        assert node.vms == vms_before

    def test_uri_for_and_find_registration(self, single_cluster):
        firewall = single_cluster.node("solo.test").firewall
        registration = firewall.find_registration(AgentUri.parse("ag_fs"),
                                                  "system")
        assert registration is not None
        uri = firewall.uri_for(registration)
        assert uri.host == "solo.test" and uri.port == 27017
        assert firewall.find_registration(AgentUri.parse("ghost")) is None

    def test_node_repr(self, single_cluster):
        text = repr(single_cluster.node("solo.test"))
        assert "solo.test" in text and "vm_python" in text
