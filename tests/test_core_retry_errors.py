"""Error taxonomy (transient vs permanent) and retry policy tests."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    AccessDeniedError,
    AgentNotFoundError,
    CommTimeoutError,
    PermanentError,
    TaxError,
    TransientError,
    VMError,
    is_transient,
)
from repro.core.retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    RetryPolicy,
    install_retry,
)
from repro.core import wellknown
from repro.sim.network import (
    HostDownError,
    LinkDownError,
    NoRouteError,
    TransferCorruptedError,
    TransferDroppedError,
)
from repro.sim.rng import RandomStream


class TestTaxonomy:
    def test_transient_classes(self):
        for cls in (TransientError, CommTimeoutError, LinkDownError,
                    HostDownError, TransferDroppedError,
                    TransferCorruptedError):
            assert is_transient(cls("x")), cls

    def test_permanent_classes(self):
        for cls in (PermanentError, AccessDeniedError, VMError,
                    NoRouteError):
            assert not is_transient(cls("x")), cls

    def test_unknown_defaults_to_permanent(self):
        assert not is_transient(TaxError("unclassified"))
        assert not is_transient(ValueError("not even a TaxError"))
        assert not is_transient(AgentNotFoundError("ambiguous"))

    def test_cause_chain_is_walked(self):
        try:
            try:
                raise LinkDownError("flap")
            except LinkDownError as inner:
                raise TaxError("wrapped") from inner
        except TaxError as outer:
            assert is_transient(outer)

    def test_context_chain_is_walked(self):
        try:
            try:
                raise HostDownError("down")
            except HostDownError:
                raise TaxError("implicit context")
        except TaxError as outer:
            assert is_transient(outer)

    def test_first_verdict_wins(self):
        # A permanent error wrapping a transient one is still permanent.
        try:
            try:
                raise LinkDownError("flap")
            except LinkDownError as inner:
                raise AccessDeniedError("denied") from inner
        except AccessDeniedError as outer:
            assert not is_transient(outer)

    def test_cycle_safe(self):
        a = TaxError("a")
        b = TaxError("b")
        a.__cause__ = b
        b.__cause__ = a
        assert not is_transient(a)


class TestRetryPolicy:
    def test_defaults(self):
        policy = DEFAULT_RETRY_POLICY
        assert policy.retries == policy.max_attempts - 1
        assert NO_RETRY.retries == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25)
        a = [policy.delay(i, RandomStream(9, name="j")) for i in range(8)]
        b = [policy.delay(i, RandomStream(9, name="j")) for i in range(8)]
        assert a == b  # same seed, same schedule
        for i, delay in enumerate(a):
            nominal = policy.delay(i)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_config_round_trip(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.3,
                             multiplier=3.0, max_delay=9.0, jitter=0.1)
        assert RetryPolicy.from_config(policy.to_config()) == policy

    def test_install_retry_travels_in_briefcase(self):
        briefcase = Briefcase()
        install_retry(briefcase, RetryPolicy(max_attempts=2), seed=42)
        config = briefcase.get_json(wellknown.RETRY)
        assert config["max_attempts"] == 2
        assert config["seed"] == 42
        assert RetryPolicy.from_config(config).max_attempts == 2
