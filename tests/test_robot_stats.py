"""Tests for the Webbot's page age and content-type statistics."""

import pytest

from repro.robot.webbot import Webbot, WebbotConfig
from repro.sim.host import SimHost
from repro.sim.ledger import CostLedger
from repro.web.client import SimHttpClient
from repro.web.server import WebDeployment, WebServer
from repro.web.site import SiteSpec, generate_site


@pytest.fixture
def asset_site():
    return generate_site(SiteSpec(
        host="www.a.test", n_pages=30, total_bytes=90_000,
        asset_fraction=0.3, max_age_days=500.0, seed=5))


@pytest.fixture
def crawl_result(kernel, network, asset_site):
    host = SimHost(kernel, network, asset_site.host)
    deployment = WebDeployment([WebServer(host, asset_site)])
    http = SimHttpClient(host, network, deployment, CostLedger())
    config = WebbotConfig(asset_site.root_url,
                          prefix=f"http://{asset_site.host}/", max_depth=20)
    return Webbot(config, http).run(), asset_site


class TestAssetGeneration:
    def test_assets_created_with_types(self, asset_site):
        types = {page.content_type for page in asset_site.pages.values()}
        assert "image/gif" in types and "text/css" in types
        assert "text/html" in types

    def test_assets_have_no_links(self, asset_site):
        for page in asset_site.pages.values():
            if not page.is_html:
                assert page.links == []

    def test_ages_bounded_by_spec(self, asset_site):
        for page in asset_site.pages.values():
            assert 0.0 <= page.age_days <= 500.0


class TestWebbotStatistics:
    def test_content_types_counted(self, crawl_result):
        result, _site = crawl_result
        types = result["content_types"]
        assert types.get("text/html", 0) > 0
        assert types.get("image/gif", 0) + types.get("text/css", 0) > 0
        assert sum(types.values()) == result["pages_scanned"]

    def test_assets_not_parsed_for_links(self, crawl_result):
        result, site = crawl_result
        # Every invalid URL must originate from an HTML referrer.
        asset_paths = {p for p, page in site.pages.items()
                       if not page.is_html}
        for record in result["invalid"]:
            referrer_path = record["referrer"].replace(
                f"http://{site.host}", "")
            assert referrer_path not in asset_paths

    def test_age_statistics_within_spec_bounds(self, crawl_result):
        result, _site = crawl_result
        age = result["age_days"]
        assert age is not None
        assert 0.0 <= age["min"] <= age["mean"] <= age["max"] <= 500.0

    def test_age_none_when_server_sends_no_ages(self):
        class Resp:
            status = 200
            ok = True
            body = "<html></html>"
            location = None
            content_type = "text/html"
            age_days = None

        class Http:
            def get(self, url):
                return Resp()
        result = Webbot(WebbotConfig("http://x/", honor_robots=False),
                        Http()).run()
        assert result["age_days"] is None
