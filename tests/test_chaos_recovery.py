"""End-to-end resilience: host crash/restart, dead letters, the chaos
engine, heartbeat monitoring, and the rear-guard recovery scenario."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.chaos.engine import ChaosEngine
from repro.chaos.scenario import (
    WORKER_HOSTS,
    named_plan,
    render_chaos_json,
    run_chaos,
)
from repro.obs.telemetry import Telemetry
from repro.sim.faults import FaultPlan
from repro.sim.network import LinkDownError
from repro.system.cluster import TaxCluster
from repro.vm import loader
from repro.wrappers.monitor import EVENT_FOLDER, MonitorWrapper
from repro.wrappers.stack import WrapperSpec, install_wrappers


def metered_cluster(*hosts):
    cluster = TaxCluster(telemetry=Telemetry(enabled=True))
    for host in hosts:
        cluster.add_node(host)
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            cluster.network.link(a, b)
    return cluster


def late_agent(ctx, bc):
    """Receives one message and forwards its BODY home."""
    message = yield from ctx.recv(timeout=60)
    yield from ctx.send(bc.get_text("HOME"), Briefcase(
        {"GOT": [message.briefcase.get_text("BODY") or ""]}))
    return "done"


def sleeper_agent(ctx, bc):
    yield from ctx.sleep(2.2)
    return "done"


class TestCrashAndDeadLetters:
    def test_crash_kills_registrations_and_dead_letters_queue(
            self, pair_cluster):
        beta = pair_cluster.node("beta.test")
        driver = pair_cluster.node("alpha.test").driver()
        target = AgentUri.parse("tacoma://beta.test//nobody")

        def scenario():
            yield from driver.send(target, Briefcase({"BODY": ["hi"]}),
                                   queue_timeout=120)
            return len(beta.firewall.pending)
        assert pair_cluster.run(scenario()) == 1

        killed = beta.crash()
        assert killed > 0  # VMs + services at minimum
        assert not beta.alive
        assert len(beta.firewall.pending) == 0
        records = beta.firewall.pending.dead_letters
        assert len(records) == 1
        assert records[0].reason == "host-crash"
        # parked targets are host-relative once inside the firewall
        assert records[0].message.target.name == "nobody"
        # crashing twice is a no-op
        assert beta.crash() == 0

    def test_expired_message_surfaces_in_admin_stat(self):
        cluster = metered_cluster("solo.test")
        driver = cluster.node("solo.test").driver()

        def scenario():
            yield from driver.send(AgentUri.parse("not-here"),
                                   Briefcase({"BODY": ["x"]}),
                                   queue_timeout=1.0)
            yield cluster.kernel.timeout(2.0)
            response = yield from driver.call_service("firewall", "stat")
            return response.get_json(wellknown.RESULTS)
        stats = cluster.run(scenario())
        assert stats["queued_now"] == 0
        dead = stats["dead_letters"]
        assert len(dead) == 1
        assert dead[0]["reason"] == "expired"
        assert dead[0]["target"] == "not-here"
        assert cluster.telemetry.metrics.value(
            "fw.dead_letters", host="solo.test", reason="expired") == 1

    def test_restart_retransmits_to_reregistered_agent(self, pair_cluster):
        beta = pair_cluster.node("beta.test")
        alpha_driver = pair_cluster.node("alpha.test").driver()
        target = AgentUri.parse("tacoma://beta.test//late")

        def park():
            yield from alpha_driver.send(target,
                                         Briefcase({"BODY": ["survivor"]}),
                                         queue_timeout=300)
        pair_cluster.run(park())

        beta.crash()
        assert len(beta.firewall.pending.dead_letters) == 1
        beta.restart()
        assert beta.alive
        # the dead letter was taken for retransmission
        assert len(beta.firewall.pending.dead_letters) == 0

        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(late_agent),
                               agent_name="late")
        briefcase.put("HOME", str(alpha_driver.uri))
        beta_driver = beta.driver(name="d2")

        def scenario():
            reply = yield from beta_driver.meet(
                pair_cluster.vm_uri("beta.test"), briefcase, timeout=30)
            assert reply.get_text(wellknown.STATUS) == "ok"
            message = yield from alpha_driver.recv(timeout=60)
            return message.briefcase.get_text("GOT")
        assert pair_cluster.run(scenario()) == "survivor"


class TestChaosEngine:
    def test_plan_events_fire_at_their_times(self):
        cluster = metered_cluster("a.test", "b.test")
        plan = FaultPlan(name="timed")
        plan.flap(1.0, "a.test", "b.test", 1.0)
        plan.crash(3.0, "b.test", outage=1.0)
        engine = ChaosEngine(cluster, plan, seed=1)
        engine.start()
        network = cluster.network
        node_b = cluster.node("b.test")
        observed = {}

        def probe():
            yield cluster.kernel.timeout(1.5)
            try:
                network.charge("a.test", "b.test", 10)
                observed["t1.5"] = "up"
            except LinkDownError:
                observed["t1.5"] = "down"
            yield cluster.kernel.timeout(1.0)   # t=2.5
            network.charge("a.test", "b.test", 10)
            observed["t2.5"] = "up"
            yield cluster.kernel.timeout(1.0)   # t=3.5
            observed["t3.5"] = node_b.alive
            yield cluster.kernel.timeout(1.0)   # t=4.5
            observed["t4.5"] = node_b.alive
        cluster.run(probe())
        assert observed == {"t1.5": "down", "t2.5": "up",
                            "t3.5": False, "t4.5": True}
        assert [a["kind"] for a in engine.applied] == [
            "link-down", "link-up", "crash", "restart"]
        metric = cluster.telemetry.metrics.get("faults.injected")
        assert sum(s["value"] for s in metric.samples()) == 4

    def test_start_is_idempotent(self):
        cluster = metered_cluster("a.test", "b.test")
        engine = ChaosEngine(cluster, FaultPlan(name="empty"), seed=1)
        engine.start()
        engine.start()
        cluster.run(_tick(cluster))
        assert engine.applied == []


def _tick(cluster):
    yield cluster.kernel.timeout(0.1)


class TestHeartbeatMonitoring:
    def test_heartbeats_flow_until_finished(self):
        cluster = metered_cluster("solo.test")
        driver = cluster.node("solo.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(sleeper_agent),
                               agent_name="sleeper")
        install_wrappers(briefcase, [WrapperSpec.by_ref(MonitorWrapper, {
            "monitor": str(driver.uri), "tag": "hb-test",
            "heartbeat": 0.5})])

        def scenario():
            yield from driver.meet(cluster.vm_uri("solo.test"),
                                   briefcase, timeout=30)
            events = []
            while True:
                message = yield from driver.recv(timeout=30)
                body = message.briefcase.get_json(EVENT_FOLDER)
                events.append(body["event"])
                if body["event"] == "finished":
                    return events
        events = cluster.run(scenario())
        assert events[0] == "arrived"
        assert events[-1] == "finished"
        # 2.2 s of life at a 0.5 s cadence: 4 heartbeats
        assert events.count("heartbeat") == 4


class TestChaosScenario:
    def test_same_seed_same_json(self):
        one = render_chaos_json(run_chaos(seed=11, plan="mid-crash"))
        two = render_chaos_json(run_chaos(seed=11, plan="mid-crash"))
        assert one == two

    def test_mid_crash_recovers_and_reports_unreachable(self):
        doc = run_chaos(seed=7, plan="mid-crash", recovery=True)
        agent = doc["agent"]
        assert not agent["timed_out"]
        assert agent["sites_visited"] == agent["sites_planned"] - 1
        assert agent["unreachable_hosts"] == [WORKER_HOSTS[1]]
        assert len(doc["rear_guard"]["relaunches"]) == 1
        assert doc["stats"]["recovery_relaunches"] == 1
        assert doc["stats"]["host_crashes"] == 1
        # the dead itinerary stop is reported, not silently dropped
        assert any(f.get("phase") == "go" for f in agent["failures"])

    def test_crash_restart_completes_everything(self):
        doc = run_chaos(seed=7, plan="crash-restart", recovery=True)
        agent = doc["agent"]
        assert agent["completed"] and not agent["timed_out"]
        assert agent["unreachable_hosts"] == []
        assert doc["stats"]["transport_retries"] >= 1

    def test_without_recovery_the_crash_is_fatal(self):
        doc = run_chaos(seed=7, plan="mid-crash", recovery=False,
                        recv_timeout=30.0)
        agent = doc["agent"]
        assert agent["timed_out"]
        assert agent["sites_visited"] == 0
        assert doc["stats"]["recovery_relaunches"] == 0
        assert doc["stats"]["checkpoints"] == 0

    def test_plan_names_cover_cli_choices(self):
        workers = list(WORKER_HOSTS)
        for name in ("none", "mid-crash", "crash-restart", "flaky-links"):
            plan = named_plan(name, workers)
            assert plan.name == name
        with pytest.raises(ValueError):
            named_plan("volcano", workers)
