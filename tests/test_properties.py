"""Property-based tests (hypothesis) for the core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.element import Element
from repro.core.folder import Folder
from repro.core.uri import AgentUri
from repro.robot.webbot import extract_links, join_url
from repro.sim.rng import RandomStream
from repro.web import urls
from repro.web.page import render_page

folder_names = st.text(
    alphabet=string.ascii_letters + string.digits + "-_.",
    min_size=1, max_size=24)

briefcases = st.dictionaries(
    folder_names,
    st.lists(st.binary(max_size=200), max_size=8),
    max_size=8,
).map(Briefcase.from_dict)


class TestCodecProperties:
    @given(briefcases)
    def test_decode_encode_is_identity(self, briefcase):
        assert codec.decode(codec.encode(briefcase)) == briefcase

    @given(briefcases)
    def test_encoded_size_is_exact(self, briefcase):
        assert codec.encoded_size(briefcase) == len(codec.encode(briefcase))

    @given(briefcases)
    def test_reencode_is_byte_stable(self, briefcase):
        wire = codec.encode(briefcase)
        assert codec.encode(codec.decode(wire)) == wire

    @given(briefcases, briefcases)
    def test_snapshot_equality_and_isolation(self, a, b):
        snapshot = a.snapshot()
        assert snapshot == a
        a.merge(b)
        a.folder("EXTRA").push(b"mutation")
        # The snapshot must be unaffected by any mutation of the source.
        assert codec.encode(snapshot) == codec.encode(a.snapshot()) or \
            snapshot != a  # either unchanged merge (b empty) or diverged

    @given(briefcases)
    def test_payload_bytes_never_exceeds_wire_size(self, briefcase):
        assert briefcase.payload_bytes() <= codec.encoded_size(briefcase)


class TestFolderProperties:
    @given(st.lists(st.binary(max_size=64)))
    def test_push_preserves_order(self, blobs):
        folder = Folder("F")
        for blob in blobs:
            folder.push(blob)
        assert [e.data for e in folder] == blobs

    @given(st.lists(st.binary(max_size=64), min_size=1))
    def test_pop_first_drains_fifo(self, blobs):
        folder = Folder("F", blobs)
        drained = []
        while True:
            element = folder.pop_first()
            if element is None:
                break
            drained.append(element.data)
        assert drained == blobs

    @given(st.lists(st.text(max_size=32)))
    def test_texts_round_trip(self, texts):
        assert Folder("F", texts).texts() == texts


agent_names = st.text(alphabet=string.ascii_letters + string.digits,
                      min_size=1, max_size=12)
instances = st.integers(min_value=0, max_value=2**48).map(
    lambda n: format(n, "x"))
hostnames = st.from_regex(r"[a-z0-9]([a-z0-9.-]{0,20}[a-z0-9])?",
                          fullmatch=True)


class TestUriProperties:
    @given(
        host=st.one_of(st.none(), hostnames),
        port=st.one_of(st.none(), st.integers(min_value=1, max_value=65535)),
        principal=st.one_of(st.none(), agent_names),
        name=st.one_of(st.none(), agent_names),
        instance=st.one_of(st.none(), instances),
    )
    @settings(max_examples=200)
    def test_format_parse_round_trip(self, host, port, principal, name,
                                     instance):
        if name is None and instance is None:
            return  # not addressable; constructor rejects
        if port is not None and host is None:
            port = None
        uri = AgentUri(host=host, port=port, principal=principal,
                       name=name, instance=instance)
        assert AgentUri.parse(str(uri)) == uri

    @given(name=agent_names, instance=instances, principal=agent_names)
    def test_full_uri_matches_itself(self, name, instance, principal):
        uri = AgentUri(name=name, instance=instance, principal=principal)
        assert uri.matches_agent(name, instance, principal)


class TestUrlProperties:
    @given(st.lists(st.from_regex(r"/[a-z0-9/._-]{0,30}", fullmatch=True),
                    max_size=10))
    def test_rendered_links_are_extracted_exactly(self, hrefs):
        page = render_page("/p.html", "T", hrefs,
                           [f"a{i}" for i in range(len(hrefs))], 2000)
        assert extract_links(page.html) == hrefs

    @given(st.from_regex(r"/[a-zA-Z0-9_./-]{0,40}", fullmatch=True))
    def test_normalize_path_is_idempotent(self, path):
        once = urls.normalize_path(path)
        assert urls.normalize_path(once) == once

    @given(st.from_regex(r"[a-z0-9._/-]{0,30}", fullmatch=True))
    def test_join_url_agrees_with_web_urls(self, reference):
        """Webbot's private URL code and the substrate's module must agree
        (they are independent implementations of the same rules)."""
        base = "http://host.example/dir/page.html"
        robot_view = join_url(base, reference)
        substrate_view = urls.join(urls.parse(base), reference)
        if reference.strip() == "":
            assert robot_view is None or robot_view == str(substrate_view)
        else:
            assert robot_view == str(substrate_view)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=10))
    def test_fork_determinism(self, seed, name):
        a = RandomStream(seed).fork(name).random()
        b = RandomStream(seed).fork(name).random()
        assert a == b

    @given(st.integers(min_value=1, max_value=100))
    def test_randint_bounds(self, high):
        stream = RandomStream(0)
        for _ in range(20):
            assert 0 <= stream.randint(0, high) <= high
