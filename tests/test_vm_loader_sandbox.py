"""Unit tests for code shipping and the sandbox."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import (
    SandboxViolation,
    TrustError,
    UnsupportedPayloadError,
    VMError,
)
from repro.firewall.auth import build_shared_trust
from repro.vm import loader
from repro.vm.sandbox import Sandbox, TrustedSandbox, run_limited


def shippable(x, y):
    return x + y


def with_global(x):
    return x * FACTOR  # noqa: F821 - provided via shipped globals


class TestPackRef:
    def test_round_trip(self):
        payload = loader.pack_ref(shippable)
        func = loader.materialize_ref(payload)
        assert func(2, 3) == 5

    def test_string_path(self):
        payload = loader.pack_ref(
            "tests.test_vm_loader_sandbox:shippable")
        assert loader.materialize_ref(payload)(1, 1) == 2

    def test_rejects_local_function(self):
        def local():
            pass
        with pytest.raises(VMError):
            loader.pack_ref(local)

    def test_rejects_pathless_string(self):
        with pytest.raises(VMError):
            loader.pack_ref("no-colon-here")

    def test_missing_module(self):
        payload = loader.Payload(
            loader.KIND_REF, b'{"path": "no.such.module:f"}')
        with pytest.raises(UnsupportedPayloadError, match="not installed"):
            loader.materialize_ref(payload)

    def test_missing_attribute(self):
        payload = loader.Payload(
            loader.KIND_REF, b'{"path": "json:nope"}')
        with pytest.raises(UnsupportedPayloadError, match="not found"):
            loader.materialize_ref(payload)


class TestPackFunction:
    def test_by_value_round_trip(self):
        payload = loader.pack_function(shippable)
        func = loader.materialize_marshal(payload)
        assert func(4, 5) == 9

    def test_shipped_globals(self):
        payload = loader.pack_function(with_global, {"FACTOR": 10})
        func = loader.materialize_marshal(payload)
        assert func(3) == 30

    def test_closure_rejected(self):
        captured = 42

        def closure():
            return captured
        with pytest.raises(VMError, match="closure"):
            loader.pack_function(closure)

    def test_non_function_rejected(self):
        with pytest.raises(VMError):
            loader.pack_function("not a function")

    def test_shipped_code_is_sandboxed(self):
        def naughty():
            return open("/etc/passwd")  # noqa: SIM115
        payload = loader.pack_function(naughty)
        func = loader.materialize_marshal(payload)
        with pytest.raises(SandboxViolation):
            func()

    def test_corrupt_marshal_rejected(self):
        payload = loader.Payload(
            loader.KIND_MARSHAL,
            b'{"style": "func", "entry": "f", "code_b64": "AAAA",'
            b' "globals": {}}')
        with pytest.raises(UnsupportedPayloadError):
            loader.materialize_marshal(payload)

    def test_malformed_json_rejected(self):
        payload = loader.Payload(loader.KIND_MARSHAL, b"not-json")
        with pytest.raises(UnsupportedPayloadError):
            loader.materialize_marshal(payload)


SOURCE = """
GREETING = "hi"

def entry(name):
    return GREETING + " " + name
"""


class TestPackSource:
    def test_source_round_trip(self):
        payload = loader.pack_source(SOURCE, "entry")
        func = loader.materialize_source(payload)
        assert func("there") == "hi there"

    def test_compile_source_produces_marshal(self):
        payload = loader.pack_source(SOURCE, "entry")
        compiled = loader.compile_source(payload)
        assert compiled.kind == loader.KIND_MARSHAL
        func = loader.materialize_marshal(compiled)
        assert func("again") == "hi again"

    def test_syntax_error_reported(self):
        payload = loader.pack_source("def broken(:", "broken")
        with pytest.raises(VMError, match="compilation failed"):
            loader.compile_source(payload)

    def test_missing_entry_rejected(self):
        payload = loader.pack_source(SOURCE, "ghost_entry")
        compiled = loader.compile_source(payload)
        with pytest.raises(UnsupportedPayloadError, match="ghost_entry"):
            loader.materialize_marshal(compiled)

    def test_pack_module_source(self):
        from repro.robot import webbot
        payload = loader.pack_module_source(webbot, "run_webbot")
        func = loader.materialize_source(payload, TrustedSandbox())
        assert callable(func)

    def test_pack_function_source(self):
        payload = loader.pack_function_source(shippable)
        func = loader.materialize_source(payload)
        assert func(1, 2) == 3

    def test_parse_source_fields(self):
        payload = loader.pack_source(SOURCE, "entry", origin="unit-test")
        source, entry, origin = loader.parse_source(payload)
        assert entry == "entry" and origin == "unit-test"
        assert "GREETING" in source


class TestBinaryList:
    def make(self, archs=("x86-unix", "sparc-solaris"), trusted=True):
        keychain, store = build_shared_trust({"vendor": trusted})
        inner = loader.compile_source(loader.pack_source(SOURCE, "entry"))
        payload = loader.pack_binary_list(
            [(arch, inner) for arch in archs], keychain, "vendor")
        return payload, store

    def test_select_matching_arch(self):
        payload, _store = self.make()
        binary = loader.select_binary(payload, "sparc-solaris")
        assert binary.arch == "sparc-solaris"

    def test_missing_arch_rejected(self):
        payload, _store = self.make()
        with pytest.raises(UnsupportedPayloadError, match="no binary"):
            loader.select_binary(payload, "alpha-vms")

    def test_verification_of_trusted_signer(self):
        payload, store = self.make()
        binary = loader.select_binary(payload, "x86-unix")
        assert loader.verify_binary(binary, store) == "vendor"

    def test_untrusted_signer_rejected(self):
        payload, store = self.make(trusted=False)
        binary = loader.select_binary(payload, "x86-unix")
        with pytest.raises(TrustError, match="not trusted"):
            loader.verify_binary(binary, store)

    def test_tampered_blob_rejected(self):
        import base64
        import json
        payload, store = self.make()
        data = json.loads(payload.blob)
        blob = base64.b64decode(data["binaries"][0]["blob_b64"])
        data["binaries"][0]["blob_b64"] = \
            base64.b64encode(blob + b"x").decode()
        tampered = loader.Payload(loader.KIND_BINARY,
                                  json.dumps(data).encode())
        binary = loader.select_binary(tampered, "x86-unix")
        with pytest.raises(TrustError):
            loader.verify_binary(binary, store)

    def test_empty_list_rejected(self):
        keychain, _ = build_shared_trust({"v": True})
        with pytest.raises(VMError):
            loader.pack_binary_list([], keychain, "v")


class TestBriefcaseIntegration:
    def test_install_and_read(self):
        briefcase = Briefcase()
        payload = loader.pack_source(SOURCE, "entry")
        loader.install_payload(briefcase, payload, agent_name="bot")
        read = loader.read_payload(briefcase)
        assert read == payload
        assert briefcase.get_text("AGENT-NAME") == "bot"

    def test_read_missing_payload(self):
        with pytest.raises(UnsupportedPayloadError):
            loader.read_payload(Briefcase())

    def test_unknown_kind_rejected(self):
        with pytest.raises(UnsupportedPayloadError):
            loader.Payload("jar", b"x")


class TestSandbox:
    def test_denied_builtins(self):
        sandbox = Sandbox()
        namespace = sandbox.make_globals()
        for name in ("open", "eval", "exec", "compile"):
            with pytest.raises(SandboxViolation):
                namespace["__builtins__"][name]()

    def test_whitelisted_import_works(self):
        sandbox = Sandbox()
        namespace = sandbox.exec_source("import json\nx = json.dumps([1])")
        assert namespace["x"] == "[1]"

    def test_non_whitelisted_import_denied(self):
        sandbox = Sandbox()
        with pytest.raises(SandboxViolation, match="denied"):
            sandbox.exec_source("import os")

    def test_relative_import_denied(self):
        sandbox = Sandbox()
        import_fn = sandbox.make_builtins()["__import__"]
        with pytest.raises(SandboxViolation):
            import_fn("x", level=1)

    def test_class_definitions_work(self):
        sandbox = Sandbox()
        namespace = sandbox.exec_source(
            "class A:\n"
            "    def f(self):\n"
            "        return 7\n"
            "value = A().f()")
        assert namespace["value"] == 7

    def test_syntax_error_wrapped(self):
        with pytest.raises(SandboxViolation, match="does not compile"):
            Sandbox().exec_source("def (")

    def test_extra_globals_injected(self):
        sandbox = Sandbox(extra_globals={"INJECTED": 5})
        namespace = sandbox.exec_source("y = INJECTED * 2")
        assert namespace["y"] == 10

    def test_trusted_sandbox_has_real_builtins(self):
        namespace = TrustedSandbox().make_globals()
        assert namespace["__builtins__"]["open"] is open

    def test_run_limited_within_budget(self):
        assert run_limited(lambda: sum(range(10)), max_lines=10_000) == 45

    def test_run_limited_exhausts(self):
        def spin():
            total = 0
            for i in range(10_000_000):
                total += i
            return total
        with pytest.raises(SandboxViolation, match="budget"):
            run_limited(spin, max_lines=100)
