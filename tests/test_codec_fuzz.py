"""Seeded round-trip fuzzing of the hardened briefcase codec.

The acceptance bar for the wire-hardening work: **no** decoder input may
crash a firewall or VM with an untyped exception.  Every buffer — valid,
bit-flipped, truncated, extended, or pure noise — must either decode to
a briefcase or raise a :class:`~repro.core.errors.CodecError` subclass.
``IndexError``/``KeyError``/``struct.error``/``UnicodeDecodeError``/
``MemoryError`` escaping ``decode`` is a bug, full stop.

Everything is seeded through :class:`~repro.sim.rng.RandomStream`, so a
failing case reproduces by seed.
"""

import struct

import pytest

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import CodecError, MalformedBriefcaseError
from repro.core.limits import WireLimits
from repro.sim.rng import RandomStream

#: Exceptions the decoder must never leak.
FORBIDDEN = (IndexError, KeyError, struct.error, UnicodeDecodeError,
             MemoryError, OverflowError)


def random_briefcase(rng: RandomStream) -> Briefcase:
    briefcase = Briefcase()
    for f in range(rng.randint(0, 5)):
        folder = briefcase.folder(f"F{f}-{rng.randint(0, 999)}")
        for _ in range(rng.randint(0, 4)):
            folder.push(bytes(rng.randint(0, 255)
                              for _ in range(rng.randint(0, 64))))
    return briefcase


def try_decode(data: bytes):
    """Decode; typed codec errors are fine, anything else is the bug."""
    try:
        return codec.decode(data)
    except CodecError:
        return None
    except FORBIDDEN as exc:  # pragma: no cover - the failure we hunt
        pytest.fail(f"decode leaked {type(exc).__name__}: {exc}")


class TestMutationFuzz:
    def test_single_byte_flips_never_crash(self):
        rng = RandomStream(42, name="fuzz/flip")
        for round_no in range(40):
            original = random_briefcase(rng)
            wire = bytearray(codec.encode(original))
            if not wire:
                continue
            pos = rng.randint(0, len(wire) - 1)
            wire[pos] ^= 1 << rng.randint(0, 7)
            decoded = try_decode(bytes(wire))
            if decoded is not None:
                # A surviving mutation must still re-encode cleanly.
                codec.encode(decoded)

    def test_truncations_never_crash(self):
        rng = RandomStream(43, name="fuzz/truncate")
        original = random_briefcase(rng)
        wire = codec.encode(original)
        for cut in range(len(wire)):
            decoded = try_decode(wire[:cut])
            # A strict prefix can never be a complete briefcase.
            assert decoded is None or cut == len(wire)

    def test_trailing_garbage_rejected(self):
        rng = RandomStream(44, name="fuzz/trailing")
        wire = codec.encode(random_briefcase(rng))
        with pytest.raises(MalformedBriefcaseError, match="trailing"):
            codec.decode(wire + b"\x00")

    def test_random_noise_never_crashes(self):
        rng = RandomStream(45, name="fuzz/noise")
        for _ in range(60):
            blob = bytes(rng.randint(0, 255)
                         for _ in range(rng.randint(0, 128)))
            try_decode(blob)

    def test_noise_behind_valid_magic_never_crashes(self):
        rng = RandomStream(46, name="fuzz/magic")
        for _ in range(60):
            blob = codec.MAGIC + bytes([codec.VERSION]) + bytes(
                rng.randint(0, 255) for _ in range(rng.randint(0, 96)))
            try_decode(blob)

    def test_clean_round_trip_still_holds(self):
        rng = RandomStream(47, name="fuzz/clean")
        for _ in range(25):
            original = random_briefcase(rng)
            assert codec.decode(codec.encode(original)) == original


class TestHostileAllocations:
    """Length fields promising absurd allocations must be rejected
    *before* any allocation happens (the anti-billion-laughs check)."""

    def test_huge_folder_count(self):
        blob = codec.MAGIC + bytes([codec.VERSION]) + \
            (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(MalformedBriefcaseError, match="folder count"):
            codec.decode(blob)

    def test_huge_element_count(self):
        briefcase = Briefcase()
        briefcase.folder("F").push(b"x")
        wire = bytearray(codec.encode(briefcase))
        # Element count sits right after the 1-char folder name.
        offset = len(codec.MAGIC) + 1 + 4 + 2 + 1
        wire[offset:offset + 4] = (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(MalformedBriefcaseError, match="element count"):
            codec.decode(bytes(wire))

    def test_element_size_beyond_buffer(self):
        briefcase = Briefcase()
        briefcase.folder("F").push(b"x")
        wire = bytearray(codec.encode(briefcase))
        wire[-5:-1] = (10_000).to_bytes(4, "big")  # size prefix of "x"
        with pytest.raises(MalformedBriefcaseError, match="truncated"):
            codec.decode(bytes(wire))

    def test_tight_limits_cap_good_input(self):
        briefcase = Briefcase()
        briefcase.folder("F").push(b"y" * 500)
        wire = codec.encode(briefcase)
        with pytest.raises(CodecError):
            codec.decode(wire, limits=WireLimits(max_encoded_bytes=100))
        # And None disables the cap again.
        assert codec.decode(wire, limits=None) == briefcase


class TestWireDeliveryFaults:
    """The partition fault kinds, replayed at the rawest layer: frames
    handed straight to :meth:`Firewall.receive_wire` duplicated,
    reordered, and bit-flipped.  Nothing may crash; duplicates must be
    suppressed, reorderings accepted, and corruption quarantined."""

    def _sink(self, cluster):
        firewall = cluster.node("solo.test").firewall
        from repro.core.uri import AgentUri
        registration = firewall.register_agent(
            name="sink", principal="system", vm_name="vm_python",
            deliver_fn=lambda message: True)
        return firewall, firewall.uri_for(registration).local()

    def _frame(self, seq, body=b"payload"):
        from repro.firewall.dedup import inject_seq
        briefcase = Briefcase()
        briefcase.folder("BODY").push(body)
        inject_seq(briefcase, "peer.test", seq)
        return codec.encode(briefcase)

    def _sender(self):
        from repro.firewall.message import SenderInfo
        return SenderInfo(principal="peer", host="peer.test")

    def test_duplicated_frames_are_acked_not_redelivered(
            self, single_cluster):
        firewall, target = self._sink(single_cluster)
        frame = self._frame(seq=1)
        assert firewall.receive_wire(frame, target, self._sender()) is True
        # The replay is acknowledged (the sender's retry loop settles)
        # but never reaches the agent a second time.
        assert firewall.receive_wire(frame, target, self._sender()) is True
        assert firewall.dedup.accepted == 1
        assert firewall.dedup.duplicates == 1
        assert firewall.dedup.conservation_holds()

    def test_reordered_frames_all_accepted(self, single_cluster):
        firewall, target = self._sink(single_cluster)
        for seq in (3, 1, 2):
            frame = self._frame(seq, body=b"m%d" % seq)
            assert firewall.receive_wire(
                frame, target, self._sender()) is True
        assert firewall.dedup.accepted == 3
        assert firewall.dedup.duplicates == 0
        assert firewall.dedup.conservation_holds()

    def test_bit_flipped_frames_never_crash(self, single_cluster):
        firewall, target = self._sink(single_cluster)
        rng = RandomStream(7, name="fuzz/wire-flip")
        quarantined = 0
        for seq in range(1, 41):
            wire = bytearray(self._frame(seq))
            pos = rng.randint(0, len(wire) - 1)
            wire[pos] ^= 1 << rng.randint(0, 7)
            try:
                ok = firewall.receive_wire(bytes(wire), target,
                                           self._sender())
            except FORBIDDEN as exc:  # pragma: no cover
                pytest.fail(f"receive_wire leaked "
                            f"{type(exc).__name__}: {exc}")
            if not ok:
                quarantined += 1
        assert len(firewall.quarantine) == quarantined
        assert firewall.dedup.conservation_holds()

    def test_wire_folders_never_reach_the_agent(self, single_cluster):
        """DELIVERY-SEQ is wire-only: the dispatched briefcase must not
        carry it (it would otherwise ride along on the next hop)."""
        from repro.core import wellknown
        firewall = single_cluster.node("solo.test").firewall
        seen = []
        registration = firewall.register_agent(
            name="probe", principal="system", vm_name="vm_python",
            deliver_fn=lambda message: (seen.append(message), True)[1])
        target = firewall.uri_for(registration).local()
        assert firewall.receive_wire(self._frame(seq=1), target,
                                     self._sender()) is True
        assert len(seen) == 1
        assert not seen[0].briefcase.has(wellknown.DELIVERY_SEQ)
        assert seen[0].seq == 1 and seen[0].seq_src == "peer.test"
