"""Seeded round-trip fuzzing of the hardened briefcase codec.

The acceptance bar for the wire-hardening work: **no** decoder input may
crash a firewall or VM with an untyped exception.  Every buffer — valid,
bit-flipped, truncated, extended, or pure noise — must either decode to
a briefcase or raise a :class:`~repro.core.errors.CodecError` subclass.
``IndexError``/``KeyError``/``struct.error``/``UnicodeDecodeError``/
``MemoryError`` escaping ``decode`` is a bug, full stop.

Everything is seeded through :class:`~repro.sim.rng.RandomStream`, so a
failing case reproduces by seed.
"""

import struct

import pytest

from repro.core import codec
from repro.core.briefcase import Briefcase
from repro.core.errors import CodecError, MalformedBriefcaseError
from repro.core.limits import WireLimits
from repro.sim.rng import RandomStream

#: Exceptions the decoder must never leak.
FORBIDDEN = (IndexError, KeyError, struct.error, UnicodeDecodeError,
             MemoryError, OverflowError)


def random_briefcase(rng: RandomStream) -> Briefcase:
    briefcase = Briefcase()
    for f in range(rng.randint(0, 5)):
        folder = briefcase.folder(f"F{f}-{rng.randint(0, 999)}")
        for _ in range(rng.randint(0, 4)):
            folder.push(bytes(rng.randint(0, 255)
                              for _ in range(rng.randint(0, 64))))
    return briefcase


def try_decode(data: bytes):
    """Decode; typed codec errors are fine, anything else is the bug."""
    try:
        return codec.decode(data)
    except CodecError:
        return None
    except FORBIDDEN as exc:  # pragma: no cover - the failure we hunt
        pytest.fail(f"decode leaked {type(exc).__name__}: {exc}")


class TestMutationFuzz:
    def test_single_byte_flips_never_crash(self):
        rng = RandomStream(42, name="fuzz/flip")
        for round_no in range(40):
            original = random_briefcase(rng)
            wire = bytearray(codec.encode(original))
            if not wire:
                continue
            pos = rng.randint(0, len(wire) - 1)
            wire[pos] ^= 1 << rng.randint(0, 7)
            decoded = try_decode(bytes(wire))
            if decoded is not None:
                # A surviving mutation must still re-encode cleanly.
                codec.encode(decoded)

    def test_truncations_never_crash(self):
        rng = RandomStream(43, name="fuzz/truncate")
        original = random_briefcase(rng)
        wire = codec.encode(original)
        for cut in range(len(wire)):
            decoded = try_decode(wire[:cut])
            # A strict prefix can never be a complete briefcase.
            assert decoded is None or cut == len(wire)

    def test_trailing_garbage_rejected(self):
        rng = RandomStream(44, name="fuzz/trailing")
        wire = codec.encode(random_briefcase(rng))
        with pytest.raises(MalformedBriefcaseError, match="trailing"):
            codec.decode(wire + b"\x00")

    def test_random_noise_never_crashes(self):
        rng = RandomStream(45, name="fuzz/noise")
        for _ in range(60):
            blob = bytes(rng.randint(0, 255)
                         for _ in range(rng.randint(0, 128)))
            try_decode(blob)

    def test_noise_behind_valid_magic_never_crashes(self):
        rng = RandomStream(46, name="fuzz/magic")
        for _ in range(60):
            blob = codec.MAGIC + bytes([codec.VERSION]) + bytes(
                rng.randint(0, 255) for _ in range(rng.randint(0, 96)))
            try_decode(blob)

    def test_clean_round_trip_still_holds(self):
        rng = RandomStream(47, name="fuzz/clean")
        for _ in range(25):
            original = random_briefcase(rng)
            assert codec.decode(codec.encode(original)) == original


class TestHostileAllocations:
    """Length fields promising absurd allocations must be rejected
    *before* any allocation happens (the anti-billion-laughs check)."""

    def test_huge_folder_count(self):
        blob = codec.MAGIC + bytes([codec.VERSION]) + \
            (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(MalformedBriefcaseError, match="folder count"):
            codec.decode(blob)

    def test_huge_element_count(self):
        briefcase = Briefcase()
        briefcase.folder("F").push(b"x")
        wire = bytearray(codec.encode(briefcase))
        # Element count sits right after the 1-char folder name.
        offset = len(codec.MAGIC) + 1 + 4 + 2 + 1
        wire[offset:offset + 4] = (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(MalformedBriefcaseError, match="element count"):
            codec.decode(bytes(wire))

    def test_element_size_beyond_buffer(self):
        briefcase = Briefcase()
        briefcase.folder("F").push(b"x")
        wire = bytearray(codec.encode(briefcase))
        wire[-5:-1] = (10_000).to_bytes(4, "big")  # size prefix of "x"
        with pytest.raises(MalformedBriefcaseError, match="truncated"):
            codec.decode(bytes(wire))

    def test_tight_limits_cap_good_input(self):
        briefcase = Briefcase()
        briefcase.folder("F").push(b"y" * 500)
        wire = codec.encode(briefcase)
        with pytest.raises(CodecError):
            codec.decode(wire, limits=WireLimits(max_encoded_bytes=100))
        # And None disables the cap again.
        assert codec.decode(wire, limits=None) == briefcase
