"""Tests for the deployment layer and the mining strategies."""

import pytest

from repro.core.errors import TaxError
from repro.mining.strategies import (
    CrawlTask,
    run_mobile,
    run_repeated_remote,
    run_stationary,
)
from repro.mining.webbot_agent import (
    build_webbot_program,
    build_webbot_program_source,
    condense_webbot_result,
    crawl_args,
)
from repro.system.bootstrap import build_campus_testbed, \
    build_linkcheck_testbed
from repro.system.cluster import TaxCluster
from repro.vm import loader
from tests.conftest import small_site_spec


class TestCluster:
    def test_nodes_boot_with_standard_agents(self, single_cluster):
        node = single_cluster.node("solo.test")
        assert set(node.vms) == {"vm_python", "vm_source", "vm_bin",
                                 "vm_pickle"}
        assert {"ag_exec", "ag_cc", "ag_fs", "ag_cabinet", "ag_cron",
                "ag_locator", "firewall"} <= set(node.services)

    def test_duplicate_node_rejected(self, single_cluster):
        with pytest.raises(ValueError):
            single_cluster.add_node("solo.test")

    def test_unknown_node_lookup(self, single_cluster):
        with pytest.raises(KeyError):
            single_cluster.node("ghost")
        with pytest.raises(KeyError):
            single_cluster.vm_uri("ghost")

    def test_principal_propagates_to_existing_nodes(self, pair_cluster):
        pair_cluster.add_principal("late-principal", trusted=True)
        for name in ("alpha.test", "beta.test"):
            store = pair_cluster.node(name).firewall.trust_store
            assert store.is_trusted("late-principal")

    def test_principal_available_to_new_nodes(self, single_cluster):
        single_cluster.add_principal("early", trusted=True)
        node = single_cluster.add_node("later.test")
        assert node.firewall.trust_store.is_trusted("early")

    def test_vm_uri_shape(self, single_cluster):
        assert str(single_cluster.vm_uri("solo.test", "vm_bin")) == \
            "tacoma://solo.test//vm_bin"

    def test_site_ordinals_distinct_instances(self, pair_cluster):
        a = pair_cluster.node("alpha.test").firewall.instances
        b = pair_cluster.node("beta.test").firewall.instances
        assert a.next_instance() != b.next_instance()


class TestTestbeds:
    def test_linkcheck_testbed_layout(self, small_testbed):
        assert small_testbed.client.host.name == "client.cs.uit.no"
        assert small_testbed.server.host.name == "www.cs.uit.no"
        assert "www.cs.uit.no" in small_testbed.sites
        # External hosts answer HTTP but run no TAX node.
        from repro.web import urls
        assert small_testbed.deployment.resolve(
            urls.parse("http://www.w3.org/")) is not None
        assert "www.w3.org" not in small_testbed.cluster.nodes

    def test_campus_testbed_layout(self):
        testbed = build_campus_testbed(n_servers=2, pages_per_server=10,
                                       bytes_per_server=20_000)
        assert len(testbed.servers) == 2
        assert len(testbed.sites) == 2
        for node in testbed.servers:
            assert node.host.name in testbed.sites

    def test_campus_needs_servers(self):
        with pytest.raises(ValueError):
            build_campus_testbed(n_servers=0)


class TestWebbotProgram:
    def test_linked_source_compiles_standalone(self):
        source = build_webbot_program_source()
        namespace = {}
        exec(compile(source, "<linked>", "exec"), namespace)  # noqa: S102
        assert "run_link_audit" in namespace
        assert "Webbot" in namespace and "validate_rejected" in namespace

    def test_future_imports_hoisted(self):
        source = build_webbot_program_source()
        body = source.split("\n", 3)
        # No __future__ import may appear after non-import code.
        lines = source.splitlines()
        future_lines = [i for i, line in enumerate(lines)
                        if line.startswith("from __future__")]
        assert all(i < 5 for i in future_lines)
        del body

    def test_program_signed_per_arch(self):
        cluster = TaxCluster()
        cluster.add_principal("tacomaproject", trusted=True)
        payload = build_webbot_program(cluster.keychain,
                                       archs=("x86-unix", "arm-linux"))
        assert payload.kind == loader.KIND_BINARY
        assert {b.arch for b in loader.list_binaries(payload)} == \
            {"x86-unix", "arm-linux"}

    def test_condense_shrinks_result(self):
        raw = {
            "start_url": "http://s/", "pages_scanned": 5,
            "bytes_scanned": 100, "links_seen": 9,
            "invalid": [{"url": "http://s/x", "referrer": "http://s/",
                         "reason": "http", "status": 404}],
            "rejected": [{"url": f"http://e/{i}", "referrer": "http://s/",
                          "reason": "prefix"} for i in range(100)],
            "second_pass_invalid": [],
        }
        condensed = condense_webbot_result(raw, crawl_args("http://s/"))
        assert "rejected" not in condensed
        assert condensed["pages_scanned"] == 5
        assert len(condensed["invalid"]) == 1

    def test_crawl_args_shape(self):
        args = crawl_args("http://s/", prefix="http://s/", max_depth=4,
                          max_pages=10)
        assert args["max_pages"] == 10 and args["max_depth"] == 4


class TestStrategies:
    def test_stationary_and_mobile_agree_on_findings(self, small_testbed):
        task = CrawlTask.for_site(small_testbed.site_of("www.cs.uit.no"))
        stationary = run_stationary(small_testbed, [task])
        mobile = run_mobile(small_testbed, [task])
        assert stationary.dead_links_found == mobile.dead_links_found > 0
        assert stationary.pages_scanned == mobile.pages_scanned > 0

    def test_mobile_ships_fewer_bytes(self, small_testbed):
        task = CrawlTask.for_site(small_testbed.site_of("www.cs.uit.no"))
        stationary = run_stationary(small_testbed, [task])
        mobile = run_mobile(small_testbed, [task])
        assert mobile.remote_bytes < stationary.remote_bytes / 3

    def test_found_dead_links_subset_of_ground_truth(self, small_testbed):
        site = small_testbed.site_of("www.cs.uit.no")
        task = CrawlTask.for_site(site)
        metrics = run_stationary(small_testbed, [task])
        truth_urls = {href for _s, href in site.truth.dead_internal}
        truth_urls |= {href for _s, href in site.truth.dead_external}
        truth_full = set()
        for href in truth_urls:
            truth_full.add(href if href.startswith("http")
                           else f"http://{site.host}{href}")
        found = {record["url"]
                 for report in metrics.reports
                 for record in report["invalid"]}
        assert found and found <= truth_full

    def test_monitor_collects_itinerary(self, small_testbed):
        task = CrawlTask.for_site(small_testbed.site_of("www.cs.uit.no"))
        mobile = run_mobile(small_testbed, [task], monitor=True)
        hosts = [e["host"] for e in mobile.monitor_events]
        assert "client.cs.uit.no" in hosts and "www.cs.uit.no" in hosts

    def test_unreachable_server_recorded_as_failure(self):
        testbed = build_linkcheck_testbed(spec=small_site_spec())
        task = CrawlTask(site_host="no-such-server.test",
                         start_url="http://no-such-server.test/index.html")
        metrics = run_mobile(testbed, [task], timeout=100_000)
        assert metrics.reports == []
        assert len(metrics.failures) == 1
        assert metrics.failures[0]["phase"] == "go"

    def test_itinerant_visits_all_campus_servers(self):
        testbed = build_campus_testbed(n_servers=3, pages_per_server=15,
                                       bytes_per_server=30_000)
        tasks = [CrawlTask.for_site(testbed.sites[name])
                 for name in sorted(testbed.sites)]
        itinerant = run_mobile(testbed, tasks)
        assert len(itinerant.reports) == 3
        assert {r["site"] for r in itinerant.reports} == set(testbed.sites)

    def test_repeated_remote_matches_itinerant_findings(self):
        testbed = build_campus_testbed(n_servers=2, pages_per_server=15,
                                       bytes_per_server=30_000)
        tasks = [CrawlTask.for_site(testbed.sites[name])
                 for name in sorted(testbed.sites)]
        remote = run_repeated_remote(testbed, tasks)
        testbed2 = build_campus_testbed(n_servers=2, pages_per_server=15,
                                        bytes_per_server=30_000)
        tasks2 = [CrawlTask.for_site(testbed2.sites[name])
                  for name in sorted(testbed2.sites)]
        itinerant = run_mobile(testbed2, tasks2)
        assert remote.dead_links_found == itinerant.dead_links_found

    def test_merged_report(self, small_testbed):
        task = CrawlTask.for_site(small_testbed.site_of("www.cs.uit.no"))
        metrics = run_stationary(small_testbed, [task])
        merged = metrics.merged_report()
        assert merged.dead_count == metrics.dead_links_found

    def test_summary_row_renders(self, small_testbed):
        task = CrawlTask.for_site(small_testbed.site_of("www.cs.uit.no"))
        metrics = run_stationary(small_testbed, [task])
        row = metrics.summary_row()
        assert "stationary" in row and "dead=" in row
