"""Tests for streamed communication between agents."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.agent import streams
from repro.vm import loader


def stream_sink_agent(ctx, bc):
    """Receives one stream and reports its size + checksum home."""
    payload = yield from streams.recv_stream(ctx, timeout=600)
    digest = sum(payload) % 65536
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"SIZE": [str(len(payload))],
                                   "SUM": [str(digest)]}))
    return "done"


def launch_sink(cluster, host, home_uri):
    briefcase = Briefcase()
    loader.install_payload(briefcase, loader.pack_ref(stream_sink_agent),
                           agent_name="sink")
    briefcase.put("HOME", home_uri)
    driver = cluster.node(host).driver(name=f"sink-launcher-{host}")

    def _go():
        reply = yield from driver.meet(cluster.vm_uri(host), briefcase,
                                       timeout=60)
        assert reply.get_text(wellknown.STATUS) == "ok"
        return reply.get_text("AGENT-URI")
    return cluster.run(_go())


class TestStreams:
    def test_local_stream_round_trip(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        sink = launch_sink(single_cluster, "solo.test", str(driver.uri))
        data = bytes(range(256)) * 100  # 25.6 KB -> several chunks

        def scenario():
            yield from streams.send_stream(driver, sink, data,
                                           chunk_bytes=4096)
            message = yield from driver.recv(timeout=600)
            return (int(message.briefcase.get_text("SIZE")),
                    int(message.briefcase.get_text("SUM")))
        size, digest = single_cluster.run(scenario())
        assert size == len(data)
        assert digest == sum(data) % 65536

    def test_cross_host_stream(self, pair_cluster):
        driver = pair_cluster.node("alpha.test").driver()
        sink = launch_sink(pair_cluster, "beta.test", str(driver.uri))
        data = b"x" * 50_000

        def scenario():
            yield from streams.send_stream(driver, sink, data,
                                           chunk_bytes=8192)
            message = yield from driver.recv(timeout=600)
            return int(message.briefcase.get_text("SIZE"))
        assert pair_cluster.run(scenario()) == 50_000
        # The stream's bytes really crossed the network.
        assert pair_cluster.network.total_remote_bytes() > 50_000

    def test_empty_payload(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        sink = launch_sink(single_cluster, "solo.test", str(driver.uri))

        def scenario():
            yield from streams.send_stream(driver, sink, b"")
            message = yield from driver.recv(timeout=600)
            return int(message.briefcase.get_text("SIZE"))
        assert single_cluster.run(scenario()) == 0

    def test_single_chunk_payload(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        sink = launch_sink(single_cluster, "solo.test", str(driver.uri))

        def scenario():
            yield from streams.send_stream(driver, sink, b"tiny")
            message = yield from driver.recv(timeout=600)
            return int(message.briefcase.get_text("SIZE"))
        assert single_cluster.run(scenario()) == 4

    def test_receiver_reorders_and_dedupes(self, single_cluster):
        """Drive the receiver protocol by hand: out-of-order chunks and a
        duplicate must still produce the exact payload."""
        node = single_cluster.node("solo.test")
        receiver = node.driver(name="rx")
        sender = node.driver(name="tx")

        def rx():
            payload = yield from streams.recv_stream(receiver, timeout=600)
            return payload

        def tx():
            opening = Briefcase()
            opening.put(streams.KIND, streams.KIND_OPEN)
            opening.put(streams.CHANNEL, "manual-1")
            opening.put(streams.TOTAL, 3)
            grant = yield from sender.meet(receiver.uri, opening,
                                           timeout=60)
            assert grant.get_text(streams.KIND) == streams.KIND_GRANT

            def chunk(seq, blob):
                briefcase = Briefcase()
                briefcase.put(streams.KIND, streams.KIND_DATA)
                briefcase.put(streams.CHANNEL, "manual-1")
                briefcase.put(streams.SEQ, seq)
                briefcase.folder(streams.DATA).replace([blob])
                return briefcase
            # Out of order, with a duplicate of chunk 2.
            yield from sender.send(receiver.uri, chunk(2, b"CC"))
            yield from sender.send(receiver.uri, chunk(0, b"AA"))
            yield from sender.send(receiver.uri, chunk(2, b"CC"))
            yield from sender.send(receiver.uri, chunk(1, b"BB"))
            # Drain acks so they do not pile up unread.
            for _ in range(4):
                try:
                    yield from sender.recv(
                        timeout=5,
                        match=lambda m: m.briefcase.get_text(
                            streams.KIND) == streams.KIND_ACK)
                except Exception:
                    break
            return "sent"

        rx_proc = single_cluster.kernel.spawn(rx())
        single_cluster.kernel.spawn(tx())
        single_cluster.kernel.run_until(rx_proc, until=1_000)
        assert rx_proc.value == b"AABBCC"

    def test_window_limits_outstanding_chunks(self, single_cluster):
        """With ack_every=1 and window W, the sender never has more than
        W unacked chunks in flight."""
        node = single_cluster.node("solo.test")
        driver = node.driver()
        sink = launch_sink(single_cluster, "solo.test", str(driver.uri))
        sent_seqs = []
        original_send = driver.send

        def spy_send(target, briefcase=None, **kwargs):
            if briefcase is not None and \
                    briefcase.get_text(streams.KIND) == streams.KIND_DATA:
                sent_seqs.append(int(briefcase.get_json(streams.SEQ)))
            return original_send(target, briefcase, **kwargs)
        driver.send = spy_send
        data = b"z" * (streams.DEFAULT_CHUNK_BYTES * 10)

        def scenario():
            yield from streams.send_stream(driver, sink, data)
            message = yield from driver.recv(timeout=600)
            return int(message.briefcase.get_text("SIZE"))
        assert single_cluster.run(scenario()) == len(data)
        assert sorted(sent_seqs) == list(range(10))
        # First burst is exactly the window.
        assert sent_seqs[:streams.DEFAULT_WINDOW] == \
            list(range(streams.DEFAULT_WINDOW))
