"""The reporting layer: itinerary/SLO reports, OpenMetrics text, the
flight recorder, and the percentile math they share.

Determinism is the headline contract: ``repro report --json`` and
``repro metrics`` must be byte-for-byte identical across two identical
runs (CI diffs them), so every test here that renders twice compares
exact strings.
"""

import json

import pytest

from repro.chaos.scenario import run_chaos
from repro.obs.demo import run_traced_quickstart
from repro.obs.flightrec import MAX_DUMPS, FlightRecorder
from repro.obs.metrics import (
    MetricsRegistry,
    estimate_quantile,
    summarize_sample,
)
from repro.obs.openmetrics import metric_name, render_openmetrics
from repro.obs.report import (
    build_report,
    render_report_html,
    render_report_json,
)


def quickstart_report():
    cluster, _ = run_traced_quickstart()
    return build_report(cluster.telemetry,
                        meta={"scenario": "traced-quickstart"})


# -- percentile math ----------------------------------------------------------------


def histogram_sample(values, buckets=(1.0, 10.0, 100.0)):
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("x", buckets=buckets)
    for value in values:
        histogram.observe(value)
    return histogram.samples()[0]["value"]


class TestQuantiles:
    def test_empty_sample_has_no_quantiles(self):
        sample = {"count": 0, "sum": 0.0, "min": None, "max": None,
                  "buckets": {"1": 0, "+inf": 0}}
        assert estimate_quantile(sample, 0.5) is None
        summary = summarize_sample(sample)
        assert summary["count"] == 0 and summary["p99"] is None

    def test_quantiles_are_ordered_and_clamped(self):
        sample = histogram_sample([0.5, 2.0, 3.0, 50.0, 80.0])
        summary = summarize_sample(sample)
        assert summary["count"] == 5
        assert summary["min"] == 0.5 and summary["max"] == 80.0
        assert summary["min"] <= summary["p50"] <= summary["p95"] \
            <= summary["p99"] <= summary["max"]

    def test_overflow_bucket_estimates_use_the_observed_max(self):
        sample = histogram_sample([500.0, 900.0])  # all beyond bounds
        assert estimate_quantile(sample, 0.99) == 900.0

    def test_invalid_quantile_raises(self):
        with pytest.raises(ValueError):
            estimate_quantile(histogram_sample([1.0]), 1.5)


# -- the flight recorder ------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_per_host(self):
        recorder = FlightRecorder(capacity=3, enabled=True,
                                  clock=lambda: 1.0)
        for n in range(10):
            recorder.record("h", "tick", n=n)
        events = recorder.snapshot("h")
        assert len(events) == 3
        assert [e["n"] for e in events] == [7, 8, 9]

    def test_disabled_recorder_stores_nothing(self):
        recorder = FlightRecorder(enabled=False)
        recorder.record("h", "tick")
        assert recorder.hosts() == []
        assert recorder.snapshot("h") == []

    def test_dump_freezes_the_ring(self):
        recorder = FlightRecorder(capacity=4, enabled=True,
                                  clock=lambda: 2.5)
        recorder.record("h", "admitted", wire_bytes=10)
        dump = recorder.dump("h", reason="crash-test")
        recorder.record("h", "after")  # must not leak into the dump
        assert dump["host"] == "h" and dump["reason"] == "crash-test"
        assert dump["at"] == 2.5 and dump["capacity"] == 4
        assert [e["kind"] for e in dump["events"]] == ["admitted"]
        assert recorder.dumps == [dump]

    def test_dump_list_is_capped(self):
        recorder = FlightRecorder(enabled=True, clock=lambda: 0.0)
        for n in range(MAX_DUMPS + 5):
            recorder.record("h", "tick", n=n)
            recorder.dump("h", reason=f"r{n}")
        assert len(recorder.dumps) == MAX_DUMPS
        assert recorder.dumps_evicted == 5
        assert recorder.dumps[0]["reason"] == "r5"  # oldest evicted

    def test_reset_clears_everything(self):
        recorder = FlightRecorder(enabled=True, clock=lambda: 0.0)
        recorder.record("h", "tick")
        recorder.dump("h", reason="x")
        recorder.reset()
        assert recorder.hosts() == [] and recorder.dumps == []

    def test_chaos_crash_emits_a_dump_with_recent_events(self):
        document = run_chaos(seed=7, plan="mid-crash", recovery=True)
        dumps = document["flight_recorder"]["dumps"]
        crash_dumps = [d for d in dumps if d["reason"] == "host-crash"]
        assert crash_dumps
        dump = crash_dumps[0]
        assert dump["events"], "the black box must not be empty"
        assert dump["events"][-1]["kind"] == "crash"
        assert all(e["t"] <= dump["at"] for e in dump["events"])


# -- the report document ------------------------------------------------------------


class TestReport:
    def test_report_json_is_byte_deterministic(self):
        one = render_report_json(quickstart_report())
        two = render_report_json(quickstart_report())
        assert one == two

    def test_report_structure(self):
        document = quickstart_report()
        assert document["schema"] == "repro.report/1"
        assert document["meta"] == {"scenario": "traced-quickstart"}
        assert len(document["traces"]) == 1
        trace = document["traces"][0]
        assert len(trace["hosts"]) == 3
        assert trace["n_hops"] == 2
        kinds = [row["kind"] for row in trace["itinerary"]]
        assert kinds.count("residency") == 3
        assert kinds.count("hop") == 2
        assert "agent.hop_seconds" in document["slo"]
        assert "fw.admission_bytes" in document["slo"]
        hop_slo = document["slo"]["agent.hop_seconds"][0]
        assert hop_slo["count"] == 2
        assert hop_slo["p50"] <= hop_slo["p99"] <= hop_slo["max"]
        assert document["overview"]["agent.hops"] == 2

    def test_report_html_is_self_contained(self):
        document = quickstart_report()
        html_text = render_report_html(document)
        assert html_text.startswith("<!DOCTYPE html>")
        # Self-contained: no external stylesheets/scripts/images.
        assert "<link" not in html_text
        assert "<script src" not in html_text
        assert "<img" not in html_text
        assert document["traces"][0]["trace_id"] in html_text
        # The canonical JSON is embedded for tooling.
        embedded = html_text.split(
            "<script type='application/json' id='report-data'>")[1]
        embedded = embedded.split("</script>")[0].strip()
        assert json.loads(embedded) == json.loads(
            render_report_json(document))

    def test_empty_telemetry_renders(self):
        from repro.obs.telemetry import Telemetry

        document = build_report(Telemetry(enabled=True))
        assert document["traces"] == []
        assert render_report_html(document).startswith("<!DOCTYPE html>")


# -- OpenMetrics text ---------------------------------------------------------------


class TestOpenMetrics:
    def test_names_are_legalised(self):
        assert metric_name("fw.queue_wait_seconds") == \
            "fw_queue_wait_seconds"
        assert metric_name("a-b.c") == "a_b_c"

    def test_render_is_deterministic_and_terminated(self):
        def render():
            cluster, _ = run_traced_quickstart()
            return render_openmetrics(cluster.telemetry.metrics.snapshot())
        one, two = render(), render()
        assert one == two
        assert one.endswith("# EOF\n")

    def test_counters_gain_total_suffix(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("agent.hops", 3, agent="a")
        text = render_openmetrics(registry.snapshot())
        assert "# TYPE agent_hops counter" in text
        assert 'agent_hops_total{agent="a"} 3' in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 99.0):
            histogram.observe(value)
        text = render_openmetrics(registry.snapshot())
        lines = [l for l in text.splitlines() if l.startswith("lat_")]
        assert lines == [
            'lat_bucket{le="1"} 2',
            'lat_bucket{le="10"} 3',
            'lat_bucket{le="+Inf"} 4',
            "lat_sum 105.2",
            "lat_count 4",
        ]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("c", host='a"b\\c')
        text = render_openmetrics(registry.snapshot())
        assert 'c_total{host="a\\"b\\\\c"} 1' in text
