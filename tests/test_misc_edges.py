"""Edge-case tests across modules: launch failures, defaults, guards."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import codec, wellknown
from repro.core.errors import CodecError, TaxError
from repro.core.uri import AgentUri
from repro.vm import loader
from repro.wrappers import mobility
from repro.wrappers.base import AgentWrapper
from repro.wrappers.stack import WrapperStack


def crashing_agent(ctx, bc):
    yield from ctx.sleep(0.1)
    raise TaxError("deliberate failure")


def named_by_entry(ctx, bc):
    yield from ctx.send(bc.get_text("HOME"),
                        Briefcase({"MY-NAME": [ctx.name]}))
    return "ok"


class TestVmBaseEdges:
    def test_crashing_agent_is_unregistered_and_logged(self,
                                                       single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(crashing_agent),
                               agent_name="crasher")

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok"
            yield single_cluster.kernel.timeout(5)
            return reply.get_text("AGENT-URI")
        uri = AgentUri.parse(single_cluster.run(scenario()))
        assert node.firewall.registry.by_instance(uri.instance) is None
        assert any("agent failed" in text
                   for _t, text in node.firewall.events)

    def test_agent_name_defaults_to_entry_name(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(named_by_entry))
        briefcase.drop(wellknown.AGENT_NAME)
        briefcase.put("HOME", str(driver.uri))

        def scenario():
            yield from driver.meet(single_cluster.vm_uri("solo.test"),
                                   briefcase, timeout=60)
            message = yield from driver.recv(timeout=60)
            return message.briefcase.get_text("MY-NAME")
        assert single_cluster.run(scenario()) == "named_by_entry"

    def test_launch_policy_denial_nacks(self, single_cluster):
        from repro.firewall.policy import OP_LAUNCH
        node = single_cluster.node("solo.test")
        node.firewall.policy.deny("pariah", OP_LAUNCH)
        driver = node.driver(name="pariah-drv", principal="pariah")
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(named_by_entry))

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            return (reply.get_text(wellknown.STATUS),
                    reply.get_text(wellknown.ERROR))
        status, error = single_cluster.run(scenario())
        assert status == "error" and "policy denies" in error

    def test_missing_payload_nacks(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"),
                Briefcase({"JUNK": ["no code here"]}), timeout=60)
            return reply.get_text(wellknown.STATUS)
        assert single_cluster.run(scenario()) == "error"


class TestContextEdges:
    def test_post_logs_failures_instead_of_raising(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            process = driver.post(
                AgentUri.parse("tacoma://no.such.host/x"), Briefcase())
            yield single_cluster.kernel.timeout(1)
            return process.triggered
        assert single_cluster.run(scenario()) is True
        assert any("async send" in text and "failed" in text
                   for _t, text in node.firewall.events)

    def test_string_targets_accepted_everywhere(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            request = Briefcase()
            request.put(wellknown.OP, "list")
            reply = yield from driver.meet("firewall", request, timeout=30)
            return reply.get_text(wellknown.STATUS)
        assert single_cluster.run(scenario()) == "ok"

    def test_meet_raises_when_wrapper_swallows_send(self, single_cluster):
        class Muzzle(AgentWrapper):
            def on_send(self, ctx, target, briefcase):
                return None
        driver = single_cluster.node("solo.test").driver()
        driver.wrappers = WrapperStack([Muzzle()])
        from repro.core.errors import CommTimeoutError

        def scenario():
            with pytest.raises(CommTimeoutError, match="dropped"):
                yield from driver.meet("firewall", Briefcase(), timeout=5)
            return "done"
        assert single_cluster.run(scenario()) == "done"


class TestServiceEdges:
    def test_activate_style_request_gets_no_reply(self, single_cluster):
        """A request without REPLY-TO is processed but never answered."""
        node = single_cluster.node("solo.test")
        service = node.services["ag_locator"]
        driver = node.driver()
        handled_before = service.requests_handled

        def scenario():
            request = Briefcase()
            request.put(wellknown.OP, "update")
            request.put(wellknown.ARGS, {"name": "fire-and-forget",
                                         "uri": "tacoma://solo.test//x"})
            yield from driver.send(AgentUri.parse("ag_locator"), request)
            yield single_cluster.kernel.timeout(1)
            from repro.core.errors import CommTimeoutError
            with pytest.raises(CommTimeoutError):
                yield from driver.recv(timeout=2)
            return service.requests_handled
        assert single_cluster.run(scenario()) == handled_before + 1


class TestMobilityUnits:
    def test_program_round_trip(self):
        briefcase = Briefcase()
        payload = loader.pack_source("def f(a, e):\n    return 1\n", "f")
        mobility.install_program(briefcase, payload)
        assert mobility.read_program(briefcase) == payload

    def test_missing_program_raises(self):
        with pytest.raises(TaxError, match="PROGRAM"):
            mobility.read_program(Briefcase())

    def test_make_task_briefcase_shape(self):
        payload = loader.pack_source("def f(a, e):\n    return 1\n", "f")
        briefcase = mobility.make_task_briefcase(
            payload, [{"vm": "tacoma://h/vm_python", "args": {"k": 1}}],
            home_uri="tacoma://c//home:1")
        assert briefcase.get_text(wellknown.AGENT_NAME) == "mw_agent"
        assert len(briefcase.folder(mobility.ITINERARY)) == 1
        assert briefcase.get_text(mobility.HOME) == "tacoma://c//home:1"
        stop = briefcase.folder(mobility.ITINERARY).first().as_json()
        assert stop == {"args": {"k": 1}, "vm": "tacoma://h/vm_python"}

    def test_postprocess_identity_without_postprocessor(self):
        result = mobility._postprocess(Briefcase(), {"x": 1}, {})
        assert result == {"x": 1}


class TestCodecGuards:
    def test_implausible_element_count(self):
        import struct
        folder = (struct.pack(">H", 1) + b"F" +
                  struct.pack(">I", codec.MAX_ELEMENTS + 1))
        wire = (codec.MAGIC + struct.pack(">B", codec.VERSION) +
                struct.pack(">I", 1) + folder)
        with pytest.raises(CodecError, match="implausible element count"):
            codec.decode(wire)


class TestNetworkDefaults:
    def test_partial_defaults_do_not_create_links(self, kernel):
        from repro.sim.network import Network, NoRouteError
        net = Network(kernel, default_latency=0.01)  # no bandwidth
        net.add_host("x")
        net.add_host("y")
        with pytest.raises(NoRouteError):
            net.link_between("x", "y")


class TestBootstrapDetails:
    def test_external_hosts_reachable_from_both_sides(self, small_testbed):
        network = small_testbed.network
        for ext in ("www.w3.org", "www.cornell.edu"):
            assert network.transfer_time("client.cs.uit.no", ext, 0) > 0
            assert network.transfer_time("www.cs.uit.no", ext, 0) > 0

    def test_testbed_properties(self, small_testbed):
        assert small_testbed.kernel is small_testbed.cluster.kernel
        assert small_testbed.server in small_testbed.servers
        assert small_testbed.site_of("www.cs.uit.no").host == \
            "www.cs.uit.no"


class TestWebbotConfigPassthrough:
    def test_run_webbot_honors_all_args(self):
        fetched = []

        class Resp:
            status = 200
            ok = True
            body = "<html></html>"
            location = None
            content_type = "text/html"
            age_days = None

        class Http:
            def get(self, url):
                fetched.append(url)
                return Resp()
        from repro.robot.webbot import run_webbot

        class Env:
            http = Http()
        result = run_webbot({"start_url": "http://s/",
                             "honor_robots": False,
                             "max_redirects": 0,
                             "max_pages": 5,
                             "max_depth": 2}, Env)
        assert result["max_depth"] == 2
        assert "http://s/robots.txt" not in fetched


class TestHopGuard:
    def test_looping_message_rejected(self, pair_cluster):
        from repro.firewall.message import MAX_HOPS, Message, SenderInfo
        alpha = pair_cluster.node("alpha.test")
        message = Message(
            target=AgentUri.parse("tacoma://beta.test/ag_fs"),
            briefcase=Briefcase(),
            sender=SenderInfo("system", "alpha.test"),
            hops=MAX_HOPS)

        def scenario():
            ok = yield from alpha.firewall.submit(message)
            return ok
        assert pair_cluster.run(scenario()) is False
        assert any("looping" in text
                   for _t, text in alpha.firewall.events)


class TestRunnerJson:
    def test_json_output(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "results.json"
        assert main(["experiments", "F5", "--json", str(out)]) == 0
        import json
        data = json.loads(out.read_text())
        assert data["experiments"][0]["experiment"] == "F5"
        assert data["experiments"][0]["reproduced"] is True
        assert data["experiments"][0]["rows"]
