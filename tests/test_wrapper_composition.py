"""Composition: sealing around group communication.

Section 4's vision is *stacked* support: "a group communication wrapper
... If the agents are to move, one can add a location transparent
wrapper around the broadcast wrapper."  Here we stack sealing *around*
group multicast: every fanned-out copy is sealed on its way to the
firewall, members unseal before reordering, and an eavesdropper (a
member with the wrong key) learns nothing.
"""

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.vm import loader
from repro.wrappers.groupcomm import GroupCommWrapper, group_send
from repro.wrappers.sealing import SEALED_FOLDER, SealingWrapper
from repro.wrappers.stack import WrapperSpec, WrapperStack, install_wrappers

KEY_CONFIG = SealingWrapper.make_key_config(b"group-secret-key-32bytes!!")


def sealed_group_listener(ctx, bc):
    heard = []
    while True:
        message = yield from ctx.recv(timeout=500)
        if message.briefcase.get_text(wellknown.OP) == "stop":
            yield from ctx.send(bc.get_text("HOME"),
                                Briefcase({"HEARD": heard}))
            return "done"
        ping = message.briefcase.get_text("PING")
        if ping is not None:
            heard.append(ping)


class TestSealedGroup:
    def test_sealed_multicast_delivers_and_hides(self, single_cluster):
        node = single_cluster.node("solo.test")
        home = node.driver(name="sg-home")
        members = ["tacoma://solo.test//sgl0",
                   "tacoma://solo.test//sgl1"]
        group_config = {"group": "sealedswarm", "members": members}

        def wrapper_specs():
            # Outermost sealing, group inside.
            return [WrapperSpec.by_ref(SealingWrapper, KEY_CONFIG),
                    WrapperSpec.by_ref(GroupCommWrapper, group_config)]

        listener_uris = []
        for i, name in enumerate(("sgl0", "sgl1")):
            briefcase = Briefcase()
            loader.install_payload(
                briefcase, loader.pack_ref(sealed_group_listener),
                agent_name=name)
            briefcase.put("HOME", str(home.uri))
            install_wrappers(briefcase, wrapper_specs())

            def launch(briefcase=briefcase):
                reply = yield from home.meet(
                    single_cluster.vm_uri("solo.test"), briefcase,
                    timeout=60)
                assert reply.get_text(wellknown.STATUS) == "ok", \
                    reply.get_text(wellknown.ERROR)
                return reply.get_text("AGENT-URI")
            listener_uris.append(single_cluster.run(launch()))

        # A sender context with the same sealed-group stack; the home
        # driver needs the sealing layer too — the listeners' HEARD
        # reports come home sealed.
        sender = node.driver(name="sg-sender")
        sender.wrappers = WrapperStack([
            SealingWrapper(KEY_CONFIG),
            GroupCommWrapper({**group_config, "deliver_self": False}),
        ])
        home.wrappers = WrapperStack([SealingWrapper(KEY_CONFIG)])

        # Spy on raw deliveries: the firewall must see only sealed data.
        raw_seen = []
        original = node.firewall._dispatch_local

        def spy(message):
            raw_seen.append(message.briefcase.snapshot())
            return original(message)
        node.firewall._dispatch_local = spy

        def scenario():
            for i in range(3):
                yield from group_send(sender, "sealedswarm",
                                      Briefcase({"PING": [f"p{i}"]}))
            yield single_cluster.kernel.timeout(2)
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            heard = []
            for uri in listener_uris:
                yield from home.send(AgentUri.parse(uri), stop)
            for _ in range(2):
                message = yield from home.recv(timeout=60)
                heard.append(message.briefcase.folder("HEARD").texts())
            return heard
        heard = single_cluster.run(scenario())
        assert heard == [["p0", "p1", "p2"], ["p0", "p1", "p2"]]

        # No plaintext PING ever crossed the firewall between the
        # sender and the members.
        sealed_count = 0
        for briefcase in raw_seen:
            if briefcase.has(SEALED_FOLDER):
                sealed_count += 1
                for folder in briefcase:
                    for element in folder:
                        assert b"p0" not in element.data or \
                            folder.name == SEALED_FOLDER
                assert not briefcase.has("PING")
        assert sealed_count >= 6  # 3 pings x 2 members

    def test_wrong_key_member_hears_nothing(self, single_cluster):
        node = single_cluster.node("solo.test")
        home = node.driver(name="ek-home")
        members = ["tacoma://solo.test//eavesdrop"]
        briefcase = Briefcase()
        loader.install_payload(
            briefcase, loader.pack_ref(sealed_group_listener),
            agent_name="eavesdrop")
        briefcase.put("HOME", str(home.uri))
        install_wrappers(briefcase, [
            WrapperSpec.by_ref(
                SealingWrapper,
                SealingWrapper.make_key_config(b"the-wrong-key")),
            WrapperSpec.by_ref(GroupCommWrapper,
                               {"group": "sealedswarm",
                                "members": members}),
        ])

        def launch():
            reply = yield from home.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=60)
            return reply.get_text("AGENT-URI")
        uri = single_cluster.run(launch())
        # The eavesdropper's own report comes home sealed with ITS key.
        home.wrappers = WrapperStack([
            SealingWrapper(
                SealingWrapper.make_key_config(b"the-wrong-key"))])

        sender = node.driver(name="ek-sender")
        sender.wrappers = WrapperStack([
            SealingWrapper(KEY_CONFIG),
            GroupCommWrapper({"group": "sealedswarm", "members": members,
                              "deliver_self": False}),
        ])

        def scenario():
            yield from group_send(sender, "sealedswarm",
                                  Briefcase({"PING": ["secret"]}))
            yield single_cluster.kernel.timeout(2)
            # The stop must reach the agent: send it sealed with the
            # *agent's* (wrong) key so its stack lets it through.
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            wrong_key_sender = node.driver(name="ek-stopper")
            wrong_key_sender.wrappers = WrapperStack([
                SealingWrapper(
                    SealingWrapper.make_key_config(b"the-wrong-key"))])
            yield from wrong_key_sender.send(AgentUri.parse(uri), stop)
            message = yield from home.recv(timeout=60)
            return message.briefcase.folder("HEARD").texts()
        assert single_cluster.run(scenario()) == []
