"""Unit tests for auth, policy, routing, and the pending queue."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import AgentNotFoundError, TrustError
from repro.core.identity import AgentId
from repro.core.uri import AgentUri
from repro.firewall.auth import (
    KeyChain,
    Signature,
    TrustStore,
    build_shared_trust,
)
from repro.firewall.message import Message, SenderInfo
from repro.firewall.msgqueue import PendingQueue
from repro.firewall.policy import (
    OP_ADMIN,
    OP_SEND,
    Policy,
    closed_policy,
    open_policy,
)
from repro.firewall.routing import Registration, Registry


def sender(principal="alice", host="h", authenticated=True):
    return SenderInfo(principal=principal, host=host,
                      authenticated=authenticated)


def registration(name="svc", instance="1a", principal="system",
                 delivered=None):
    def deliver(message):
        if delivered is not None:
            delivered.append(message)
        return True
    return Registration(agent_id=AgentId(name, instance),
                        principal=principal, vm_name="vm_python",
                        deliver_fn=deliver, start_time=0.0)


def message(target="svc", principal="alice", timeout=30.0):
    return Message(target=AgentUri.parse(target), briefcase=Briefcase(),
                   sender=sender(principal), queue_timeout=timeout)


class TestAuth:
    def test_sign_verify_round_trip(self):
        keychain, store = build_shared_trust({"alice": False})
        signature = keychain.sign("alice", b"payload")
        assert store.verify(signature, b"payload") == "alice"

    def test_tampered_payload_rejected(self):
        keychain, store = build_shared_trust({"alice": False})
        signature = keychain.sign("alice", b"payload")
        with pytest.raises(TrustError):
            store.verify(signature, b"tampered")

    def test_unknown_principal_rejected(self):
        _keychain, store = build_shared_trust({})
        other = KeyChain()
        other.create_key("mallory")
        with pytest.raises(TrustError, match="unknown principal"):
            store.verify(other.sign("mallory", b"x"), b"x")

    def test_wrong_key_rejected(self):
        keychain, store = build_shared_trust({"alice": False})
        impostor = KeyChain()
        impostor.create_key("alice", secret=b"different")
        with pytest.raises(TrustError, match="bad signature"):
            store.verify(impostor.sign("alice", b"x"), b"x")

    def test_trusted_vs_known(self):
        keychain, store = build_shared_trust({"alice": False,
                                              "root": True})
        assert store.knows("alice") and not store.is_trusted("alice")
        assert store.is_trusted("root")
        signature = keychain.sign("alice", b"x")
        store.verify(signature, b"x")  # verification fine
        with pytest.raises(TrustError, match="not trusted"):
            store.verify_trusted(signature, b"x")

    def test_trust_and_revoke(self):
        _keychain, store = build_shared_trust({"alice": False})
        store.trust("alice")
        assert store.is_trusted("alice")
        store.revoke("alice")
        assert not store.is_trusted("alice")

    def test_cannot_trust_unknown(self):
        store = TrustStore()
        with pytest.raises(TrustError):
            store.trust("ghost")

    def test_signature_text_round_trip(self):
        signature = Signature("user@host", "ab12")
        assert Signature.from_text(signature.to_text()) == signature

    def test_malformed_signature_text(self):
        with pytest.raises(TrustError):
            Signature.from_text("no-colon")

    def test_missing_signing_key(self):
        with pytest.raises(TrustError):
            KeyChain().sign("nobody", b"x")


class TestPolicy:
    def test_open_policy_allows_send(self):
        assert open_policy().can_send(sender(), registration())

    def test_explicit_deny_beats_default(self):
        policy = open_policy()
        policy.deny("alice", OP_SEND)
        assert not policy.can_send(sender("alice"), registration())

    def test_closed_policy_denies_by_default(self):
        policy = closed_policy()
        assert not policy.can_send(sender("alice"))

    def test_closed_policy_owner_allowed(self):
        policy = closed_policy(owners={"boss"})
        assert policy.can_send(sender("boss"))
        assert policy.can_launch(sender("boss"), "vm_python")

    def test_own_agents_always_reachable(self):
        policy = Policy(default_send=False)
        mine = registration(principal="alice")
        assert policy.can_send(sender("alice"), mine)
        assert not policy.can_send(sender("bob"), mine)

    def test_admin_requires_authentication(self):
        policy = open_policy()
        assert policy.can_admin(sender("system", authenticated=True))
        assert not policy.can_admin(sender("system", authenticated=False))

    def test_admin_requires_privilege(self):
        policy = open_policy()
        assert not policy.can_admin(sender("alice"))
        policy.add_owner("alice")
        assert policy.can_admin(sender("alice"))

    def test_admin_explicit_allow(self):
        policy = open_policy()
        policy.allow("auditor", OP_ADMIN)
        assert policy.can_admin(sender("auditor"))

    def test_admin_explicit_deny_beats_owner(self):
        policy = open_policy()
        policy.add_owner("eve")
        policy.deny("eve", OP_ADMIN)
        assert not policy.can_admin(sender("eve"))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            open_policy().allow("x", "fly")


class TestRegistry:
    def test_resolve_by_name(self):
        registry = Registry()
        reg = registry.add(registration("ag_fs", "1"))
        assert registry.resolve_one(AgentUri.parse("ag_fs"), "alice") is reg

    def test_resolve_by_instance_only(self):
        registry = Registry()
        reg = registry.add(registration("whatever", "2b"))
        assert registry.resolve_one(AgentUri.parse(":2b"), None) is reg

    def test_oldest_match_wins(self):
        registry = Registry()
        first = registry.add(registration("svc", "1"))
        registry.add(registration("svc", "2"))
        assert registry.resolve_one(AgentUri.parse("svc"), None) is first

    def test_no_match_raises(self):
        with pytest.raises(AgentNotFoundError):
            Registry().resolve_one(AgentUri.parse("ghost"), None)

    def test_two_valid_principals_rule(self):
        registry = Registry()
        alice_agent = registry.add(registration("w", "1", principal="alice"))
        # No principal in the target: bob can't see alice's agent...
        assert registry.matches(AgentUri.parse("w"), "bob") == []
        # ...alice can (sender principal)...
        assert registry.matches(AgentUri.parse("w"), "alice") == \
            [alice_agent]
        # ...and an explicit principal always works.
        assert registry.matches(AgentUri.parse("alice/w"), "bob") == \
            [alice_agent]

    def test_system_agents_visible_to_all(self):
        registry = Registry()
        reg = registry.add(registration("ag_fs", "1", principal="system"))
        assert registry.matches(AgentUri.parse("ag_fs"), "anyone") == [reg]

    def test_duplicate_instance_rejected(self):
        registry = Registry()
        registry.add(registration("a", "1"))
        with pytest.raises(ValueError):
            registry.add(registration("b", "1"))

    def test_remove(self):
        registry = Registry()
        reg = registry.add(registration("a", "1"))
        assert registry.remove(reg.agent_id) is reg
        assert registry.remove(reg.agent_id) is None
        assert len(registry) == 0

    def test_pause_buffers_and_resume_flushes(self):
        delivered = []
        reg = registration(delivered=delivered)
        reg.pause()
        reg.deliver(message())
        assert delivered == []
        flushed = reg.resume()
        assert flushed == 1 and len(delivered) == 1

    def test_registration_uri(self):
        reg = registration("svc", "1a", principal="system")
        assert str(reg.uri(host="h")) == "tacoma://h/system/svc:1a"


class TestPendingQueue:
    def test_message_claimable_before_timeout(self, kernel):
        queue = PendingQueue(kernel)
        queue.park(message(timeout=10.0))
        kernel.run(until=5)
        claimed = queue.claim(lambda target: True)
        assert len(claimed) == 1 and len(queue) == 0

    def test_message_expires(self, kernel):
        expired = []
        queue = PendingQueue(kernel, on_expire=expired.append)
        queue.park(message(timeout=10.0))
        kernel.run(until=11)
        assert len(queue) == 0
        assert queue.expired_count == 1 and len(expired) == 1

    def test_claim_is_selective(self, kernel):
        queue = PendingQueue(kernel)
        queue.park(message(target="a"))
        queue.park(message(target="b"))
        claimed = queue.claim(lambda target: target.name == "a")
        assert [m.target.name for m in claimed] == ["a"]
        assert [t.name for t in queue.peek_targets()] == ["b"]

    def test_claimed_message_does_not_expire(self, kernel):
        expired = []
        queue = PendingQueue(kernel, on_expire=expired.append)
        queue.park(message(timeout=5.0))
        queue.claim(lambda target: True)
        kernel.run(until=10)
        assert expired == [] and queue.expired_count == 0

    def test_fifo_within_claim(self, kernel):
        queue = PendingQueue(kernel)
        first = message(target="a")
        second = message(target="a")
        queue.park(first)
        queue.park(second)
        claimed = queue.claim(lambda target: True)
        assert claimed == [first, second]
