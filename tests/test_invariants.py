"""System-level invariants under randomized workloads (seeded)."""

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import AccessDeniedError, TaxError
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.sim.rng import RandomStream
from repro.vm import loader
from repro.wrappers.groupcomm import GroupCommWrapper, group_send
from repro.wrappers.stack import WrapperSpec, install_wrappers


class TestFirewallAccounting:
    """Every submitted message must end up delivered, expired, or
    rejected — nothing vanishes."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_conservation_under_random_traffic(self, single_cluster, seed):
        node = single_cluster.node("solo.test")
        firewall = node.firewall
        kernel = single_cluster.kernel
        rng = RandomStream(seed, "traffic")
        driver = node.driver()

        mailboxes = {}
        names = [f"agent{i}" for i in range(5)]

        def register(name):
            from repro.agent.mailbox import Mailbox
            mailbox = Mailbox(kernel)
            firewall.register_agent(name=name, principal="system",
                                    vm_name="vm_python",
                                    deliver_fn=mailbox.deliver)
            mailboxes.setdefault(name, []).append(mailbox)

        base_delivered = firewall.stats.delivered
        base_queued = firewall.stats.queued
        base_expired = firewall.stats.expired
        base_rejected = firewall.stats.rejected
        submits_ok = 0
        submits_dropped = 0

        def scenario():
            nonlocal submits_ok, submits_dropped
            for _ in range(120):
                action = rng.random()
                name = rng.choice(names)
                if action < 0.25 and name not in mailboxes:
                    register(name)
                elif action < 0.9:
                    timeout = rng.choice([0, 2.0, 10.0])
                    ok = yield from driver.send(
                        AgentUri.parse(name), Briefcase({"N": ["x"]}),
                        queue_timeout=timeout)
                    if ok:
                        submits_ok += 1
                    else:
                        submits_dropped += 1
                else:
                    yield kernel.timeout(rng.uniform(0.1, 3.0))
            # Let remaining queue TTLs resolve.
            yield kernel.timeout(30.0)
        single_cluster.run(scenario())

        delivered = firewall.stats.delivered - base_delivered
        expired = firewall.stats.expired - base_expired
        rejected = firewall.stats.rejected - base_rejected
        still_pending = len(firewall.pending)
        # Conservation: every accepted submit was delivered or expired
        # (the TTL window has passed, so nothing should still be parked).
        assert still_pending == 0
        assert delivered + expired == submits_ok
        assert rejected == submits_dropped
        # Everything delivered is really sitting in a mailbox.
        in_mailboxes = sum(len(mb) for boxes in mailboxes.values()
                           for mb in boxes)
        assert in_mailboxes == delivered

    def test_queue_then_register_then_expire_mix(self, single_cluster):
        node = single_cluster.node("solo.test")
        kernel = single_cluster.kernel
        driver = node.driver()

        def scenario():
            # Three messages with staggered TTLs to an absent agent.
            for timeout in (5.0, 15.0, 25.0):
                yield from driver.send(AgentUri.parse("late"),
                                       Briefcase({"TTL": [str(timeout)]}),
                                       queue_timeout=timeout)
            yield kernel.timeout(10.0)  # first TTL fires
            from repro.agent.mailbox import Mailbox
            mailbox = Mailbox(kernel)
            node.firewall.register_agent(
                name="late", principal="system", vm_name="vm_python",
                deliver_fn=mailbox.deliver)
            yield kernel.timeout(30.0)
            return sorted(m.briefcase.get_text("TTL")
                          for m in [mailbox.try_receive(),
                                    mailbox.try_receive()]
                          if m is not None)
        survivors = single_cluster.run(scenario())
        assert survivors == ["15.0", "25.0"]
        assert node.firewall.stats.expired == 1


def to_pinger_agent(ctx, bc):
    """Sends its PINGS into the group with total ordering, then idles."""
    import json
    for body in json.loads(bc.get_text("PINGS")):
        yield from group_send(ctx, "tswarm", Briefcase({"PING": [body]}))
        yield from ctx.sleep(0.001)
    while True:
        message = yield from ctx.recv()
        if message.briefcase.get_text(wellknown.OP) == "stop":
            return "done"


def to_listener_agent(ctx, bc):
    heard = []
    while True:
        message = yield from ctx.recv(timeout=5_000)
        if message.briefcase.get_text(wellknown.OP) == "stop":
            yield from ctx.send(bc.get_text("HOME"),
                                Briefcase({"HEARD": heard}))
            return "done"
        ping = message.briefcase.get_text("PING")
        if ping is not None:
            heard.append(ping)


class TestTotalOrderInvariant:
    def test_all_members_deliver_identical_sequences(self, pair_cluster):
        """Two senders on different hosts, total ordering: every member
        must observe the same global sequence."""
        import json
        home = pair_cluster.node("alpha.test").driver(name="to-home")
        members = ["tacoma://alpha.test//tl0",
                   "tacoma://beta.test//tl1",
                   "tacoma://alpha.test//tp0",
                   "tacoma://beta.test//tp1"]
        config = {"group": "tswarm", "members": members,
                  "ordering": "total"}

        def launch(entry, name, host, folders):
            briefcase = Briefcase(folders)
            loader.install_payload(briefcase, loader.pack_ref(entry),
                                   agent_name=name)
            briefcase.put("HOME", str(home.uri))
            install_wrappers(briefcase,
                             [WrapperSpec.by_ref(GroupCommWrapper, config)])

            def _go():
                reply = yield from home.meet(
                    pair_cluster.vm_uri(host), briefcase, timeout=60)
                assert reply.get_text(wellknown.STATUS) == "ok", \
                    reply.get_text(wellknown.ERROR)
                return reply.get_text("AGENT-URI")
            return pair_cluster.run(_go())

        uris = [
            launch(to_listener_agent, "tl0", "alpha.test", {}),
            launch(to_listener_agent, "tl1", "beta.test", {}),
            launch(to_pinger_agent, "tp0", "alpha.test",
                   {"PINGS": [json.dumps(["a1", "a2", "a3"])]}),
            launch(to_pinger_agent, "tp1", "beta.test",
                   {"PINGS": [json.dumps(["b1", "b2", "b3"])]}),
        ]

        def scenario():
            yield pair_cluster.kernel.timeout(10.0)
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            for uri in uris:
                yield from home.send(AgentUri.parse(uri), stop)
            sequences = []
            for _ in range(2):
                message = yield from home.recv(timeout=600)
                sequences.append(message.briefcase.folder("HEARD").texts())
            return sequences
        sequences = pair_cluster.run(scenario())
        assert len(sequences[0]) == 6
        assert sequences[0] == sequences[1], \
            "total order violated between members"
        # Per-sender FIFO is preserved inside the total order.
        for prefix in ("a", "b"):
            filtered = [p for p in sequences[0] if p.startswith(prefix)]
            assert filtered == sorted(filtered)
