"""Shared fixtures for the test suite."""

import pytest

from repro.sim.eventloop import Kernel
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN, Network
from repro.sim.host import SimHost
from repro.system.cluster import TaxCluster
from repro.system.bootstrap import build_linkcheck_testbed
from repro.web.site import SiteSpec


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def network(kernel):
    return Network(kernel)


@pytest.fixture
def host(kernel, network):
    return SimHost(kernel, network, "host.test")


@pytest.fixture
def pair_cluster():
    """Two booted TAX nodes on a LAN."""
    cluster = TaxCluster()
    cluster.add_node("alpha.test")
    cluster.add_node("beta.test")
    cluster.network.link("alpha.test", "beta.test",
                         latency=LATENCY_LAN, bandwidth=BANDWIDTH_100MBIT)
    return cluster


@pytest.fixture
def single_cluster():
    """One booted TAX node."""
    cluster = TaxCluster()
    cluster.add_node("solo.test")
    return cluster


def small_site_spec(**overrides):
    """A small-but-real site spec for fast integration tests."""
    defaults = dict(
        host="www.cs.uit.no", n_pages=60, total_bytes=200_000,
        external_hosts=("www.w3.org", "www.cornell.edu"),
        dead_internal_fraction=0.05, external_link_fraction=0.10,
        external_dead_fraction=0.3, seed=42)
    defaults.update(overrides)
    return SiteSpec(**defaults)


@pytest.fixture
def small_testbed():
    """A linkcheck testbed over a small site (fast)."""
    return build_linkcheck_testbed(spec=small_site_spec())
