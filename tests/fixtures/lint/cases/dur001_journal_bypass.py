"""DUR001 fixture: journaled delivery state mutated around the journal."""


class Host:
    def __init__(self, window, registry):
        self.dedup = window                    # finding: rebinding
        self.landings = registry               # finding: rebinding


def poke(firewall, peer):
    firewall.dedup._seen[peer] = [1]           # finding: private reach
    firewall.landings._tombstones.clear()      # finding: private reach


def fine(firewall, peer, seq):
    verdict = firewall.dedup.observe(peer, seq)     # ok: journal API
    firewall.landings.tombstone("w:1:2", "crash")   # ok: journal API
    return verdict


def replay_install(firewall, image):
    firewall.dedup = image.dedup  # lint: disable=DUR001 - replay path
