"""OBS001 fixture: telemetry backends built outside the facade."""

import repro.obs.tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.obs.telemetry import Telemetry


def build():
    registry = MetricsRegistry(enabled=True)     # finding: direct registry
    tracer = Tracer(enabled=True)                # finding: direct tracer
    qualified = obs_tracing.Tracer()             # finding: qualified form

    hub = Telemetry(enabled=True)                # ok: the facade itself
    spans = hub.tracer.spans                     # ok: reached via the facade
    quiet = Tracer()  # lint: disable=OBS001 - deliberate standalone tracer
    return registry, tracer, qualified, spans, quiet
