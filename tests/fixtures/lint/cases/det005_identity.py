"""DET005 fixture: identity-keyed ordering and membership."""


def identity_games(objects, seen, registry):
    ranked = sorted(objects, key=id)         # finding: key=id
    if id(objects[0]) in seen:               # finding: id membership
        return ranked
    seen.add(id(objects[0]))                 # finding: id into collection
    registry[id(objects[0])] = 1             # finding: id as key
    pinned = id(objects[0]) in seen  # lint: disable=DET005 - refs pinned by caller
    return ranked, pinned
