"""Fixture: a file-wide suppression silences every DET001 occurrence.

# lint: disable-file=DET001
"""

import time


def stamps():
    return time.time(), time.time()          # both silenced file-wide
