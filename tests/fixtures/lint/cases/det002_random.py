"""DET002 fixture: unseeded randomness (never imported, only linted)."""

import os
import random
import uuid


def entropy():
    a = random.random()              # finding: global stream
    b = os.urandom(8)                # finding: OS entropy
    c = uuid.uuid4()                 # finding: OS entropy
    d = random.Random()              # finding: unseeded constructor
    e = random.Random(42)            # ok: explicit seed
    f = random.random()  # lint: disable=DET002 - fixture exercising suppression
    return a, b, c, d, e, f
