"""DET001 fixture: wall-clock reads (never imported, only linted)."""

import time
from datetime import datetime


def stamp():
    started = time.time()            # finding: wall clock
    label = datetime.now()           # finding: wall clock
    tick = time.perf_counter()       # ok: interval timer, not wall clock
    allowed = time.time()  # lint: disable=DET001 - wall-clock wanted here
    return started, label, tick, allowed
