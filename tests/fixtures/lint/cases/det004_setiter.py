"""DET004 fixture: hash-ordered set iteration."""


def orders(items):
    out = []
    for name in {"b", "a", "c"}:     # finding: set literal iteration
        out.append(name)
    doubled = [x * 2 for x in set(items)]    # finding: set(...) iteration
    ok = [x for x in sorted(set(items))]     # ok: sorted() wraps the set
    quiet = [x for x in set(items)]  # lint: disable=DET004
    return out, doubled, ok, quiet
