"""DET003 negative fixture: environment reads OUTSIDE repro.core /
repro.sim scope are allowed (CLI entry points may read the shell)."""

import os

DEBUG = os.environ.get("REPRO_DEBUG")
LEVEL = os.getenv("REPRO_LEVEL", "info")
