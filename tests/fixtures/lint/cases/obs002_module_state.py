"""OBS002 fixture: telemetry state bound at module scope."""

import repro.obs.telemetry as obs_telemetry
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry

TELEMETRY = Telemetry(enabled=True)              # finding: module global
registry = MetricsRegistry(enabled=True)         # finding (plus OBS001)
flight: FlightRecorder = FlightRecorder()        # finding: annotated form
qualified = obs_telemetry.Telemetry()            # finding: qualified form


def fresh() -> Telemetry:
    return Telemetry(enabled=True)               # ok: one per run


SHARED = Telemetry()  # lint: disable=OBS002 - process-lifetime singleton
