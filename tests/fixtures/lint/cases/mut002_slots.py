"""MUT002 fixture: event/message subclasses without __slots__."""

from repro.sim.eventloop import Event
from repro.firewall import message


class FlashEvent(Event):                     # finding: no __slots__
    def __init__(self, kernel, colour):
        super().__init__(kernel)
        self.colour = colour


class TaggedMessage(message.Message):        # finding: qualified base
    pass


class SlottedEvent(Event):                   # ok: declares __slots__
    __slots__ = ("colour",)

    def __init__(self, kernel, colour):
        super().__init__(kernel)
        self.colour = colour


class QuietEvent(Event):  # lint: disable=MUT002
    pass


class Unrelated:                             # ok: not an event subclass
    pass
