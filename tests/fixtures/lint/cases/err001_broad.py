"""ERR001 fixture: broad excepts that swallow the exception."""


def swallows(work, log):
    try:
        work()
    except Exception:                        # finding: swallowed
        pass

    try:
        work()
    except (ValueError, Exception):          # finding: tuple includes broad
        log("failed")

    try:
        work()
    except:                                  # finding: bare except
        log("failed")

    try:
        work()
    except Exception as exc:                 # ok: exception object is used
        log(str(exc))

    try:
        work()
    except Exception:                        # ok: re-raised
        log("failed")
        raise

    try:
        work()
    except ValueError:                       # ok: narrow type
        pass

    try:
        work()
    except Exception:  # lint: disable=ERR001 - fixture suppression
        pass
