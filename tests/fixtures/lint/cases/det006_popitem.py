"""DET006 fixture: order-dependent dict.popitem."""


def drain(mapping):
    first = mapping.popitem()                # finding: popitem
    second = mapping.pop("key", None)        # ok: explicit key
    third = mapping.popitem()  # lint: disable=DET006
    return first, second, third
