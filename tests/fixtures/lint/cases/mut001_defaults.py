"""MUT001 fixture: mutable default argument values."""

import collections


def collect(item, bucket=[]):                # finding: list display
    bucket.append(item)
    return bucket


def index(key, table={}):                    # finding: dict display
    return table.setdefault(key, 0)


def count(key, counters=collections.Counter()):   # finding: mutable call
    counters[key] += 1
    return counters


def safe(item, bucket=None):                 # ok: None default
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def quiet(item, bucket=[]):  # lint: disable=MUT001
    return bucket
