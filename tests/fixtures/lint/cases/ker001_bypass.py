"""KER001 fixture: scheduling primitives bypassing the kernel."""

import heapq                                 # finding: private heap
import threading
from sched import scheduler                  # finding: stdlib scheduler


def ticker(callback):
    timer = threading.Timer(1.0, callback)   # finding: wall-clock timer
    heap = []
    heapq.heappush(heap, (0.0, callback))
    return timer, heap


import sched  # lint: disable=KER001 - fixture suppression
