"""DET003 positive fixture: env reads inside the repro.core scope.

The package markers around this file make the analyzer infer the
module name ``repro.core.env_read``, which is inside ENV_SCOPES.
"""

import os

DEBUG = os.environ.get("REPRO_DEBUG")        # finding: environ access
LEVEL = os.getenv("REPRO_LEVEL", "info")     # finding: getenv call
QUIET = os.getenv("REPRO_QUIET")  # lint: disable=DET003
