"""DET003 negative fixture: ``repro.other`` is outside ENV_SCOPES, so
environment reads here are not findings."""

import os

DEBUG = os.environ.get("REPRO_DEBUG")
LEVEL = os.getenv("REPRO_LEVEL", "info")
