"""DET003 (transitive): deterministic code reaching an env read.

The env read itself lives in ``repro.util`` where the local DET003
never looks; the whole-program pass reports the innermost *in-scope*
function whose call chain reaches it.
"""

from repro.util import envsrc


def resolve_region(explicit):
    if explicit is not None:
        return explicit
    # finding: DET003 (transitive) — reaches os.getenv two hops down
    return envsrc.deep_default_region()


def build_config(explicit_region=None):  # covered: lands on resolve_region
    return {"region": resolve_region(explicit_region)}
