"""Helper module *outside* DET003's scope (not repro.core / repro.sim).

Reading the environment here is legal in isolation — entry points may
consult the shell — but deterministic code must not reach it.
"""

import os


def default_region():  # ok here: repro.util is outside DET003's scope
    return os.getenv("REPRO_REGION", "eu-west")


def deep_default_region():  # one more hop for the witness chain
    return default_region()
