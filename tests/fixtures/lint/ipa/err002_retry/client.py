"""ERR002: retry loops that burn their budget on permanent errors.

``fetch_sealed`` always raises ``AccessDeniedError`` (transient=False,
by taxonomy): a loop that catches the broad base and retries will fail
identically every attempt.  Guarded loops (``is_transient``) and loops
narrowed to transient types are the sanctioned patterns.
"""

from taxonomy import (
    AccessDeniedError,
    CommTimeoutError,
    TaxError,
    is_transient,
)


def open_channel(host):
    if host.sealed:
        raise AccessDeniedError(f"{host} is sealed")
    return host.channel


def fetch_sealed(host):  # one hop between the retry loop and the raise
    return open_channel(host)


def fetch_with_retries(host, attempts=3):
    for _ in range(attempts):
        try:
            return fetch_sealed(host)
        except TaxError:  # finding: ERR002 — catches AccessDeniedError
            continue
    return None


def fetch_guarded(host, attempts=3):
    for _ in range(attempts):
        try:
            return fetch_sealed(host)
        except TaxError as exc:  # ok: consults the taxonomy
            if not is_transient(exc):
                raise
            continue
    return None


def fetch_narrow(host, attempts=3):
    for _ in range(attempts):
        try:
            return fetch_sealed(host)
        except CommTimeoutError:  # ok: transient-only catch
            continue
    return None


def fetch_reraising(host):
    while True:
        try:
            return fetch_sealed(host)
        except TaxError:  # ok: unconditionally re-raises
            raise
