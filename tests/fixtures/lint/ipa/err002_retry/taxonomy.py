"""A miniature copy of the error taxonomy shape ERR002 reads.

``transient`` is a class attribute: True for retryable failures, False
for permanent ones, None for "ask the instance".
"""


class TaxError(Exception):
    transient = None


class TransientError(TaxError):
    transient = True


class CommTimeoutError(TransientError):
    pass


class PermanentError(TaxError):
    transient = False


class AccessDeniedError(PermanentError):
    pass


def is_transient(exc):
    marker = getattr(exc, "transient", None)
    return bool(marker)
