"""ASY001: transport-clean code coupled to blocking I/O/virtual time.

``repro.core.retry`` is named transport-clean by the real-transport
roadmap item: the same bytes-in/bytes-out code must run under the
asyncio backend.  An edge into ``repro.sim`` (virtual time) or a
blocking call poisons that plan and is flagged now, before the
backend lands.
"""

import time

from repro.sim import pacing


def backoff(kernel, attempt):
    # finding: ASY001 — transport-clean code entering virtual time
    return pacing.paced_wait(kernel, attempt)


def send_with_backoff(kernel, wire, attempts=3):  # covered: on backoff
    for attempt in range(attempts):
        if wire.try_send():
            return True
        backoff(kernel, attempt)
    return False


def settle(seconds):
    # finding: ASY001 — blocking sleep in transport-clean code
    time.sleep(seconds)


def compute_delay(base, attempt):  # ok: pure arithmetic
    return base * (2 ** attempt)
