"""A virtual-time helper: anything in ``repro.sim.*`` is sim-coupled
by definition (it only makes sense under the deterministic kernel)."""


def wait_ticks(kernel, ticks):
    return kernel.timeout(ticks)


def paced_wait(kernel, attempt):  # one more hop for the witness chain
    return wait_ticks(kernel, 2 ** attempt)
