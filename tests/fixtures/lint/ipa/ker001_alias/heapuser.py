"""KER001 (transitive): a kernel-bypassing heap laundered via alias.

The import line carries the local KER001 finding; binding
``heapq.heappush`` to a bare name and calling it is additionally
reported by the whole-program pass (the alias would survive even if
the import moved behind a suppressed facade).
"""

import heapq  # finding: KER001 (local rule, banned import)

push = heapq.heappush


def enqueue(heap, item):  # finding: KER001 (transitive, via alias)
    push(heap, item)


def schedule_batch(heap, items):  # covered: lands on enqueue()
    for item in items:
        enqueue(heap, item)
