"""DET001 (transitive): wall-clock read laundered through an alias.

The local rule only resolves direct ``ast.Call`` targets, so binding
``time.time`` to a name and calling the name escapes it.  The
whole-program pass records the binding and reports at the innermost
function owning the laundered call, with the binding site in the
witness chain.
"""

import time

_clock = time.time  # the laundering: a callable reference, not a call


def stamp():  # finding: DET001 (transitive, via alias bound above)
    return _clock()


def build_record(payload):  # covered: the finding lands on stamp()
    return {"at": stamp(), "payload": payload}


def deliver(payload):  # caller context for the witness chain
    return build_record(payload)


def honest_stamp():
    return time.time()  # finding: DET001 (local rule, direct call)
