"""The sanctioned inject/strip pair (mirrors the real propagation
module's shape): ``extract`` is a strip root, so writes in this module
— including ``inject`` — are part of the wire protocol, not a leak.
"""

TRACE_CONTEXT = "TRACE-CONTEXT"


def inject(briefcase, header):  # ok: same module as the strip site
    briefcase.drop(TRACE_CONTEXT)
    briefcase.put("TRACE-CONTEXT", header)


def extract(briefcase):
    if not briefcase.has(TRACE_CONTEXT):
        return None
    header = briefcase.get_text(TRACE_CONTEXT)
    briefcase.drop(TRACE_CONTEXT)
    return header
