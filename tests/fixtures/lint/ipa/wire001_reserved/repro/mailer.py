"""WIRE001: a reserved wire-only folder written off the wire path.

``stamp_trace`` writes ``TRACE-CONTEXT`` but neither it, its module,
nor anything it calls can reach a ``receive_wire`` strip site — the
folder would survive into agent-visible briefcases and corrupt the
dedup/tracing protocol on the next hop.
"""


def stamp_trace(briefcase, header):
    # finding: WIRE001 — no path from here to extract()
    briefcase.put("TRACE-CONTEXT", header)


def send_with_trace(briefcase, header):  # caller context for the witness
    stamp_trace(briefcase, header)
    return briefcase
