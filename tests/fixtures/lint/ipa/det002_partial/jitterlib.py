"""DET002 (transitive): unseeded randomness through functools.partial.

``functools.partial(random.random)`` produces a callable the local rule
cannot see through; the whole-program pass unwraps the partial at the
binding site and reports the laundered draw with a witness chain.
"""

import functools
import random

draw = functools.partial(random.random)


def jitter():  # finding: DET002 (transitive, partial bound above)
    return draw()


def plan_backoff(attempt):  # covered: the finding lands on jitter()
    return (2 ** attempt) + jitter()


def seeded_ok(seed):
    rng = random.Random(seed)  # ok: explicit seed
    return rng.random()
