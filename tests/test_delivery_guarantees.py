"""Exactly-once delivery and migration safety.

The receiver-side machinery (:mod:`repro.firewall.dedup`), the landing
handshake in the VMs, the tombstone/kill admin surface, and the
``repro partition`` acceptance scenarios built on top of them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.briefcase import Briefcase
from repro.core.errors import CommTimeoutError
from repro.core.uri import AgentUri
from repro.core import wellknown
from repro.firewall.dedup import (
    DedupWindow,
    LandingRegistry,
    extract_landing,
    extract_seq,
    inject_landing,
    inject_seq,
)
from repro.obs.telemetry import Telemetry
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.network import BANDWIDTH_100MBIT, LATENCY_LAN
from repro.system.cluster import TaxCluster
from repro.vm import loader


# -- DedupWindow units ------------------------------------------------------------


class TestDedupWindow:
    def test_accept_then_duplicate(self):
        window = DedupWindow()
        assert window.observe("peer", 1) == "accept"
        assert window.observe("peer", 1) == "duplicate"
        assert window.observe("peer", 2) == "accept"
        assert window.conservation_holds()
        assert (window.offered, window.accepted,
                window.duplicates, window.rejected) == (3, 2, 1, 0)

    def test_peers_are_independent(self):
        window = DedupWindow()
        assert window.observe("a", 1) == "accept"
        assert window.observe("b", 1) == "accept"
        assert window.observe("a", 1) == "duplicate"

    def test_below_window_rejected_not_delivered(self):
        window = DedupWindow(capacity=4)
        for seq in range(1, 11):
            window.observe("peer", seq)
        # seq 2 fell below max_seen - capacity = 6: it can no longer be
        # proven fresh, so the invariant forces a refusal.
        assert window.observe("peer", 2) == "reject"
        assert window.conservation_holds()

    def test_implausible_sequences_rejected(self):
        window = DedupWindow()
        assert window.observe("peer", 0) == "reject"
        assert window.observe("peer", -3) == "reject"
        assert window.observe("peer", "nope") == "reject"
        assert window.conservation_holds()

    def test_forget_reclassifies_and_allows_retry(self):
        window = DedupWindow()
        assert window.observe("peer", 1) == "accept"
        window.forget("peer", 1)  # dispatch failed: delivery undone
        assert (window.accepted, window.rejected) == (0, 1)
        assert window.conservation_holds()
        # The sender's retry must not be swallowed as a duplicate.
        assert window.observe("peer", 1) == "accept"

    def test_forget_of_unknown_sequence_is_noop(self):
        window = DedupWindow()
        window.observe("peer", 1)
        before = window.snapshot()
        window.forget("peer", 99)
        window.forget("stranger", 1)
        assert window.snapshot() == before

    def test_window_memory_is_bounded(self):
        window = DedupWindow(capacity=16)
        for seq in range(1, 1001):
            window.observe("peer", seq)
        assert window.window_size("peer") <= 16

    def test_snapshot_shape(self):
        window = DedupWindow()
        window.observe("peer", 1)
        body = window.snapshot()
        assert body["conservation_holds"] is True
        assert body["peers"]["peer"] == {"max_seen": 1, "window": 1}


class TestDedupWindowProperties:
    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]),
                              st.integers(min_value=1, max_value=60)),
                    max_size=300))
    @settings(max_examples=200)
    def test_conservation_and_no_double_accept(self, offers):
        """Whatever arrival order/duplication the network produces,
        counters balance, each (peer, seq) is accepted at most once,
        and the per-peer memory stays bounded."""
        window = DedupWindow(capacity=8)
        accepted = set()
        for peer, seq in offers:
            verdict = window.observe(peer, seq)
            if verdict == "accept":
                assert (peer, seq) not in accepted
                accepted.add((peer, seq))
            assert window.conservation_holds()
            assert window.window_size(peer) <= 8

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=40)),
                    max_size=200))
    @settings(max_examples=100)
    def test_conservation_survives_forgets(self, ops):
        """Interleaved forgets (failed dispatches) keep the counters
        conserved, and a seq is only ever re-accepted after a forget."""
        window = DedupWindow(capacity=8)
        live = set()
        for is_forget, seq in ops:
            if is_forget:
                window.forget("peer", seq)
                live.discard(seq)
            else:
                verdict = window.observe("peer", seq)
                if verdict == "accept":
                    assert seq not in live
                    live.add(seq)
            assert window.conservation_holds()


# -- LandingRegistry units ---------------------------------------------------------


class TestLandingRegistry:
    def test_lifecycle_new_to_launched(self):
        registry = LandingRegistry()
        assert registry.acquire("h:1:1") == ("new", None)
        assert registry.acquire("h:1:1") == ("pending", None)
        registry.record_launch("h:1:1", "tax://h/agent:abc")
        assert registry.acquire("h:1:1") == ("launched", "tax://h/agent:abc")
        assert registry.duplicate_landings == 1
        assert registry.launches == 1

    def test_release_frees_the_slot(self):
        registry = LandingRegistry()
        registry.acquire("h:1:1")
        registry.release("h:1:1")
        assert registry.acquire("h:1:1") == ("new", None)

    def test_tombstone_refuses_future_landings(self):
        registry = LandingRegistry()
        assert registry.tombstone("h:1:1", "go-abandoned") is None
        state, reason = registry.acquire("h:1:1")
        assert state == "tombstoned"
        assert reason == "go-abandoned"
        assert registry.tombstone_refusals == 1

    def test_tombstone_of_launched_returns_uri(self):
        registry = LandingRegistry()
        registry.acquire("h:1:1")
        registry.record_launch("h:1:1", "tax://h/agent:abc")
        assert registry.tombstone("h:1:1") == "tax://h/agent:abc"
        assert registry.acquire("h:1:1")[0] == "tombstoned"

    def test_crash_all_tombstones_everything(self):
        registry = LandingRegistry()
        registry.acquire("h:1:1")
        registry.record_launch("h:1:1", "uri-1")
        registry.acquire("h:1:2")  # still pending
        assert registry.crash_all() == 2
        assert registry.acquire("h:1:1")[0] == "tombstoned"
        assert registry.acquire("h:1:2")[0] == "tombstoned"

    def test_tables_are_trimmed_at_capacity(self):
        registry = LandingRegistry(capacity=4)
        for n in range(10):
            landing = f"h:1:{n}"
            registry.acquire(landing)
            registry.record_launch(landing, f"uri-{n}")
        assert registry.snapshot()["launched_now"] <= 4
        assert registry.evicted == 6

    def test_status(self):
        registry = LandingRegistry()
        assert registry.status("h:1:1") == "unknown"
        registry.acquire("h:1:1")
        assert registry.status("h:1:1") == "pending"
        registry.record_launch("h:1:1", "uri")
        assert registry.status("h:1:1") == "launched"
        registry.tombstone("h:1:1")
        assert registry.status("h:1:1") == "tombstoned"


class TestWireFolders:
    def test_seq_round_trip(self):
        briefcase = Briefcase()
        inject_seq(briefcase, "alpha.test", 42)
        assert extract_seq(briefcase) == ("alpha.test", 42)
        assert not briefcase.has(wellknown.DELIVERY_SEQ)

    def test_malformed_seq_is_stripped_not_fatal(self):
        for hostile in ("", "notanumber host", "12", "12 "):
            briefcase = Briefcase()
            briefcase.put(wellknown.DELIVERY_SEQ, hostile)
            assert extract_seq(briefcase) == (None, None)
            assert not briefcase.has(wellknown.DELIVERY_SEQ)

    def test_landing_round_trip(self):
        briefcase = Briefcase()
        inject_landing(briefcase, "h:1:7")
        assert extract_landing(briefcase) == "h:1:7"
        assert not briefcase.has(wellknown.LANDING_ID)
        assert extract_landing(briefcase) is None


# -- fault injection regression ----------------------------------------------------


class TestInjectorTelemetry:
    def test_delivery_faults_with_telemetry_do_not_raise(self):
        """Regression: ``_count`` used to pass ``kind=`` into
        ``FlightRecorder.record``, colliding with its positional
        ``kind`` parameter — every fault roll with telemetry enabled
        raised TypeError, so chaos runs silently lost their injected
        duplicates/reorders/corruptions."""
        telemetry = Telemetry(enabled=True)
        plan = FaultPlan(duplicate_probability=1.0)
        injector = FaultInjector(plan, seed_or_stream=7,
                                 telemetry=telemetry)
        kind, delay = injector.delivery_verdict("a", "b", 100)
        assert kind == "duplicate"
        assert delay >= 0.0
        events = telemetry.flight.snapshot("a")
        assert events and events[-1]["kind"] == "fault"
        assert events[-1]["fault"] == "duplicate"

    def test_drop_faults_with_telemetry_do_not_raise(self):
        telemetry = Telemetry(enabled=True)
        plan = FaultPlan(drop_probability=1.0)
        injector = FaultInjector(plan, seed_or_stream=7,
                                 telemetry=telemetry)
        assert injector.verdict("a", "b", 100) == "drop"
        events = telemetry.flight.snapshot("a")
        assert events and events[-1]["fault"] == "drop"


# -- integration: dedup through live firewalls -------------------------------------


def _counter(cluster, name):
    metric = cluster.telemetry.metrics.get(name)
    if metric is None:
        return 0
    return sum(sample["value"] for sample in metric.samples())


@pytest.fixture
def metered_pair():
    cluster = TaxCluster(telemetry=Telemetry(enabled=True))
    cluster.add_node("alpha.test")
    cluster.add_node("beta.test")
    cluster.network.link("alpha.test", "beta.test",
                         latency=LATENCY_LAN, bandwidth=BANDWIDTH_100MBIT)
    return cluster


def sink_agent(ctx, bc):
    while True:
        yield from ctx.recv()


def echo_agent(ctx, bc):
    while True:
        message = yield from ctx.recv()
        reply = Briefcase()
        reply.put("BODY", message.briefcase.get_text("BODY") or "")
        yield from ctx.reply(message, reply)


def _launch(cluster, host, fn, name):
    briefcase = Briefcase()
    loader.install_payload(briefcase, loader.pack_ref(fn),
                           agent_name=name)
    driver = cluster.node(host).driver(name=f"launch-{name}")

    def scenario():
        reply = yield from driver.meet(cluster.vm_uri(host), briefcase,
                                       timeout=30)
        assert reply.get_text(wellknown.STATUS) == "ok"
        return reply.get_text("AGENT-URI")
    return cluster.run(scenario())


class TestEndToEndDedup:
    def test_injected_duplicates_are_suppressed(self, metered_pair):
        """Every remote message is duplicated in flight; receivers must
        process each exactly once and counters must balance."""
        sink_uri = _launch(metered_pair, "beta.test", sink_agent, "sink")
        plan = FaultPlan(name="dup-all", duplicate_probability=1.0)
        injector = FaultInjector(plan, seed_or_stream=3,
                                 telemetry=metered_pair.telemetry)
        metered_pair.network.fault_injector = injector
        driver = metered_pair.node("alpha.test").driver()

        def scenario():
            for n in range(5):
                yield from driver.send(AgentUri.parse(sink_uri),
                                       Briefcase({"BODY": [f"m{n}".encode()]}))
            # Let the delayed replays land before sampling counters.
            yield metered_pair.kernel.timeout(2.0)
            return "done"
        metered_pair.run(scenario())
        beta = metered_pair.node("beta.test").firewall
        assert injector.duplicated == 5
        assert beta.dedup.duplicates == 5
        assert beta.dedup.accepted == 5
        assert beta.dedup.conservation_holds()

    def test_suppressed_duplicate_is_not_redelivered(self, metered_pair):
        """The echo agent's replies prove single processing (not just
        the firewall counters): one request, one reply — never two."""
        echo_uri = _launch(metered_pair, "beta.test", echo_agent, "echo")
        plan = FaultPlan(name="dup-all", duplicate_probability=1.0)
        metered_pair.network.fault_injector = FaultInjector(
            plan, seed_or_stream=3, telemetry=metered_pair.telemetry)
        driver = metered_pair.node("alpha.test").driver()

        def scenario():
            request = Briefcase()
            request.put("BODY", "once")
            reply = yield from driver.meet(AgentUri.parse(echo_uri),
                                           request, timeout=10)
            assert reply.get_text("BODY") == "once"
            # A processed duplicate would produce a second, orphaned
            # reply; none may arrive.
            extra = 0
            while True:
                try:
                    yield from driver.recv(timeout=2.0)
                except CommTimeoutError:
                    break
                extra += 1
            return extra
        extra = metered_pair.run(scenario())
        assert extra == 0


# -- integration: the landing handshake --------------------------------------------


def _landed(firewall, name):
    """How many landed copies of ``name`` the host is running."""
    return sum(1 for r in firewall.admin_list() if r.name == name)


def resident_agent(ctx, bc):
    while True:
        yield from ctx.recv()


class TestLandingHandshake:
    def _launch_briefcase(self, name="lander"):
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_ref(resident_agent),
                               agent_name=name)
        return briefcase

    def test_duplicate_landing_reacked_not_relaunched(self, metered_pair):
        """A retried migration transport (same landing id) is answered
        with the existing agent's URI; no twin is spawned."""
        driver = metered_pair.node("alpha.test").driver()
        beta = metered_pair.node("beta.test").firewall
        vm_uri = metered_pair.vm_uri("beta.test")

        def scenario():
            driver._outbound_landing = "alpha.test:drv:1"
            try:
                first = yield from driver.meet(
                    vm_uri, self._launch_briefcase(), timeout=30)
                second = yield from driver.meet(
                    vm_uri, self._launch_briefcase(), timeout=30)
            finally:
                driver._outbound_landing = None
            return first, second
        first, second = metered_pair.run(scenario())
        assert first.get_text(wellknown.STATUS) == "ok"
        assert second.get_text(wellknown.STATUS) == "ok"
        assert first.get_text("AGENT-URI") == second.get_text("AGENT-URI")
        assert beta.landings.duplicate_landings == 1
        assert beta.landings.launches == 1
        assert _landed(beta, "lander") == 1
        assert _counter(metered_pair, "vm.duplicate_landings") == 1

    def test_distinct_landings_spawn_distinct_agents(self, metered_pair):
        driver = metered_pair.node("alpha.test").driver()
        beta = metered_pair.node("beta.test").firewall
        vm_uri = metered_pair.vm_uri("beta.test")

        def scenario():
            uris = []
            for n in (1, 2):
                driver._outbound_landing = f"alpha.test:drv:{n}"
                try:
                    reply = yield from driver.meet(
                        vm_uri, self._launch_briefcase(), timeout=30)
                finally:
                    driver._outbound_landing = None
                uris.append(reply.get_text("AGENT-URI"))
            return uris
        uris = metered_pair.run(scenario())
        assert len(set(uris)) == 2
        assert beta.landings.launches == 2
        assert beta.landings.duplicate_landings == 0

    def test_tombstoned_landing_is_refused(self, metered_pair):
        """The origin aborts an ambiguous migration; a late transport
        with the poisoned landing id must be nacked, not launched."""
        driver = metered_pair.node("alpha.test").driver()
        driver.configure_signing(metered_pair.keychain)
        beta = metered_pair.node("beta.test").firewall
        vm_uri = metered_pair.vm_uri("beta.test")

        def scenario():
            request = Briefcase()
            request.put(wellknown.OP, "tombstone")
            request.put(wellknown.ARGS,
                        {"landing_id": "alpha.test:drv:9",
                         "reason": "go-abandoned"})
            reply = yield from driver.meet(
                AgentUri(host="beta.test", name="firewall"), request,
                timeout=10)
            assert reply.get_text(wellknown.STATUS) == "ok"
            driver._outbound_landing = "alpha.test:drv:9"
            try:
                launch = yield from driver.meet(
                    vm_uri, self._launch_briefcase(), timeout=30)
            finally:
                driver._outbound_landing = None
            return launch
        launch = metered_pair.run(scenario())
        assert launch.get_text(wellknown.STATUS) == "error"
        assert "landing refused" in launch.get_text(wellknown.ERROR)
        assert beta.landings.tombstone_refusals == 1
        assert _landed(beta, "lander") == 0

    def test_tombstone_kills_already_landed_instance(self, metered_pair):
        """Two-phase abort, late: the landing already launched; the
        tombstone kills the instance so no twin survives."""
        driver = metered_pair.node("alpha.test").driver()
        driver.configure_signing(metered_pair.keychain)
        beta = metered_pair.node("beta.test").firewall
        vm_uri = metered_pair.vm_uri("beta.test")

        def scenario():
            driver._outbound_landing = "alpha.test:drv:5"
            try:
                launch = yield from driver.meet(
                    vm_uri, self._launch_briefcase(), timeout=30)
            finally:
                driver._outbound_landing = None
            assert launch.get_text(wellknown.STATUS) == "ok"
            request = Briefcase()
            request.put(wellknown.OP, "tombstone")
            request.put(wellknown.ARGS,
                        {"landing_id": "alpha.test:drv:5",
                         "reason": "go-abandoned"})
            reply = yield from driver.meet(
                AgentUri(host="beta.test", name="firewall"), request,
                timeout=10)
            return reply.get_json(wellknown.RESULTS)
        results = metered_pair.run(scenario())
        assert results == {"tombstoned": True, "killed": True}
        assert _landed(beta, "lander") == 0

    def test_crash_tombstones_landings(self, metered_pair):
        """A restarted host must refuse the re-landing of an agent its
        crash destroyed (the rear guard owns recovery, not the retry)."""
        driver = metered_pair.node("alpha.test").driver()
        node = metered_pair.node("beta.test")
        vm_uri = metered_pair.vm_uri("beta.test")

        def scenario():
            driver._outbound_landing = "alpha.test:drv:3"
            try:
                launch = yield from driver.meet(
                    vm_uri, self._launch_briefcase(), timeout=30)
            finally:
                driver._outbound_landing = None
            assert launch.get_text(wellknown.STATUS) == "ok"
            return "ok"
        metered_pair.run(scenario())
        node.crash()
        assert node.firewall.landings.acquire("alpha.test:drv:3") == \
            ("tombstoned", "host-crash")


class TestTombstoneAuthorization:
    def test_origin_capability_without_admin_rights(self, metered_pair):
        """An authenticated non-admin may tombstone only landing ids
        minted by its own host."""
        metered_pair.add_principal("nobody-special")
        driver = metered_pair.node("alpha.test").driver(
            name="plain", principal="nobody-special")
        driver.configure_signing(metered_pair.keychain)

        def attempt(landing_id):
            request = Briefcase()
            request.put(wellknown.OP, "tombstone")
            request.put(wellknown.ARGS, {"landing_id": landing_id})
            reply = yield from driver.meet(
                AgentUri(host="beta.test", name="firewall"), request,
                timeout=10)
            return reply.get_text(wellknown.STATUS)

        def scenario():
            own = yield from attempt("alpha.test:drv:1")
            foreign = yield from attempt("beta.test:z:1")
            return own, foreign
        own, foreign = metered_pair.run(scenario())
        assert own == "ok"        # its own host's landing id
        assert foreign == "error"  # someone else's: needs can_admin


# -- integration: partition scenarios ----------------------------------------------


class TestPartitionScenarios:
    def test_partition_storm_holds_and_suppresses(self):
        from repro.chaos.partition import run_partition
        document = run_partition(seed=7, scenario="partition-storm")
        block = document["exactly_once"]
        assert block["holds"] is True
        assert block["completed"] is True
        assert block["duplicate_site_visits"] == 0
        assert block["conservation_violations"] == []
        assert block["duplicates_suppressed"] > 0
        assert document["injector"]["duplicated"] > 0

    def test_asym_ack_loss_reacks_instead_of_relaunching(self):
        from repro.chaos.partition import run_partition
        document = run_partition(seed=7, scenario="asym-ack-loss")
        block = document["exactly_once"]
        assert block["holds"] is True
        assert block["duplicate_landings_suppressed"] > 0
        assert block["duplicate_site_visits"] == 0

    def test_split_brain_detects_twin(self):
        from repro.chaos.partition import run_partition
        document = run_partition(seed=7, scenario="split-brain")
        block = document["exactly_once"]
        assert block["holds"] is True
        # The orphan incarnation keeps travelling, so the guard may
        # flag it on several hosts; at least one kill must connect.
        assert block["twins_detected"] >= 1
        assert block["twins_killed"] >= 1
        assert document["stats"]["recovery_relaunches"] == 1

    def test_runs_are_byte_identical(self):
        from repro.chaos.partition import (render_partition_json,
                                           run_partition)
        one = render_partition_json(
            run_partition(seed=11, scenario="partition-storm"))
        two = render_partition_json(
            run_partition(seed=11, scenario="partition-storm"))
        assert one == two

    def test_unknown_scenario_raises_value_error(self):
        from repro.chaos.partition import named_partition_plan
        with pytest.raises(ValueError):
            named_partition_plan("bogus", ["w1"])


class TestCli:
    def test_partition_list(self, capsys):
        from repro.cli import main
        assert main(["partition", "--list"]) == 0
        out = capsys.readouterr().out
        assert "partition-storm" in out and "asym-ack-loss" in out

    def test_chaos_list(self, capsys):
        from repro.cli import main
        assert main(["chaos", "--list"]) == 0
        assert "flaky-links" in capsys.readouterr().out

    def test_unknown_names_exit_2_with_hint(self, capsys):
        from repro.cli import main
        assert main(["partition", "--scenario", "bogus"]) == 2
        assert "--list" in capsys.readouterr().err
        assert main(["chaos", "--plan", "bogus"]) == 2
        assert "--list" in capsys.readouterr().err
