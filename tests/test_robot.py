"""Unit tests for the Webbot clone, link checker, and reports."""

import json

import pytest

from repro.robot.linkcheck import validate_rejected
from repro.robot.report import DeadLinkReport, merge_reports
from repro.robot.webbot import (
    REASON_DEPTH,
    REASON_PREFIX,
    REASON_SCHEME,
    Webbot,
    WebbotConfig,
    extract_links,
    join_url,
    run_webbot,
)


class FakeResponse:
    def __init__(self, status, body=""):
        self.status = status
        self.body = body
        self.ok = 200 <= status < 300


class FakeHttp:
    """A dict-backed web: url -> html (missing urls 404)."""

    def __init__(self, pages, unreachable=()):
        self.pages = pages
        self.unreachable = set(unreachable)
        self.log = []

    def get(self, url):
        self.log.append(("GET", url))
        if url in self.unreachable:
            return FakeResponse(0)
        if url in self.pages:
            return FakeResponse(200, self.pages[url])
        return FakeResponse(404)

    def head(self, url):
        self.log.append(("HEAD", url))
        if url in self.unreachable:
            return FakeResponse(0)
        return FakeResponse(200 if url in self.pages else 404)


def page(*hrefs):
    items = "".join(f'<li><a href="{h}">x</a></li>' for h in hrefs)
    return f"<html><body><ul>{items}</ul></body></html>"


class TestLinkExtraction:
    def test_href_double_and_single_quotes(self):
        html = '<a href="/a">x</a><a href=\'/b\'>y</a>'
        assert extract_links(html) == ["/a", "/b"]

    def test_link_and_area_tags(self):
        html = '<link href="/style.css"><area href="/map.html">'
        assert set(extract_links(html)) == {"/style.css", "/map.html"}

    def test_img_and_script_src(self):
        html = '<img src="/i.png"><script src="/j.js"></script>'
        assert set(extract_links(html)) == {"/i.png", "/j.js"}

    def test_case_insensitive_and_multiline(self):
        html = '<A\n  HREF="/caps.html">x</A>'
        assert extract_links(html) == ["/caps.html"]

    def test_no_links(self):
        assert extract_links("<p>plain</p>") == []


class TestJoinUrl:
    BASE = "http://h/dir/page.html"

    def test_relative(self):
        assert join_url(self.BASE, "other.html") == "http://h/dir/other.html"

    def test_root_relative(self):
        assert join_url(self.BASE, "/top.html") == "http://h/top.html"

    def test_absolute(self):
        assert join_url(self.BASE, "http://x/y") == "http://x/y"

    def test_dotdot(self):
        assert join_url(self.BASE, "../up.html") == "http://h/up.html"

    def test_fragment_stripped(self):
        assert join_url(self.BASE, "p.html#s") == "http://h/dir/p.html"

    def test_mailto_is_none(self):
        assert join_url(self.BASE, "mailto:x@y") is None

    def test_ftp_is_none(self):
        assert join_url(self.BASE, "ftp://h/f") is None


class TestWebbotCrawl:
    def simple_web(self):
        return FakeHttp({
            "http://s/index.html": page("/a.html", "/b.html"),
            "http://s/a.html": page("/c.html", "/dead.html"),
            "http://s/b.html": page(),
            "http://s/c.html": page("http://other/x.html",
                                    "mailto:me@s"),
        })

    def crawl(self, http=None, **config):
        http = http or self.simple_web()
        defaults = dict(start_url="http://s/index.html", max_depth=10)
        defaults.update(config)
        robot = Webbot(WebbotConfig(**defaults), http)
        return robot.run(), http

    def test_counts_pages_and_bytes(self):
        result, _ = self.crawl()
        assert result["pages_scanned"] == 4
        assert result["bytes_scanned"] == sum(
            len(self.simple_web().pages[u]) for u in self.simple_web().pages)

    def test_dead_link_found(self):
        result, _ = self.crawl(prefix="http://s/")
        dead = [r["url"] for r in result["invalid"]]
        assert dead == ["http://s/dead.html"]
        assert result["invalid"][0]["status"] == 404
        assert result["invalid"][0]["referrer"] == "http://s/a.html"

    def test_depth_first_order(self):
        _result, http = self.crawl()
        gets = [u for verb, u in http.log if verb == "GET"]
        # /a.html's subtree (/c.html) is exhausted before /b.html.
        assert gets.index("http://s/c.html") < gets.index("http://s/b.html")

    def test_prefix_constraint_rejects_offsite(self):
        result, http = self.crawl(prefix="http://s/")
        rejected = [r for r in result["rejected"]
                    if r["reason"] == REASON_PREFIX]
        assert [r["url"] for r in rejected] == ["http://other/x.html"]
        assert ("GET", "http://other/x.html") not in http.log

    def test_scheme_rejections_logged(self):
        result, _ = self.crawl()
        schemes = [r for r in result["rejected"]
                   if r["reason"] == REASON_SCHEME]
        assert len(schemes) == 1 and schemes[0]["url"] == "mailto:me@s"

    def test_depth_constraint(self):
        result, http = self.crawl(max_depth=1)
        assert result["pages_scanned"] == 3  # index, a, b
        depth_rejected = {r["url"] for r in result["rejected"]
                          if r["reason"] == REASON_DEPTH}
        assert "http://s/c.html" in depth_rejected
        assert ("GET", "http://s/c.html") not in http.log

    def test_max_depth_seen_recorded(self):
        result, _ = self.crawl()
        assert result["max_depth_seen"] == 2

    def test_page_limit(self):
        result, _ = self.crawl(max_pages=2)
        assert result["pages_scanned"] == 2
        assert any(r["reason"] == "page-limit" for r in result["rejected"])

    def test_no_page_visited_twice(self):
        web = FakeHttp({
            "http://s/index.html": page("/a.html", "/a.html", "/index.html"),
            "http://s/a.html": page("/index.html"),
        })
        result, http = self.crawl(http=web)
        gets = [u for verb, u in http.log if verb == "GET"]
        assert len(gets) == len(set(gets))
        assert result["pages_scanned"] == 2

    def test_unreachable_start_is_invalid(self):
        web = FakeHttp({}, unreachable={"http://s/index.html"})
        result, _ = self.crawl(http=web)
        assert result["pages_scanned"] == 0
        assert result["invalid"][0]["status"] == 0

    def test_status_counts(self):
        result, _ = self.crawl(prefix="http://s/")
        assert result["status_counts"]["200"] == 4
        assert result["status_counts"]["404"] == 1

    def test_result_is_json_able(self):
        result, _ = self.crawl()
        assert json.loads(json.dumps(result)) == result

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WebbotConfig("not-a-url")
        with pytest.raises(ValueError):
            WebbotConfig("http://s/", max_depth=-1)

    def test_run_webbot_entry_point(self):
        class Env:
            http = self.simple_web()
        result = run_webbot({"start_url": "http://s/index.html",
                             "max_depth": 3}, Env)
        assert result["pages_scanned"] == 4

    def test_links_seen_counts_raw_references(self):
        result, _ = self.crawl()
        assert result["links_seen"] == 6


class TestSecondPass:
    def test_validates_distinct_urls_once(self):
        http = FakeHttp({"http://ok/x": ""})
        rejected = [
            {"url": "http://ok/x", "referrer": "p1", "reason": "prefix"},
            {"url": "http://ok/x", "referrer": "p2", "reason": "prefix"},
            {"url": "http://bad/y", "referrer": "p1", "reason": "depth"},
        ]
        invalid = validate_rejected(rejected, http)
        heads = [u for verb, u in http.log if verb == "HEAD"]
        assert sorted(heads) == ["http://bad/y", "http://ok/x"]
        assert [r["url"] for r in invalid] == ["http://bad/y"]

    def test_broken_url_reported_per_referrer(self):
        http = FakeHttp({})
        rejected = [
            {"url": "http://bad/y", "referrer": "p1", "reason": "prefix"},
            {"url": "http://bad/y", "referrer": "p2", "reason": "prefix"},
        ]
        invalid = validate_rejected(rejected, http)
        assert {r["referrer"] for r in invalid} == {"p1", "p2"}

    def test_scheme_rejections_not_probed(self):
        http = FakeHttp({})
        invalid = validate_rejected(
            [{"url": "mailto:x@y", "referrer": "p", "reason": "scheme"}],
            http)
        assert invalid == [] and http.log == []


class TestDeadLinkReport:
    def sample_result(self):
        return {
            "pages_scanned": 10, "bytes_scanned": 1000, "links_seen": 50,
            "invalid": [
                {"url": "http://s/d1", "referrer": "http://s/p1",
                 "reason": "http", "status": 404},
            ],
        }

    def test_from_webbot_result_merges_second_pass(self):
        second = [{"url": "http://x/d2", "referrer": "http://s/p2",
                   "reason": "http", "status": 0}]
        report = DeadLinkReport.from_webbot_result("s", self.sample_result(),
                                                   second)
        assert report.dead_count == 2
        assert report.rejected_checked == 1
        assert report.dead_urls() == ["http://s/d1", "http://x/d2"]

    def test_dedupes_same_url_and_referrer(self):
        result = self.sample_result()
        result["invalid"].append(dict(result["invalid"][0]))
        report = DeadLinkReport.from_webbot_result("s", result)
        assert report.dead_count == 1

    def test_by_referrer_grouping(self):
        second = [{"url": "http://x/d2", "referrer": "http://s/p1",
                   "reason": "http", "status": 0}]
        report = DeadLinkReport.from_webbot_result("s", self.sample_result(),
                                                   second)
        grouped = report.by_referrer()
        assert grouped["http://s/p1"] == ["http://s/d1", "http://x/d2"]

    def test_json_round_trip(self):
        report = DeadLinkReport.from_webbot_result("s", self.sample_result())
        clone = DeadLinkReport.from_json(report.to_json())
        assert clone.site == "s" and clone.dead_count == report.dead_count
        assert clone.pages_scanned == 10

    def test_render_text_mentions_everything(self):
        report = DeadLinkReport.from_webbot_result("s", self.sample_result())
        text = report.render_text()
        assert "http://s/d1" in text and "http://s/p1" in text
        assert "pages scanned : 10" in text

    def test_merge_reports(self):
        a = DeadLinkReport.from_webbot_result("s1", self.sample_result())
        b = DeadLinkReport.from_webbot_result("s2", self.sample_result())
        b.invalid[0]["url"] = "http://s2/other"
        merged = merge_reports([a, b], site="campus")
        assert merged.pages_scanned == 20
        assert merged.dead_count == 2
        assert merged.site == "campus"
