"""Tests for the sealing (confidentiality) wrapper."""

import base64

import pytest

from repro.core.briefcase import Briefcase
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.firewall.message import Message, SenderInfo
from repro.vm import loader
from repro.wrappers.sealing import (
    MAC_FOLDER,
    SEALED_FOLDER,
    SealingWrapper,
    seal,
    unseal,
)
from repro.wrappers.stack import WrapperSpec, WrapperStack, install_wrappers

KEY = b"0123456789abcdef0123456789abcdef"
CONFIG = SealingWrapper.make_key_config(KEY)


class FakeCtx:
    registration = None
    instance = "f00"


def make_message(briefcase):
    return Message(target=AgentUri.parse("peer"), briefcase=briefcase,
                   sender=SenderInfo("x", "h"))


class TestPrimitives:
    def test_seal_unseal_round_trip(self):
        sealed, mac = seal(KEY, b"n" * 16, b"secret payload")
        assert unseal(KEY, sealed, mac) == b"secret payload"

    def test_tamper_detected(self):
        sealed, mac = seal(KEY, b"n" * 16, b"secret payload")
        tampered = sealed[:-1] + bytes([sealed[-1] ^ 1])
        assert unseal(KEY, tampered, mac) is None

    def test_wrong_key_fails_mac(self):
        sealed, mac = seal(KEY, b"n" * 16, b"secret")
        assert unseal(b"other-key", sealed, mac) is None

    def test_ciphertext_differs_from_plaintext(self):
        sealed, _mac = seal(KEY, b"n" * 16, b"secret payload")
        assert b"secret" not in sealed


class TestWrapperUnits:
    def test_config_key_required(self):
        with pytest.raises(ValueError):
            SealingWrapper({})

    def test_send_hides_application_folders(self):
        wrapper = SealingWrapper(CONFIG)
        briefcase = Briefcase({"SECRET": ["classified"]})
        briefcase.put(wellknown.MEET_TOKEN, "tok")
        _target, out = wrapper.on_send(FakeCtx(), AgentUri.parse("p"),
                                       briefcase)
        assert not out.has("SECRET")
        assert out.has(SEALED_FOLDER) and out.has(MAC_FOLDER)
        # Routing metadata stays clear.
        assert out.get_text(wellknown.MEET_TOKEN) == "tok"
        assert b"classified" not in out.get_first(SEALED_FOLDER).data

    def test_receive_restores_folders(self):
        wrapper = SealingWrapper(CONFIG)
        briefcase = Briefcase({"SECRET": ["classified"]})
        _t, sealed_bc = wrapper.on_send(FakeCtx(), AgentUri.parse("p"),
                                        briefcase)
        message = wrapper.on_receive(FakeCtx(), make_message(sealed_bc))
        assert message.briefcase.get_text("SECRET") == "classified"
        assert not message.briefcase.has(SEALED_FOLDER)

    def test_tampered_message_consumed(self):
        wrapper = SealingWrapper(CONFIG)
        _t, sealed_bc = wrapper.on_send(
            FakeCtx(), AgentUri.parse("p"), Briefcase({"S": ["x"]}))
        sealed_bc.put(MAC_FOLDER, "0" * 64)
        assert wrapper.on_receive(FakeCtx(), make_message(sealed_bc)) is None
        assert wrapper.rejected_count == 1

    def test_wrong_key_peer_cannot_read(self):
        sender = SealingWrapper(CONFIG)
        eavesdropper = SealingWrapper(
            SealingWrapper.make_key_config(b"wrong-key"))
        _t, sealed_bc = sender.on_send(
            FakeCtx(), AgentUri.parse("p"), Briefcase({"S": ["x"]}))
        assert eavesdropper.on_receive(
            FakeCtx(), make_message(sealed_bc)) is None

    def test_plain_traffic_passes_unless_required(self):
        relaxed = SealingWrapper(CONFIG)
        strict = SealingWrapper({**CONFIG, "require_sealed": True})
        plain = make_message(Briefcase({"S": ["x"]}))
        assert relaxed.on_receive(FakeCtx(), plain) is plain
        assert strict.on_receive(FakeCtx(), plain) is None

    def test_empty_briefcase_not_sealed(self):
        wrapper = SealingWrapper(CONFIG)
        briefcase = Briefcase()
        briefcase.put(wellknown.MEET_TOKEN, "t")
        _t, out = wrapper.on_send(FakeCtx(), AgentUri.parse("p"), briefcase)
        assert not out.has(SEALED_FOLDER)

    def test_nonces_are_unique_per_message(self):
        wrapper = SealingWrapper(CONFIG)
        b1 = wrapper.on_send(FakeCtx(), AgentUri.parse("p"),
                             Briefcase({"S": ["same"]}))[1]
        b2 = wrapper.on_send(FakeCtx(), AgentUri.parse("p"),
                             Briefcase({"S": ["same"]}))[1]
        assert b1.get_first(SEALED_FOLDER).data != \
            b2.get_first(SEALED_FOLDER).data


def sealed_echo_agent(ctx, bc):
    """Echoes BODY back; the sealing wrapper is transparent to it."""
    while True:
        message = yield from ctx.recv()
        if message.briefcase.get_text(wellknown.OP) == "stop":
            return "stopped"
        reply = Briefcase({"ECHO": [message.briefcase.get_text("BODY")]})
        yield from ctx.reply(message, reply)


class TestEndToEnd:
    def test_sealed_channel_through_firewalls(self, pair_cluster):
        briefcase = Briefcase()
        loader.install_payload(briefcase,
                               loader.pack_ref(sealed_echo_agent),
                               agent_name="sealed-echo")
        install_wrappers(briefcase,
                         [WrapperSpec.by_ref(SealingWrapper, CONFIG)])
        driver = pair_cluster.node("alpha.test").driver()

        intercepted = []
        beta_firewall = pair_cluster.node("beta.test").firewall
        original = beta_firewall.receive_remote

        def spy(message):
            intercepted.append(message.briefcase.snapshot())
            return original(message)
        beta_firewall.receive_remote = spy

        def scenario():
            reply = yield from driver.meet(
                pair_cluster.vm_uri("beta.test"), briefcase, timeout=60)
            assert reply.get_text(wellknown.STATUS) == "ok", \
                reply.get_text(wellknown.ERROR)
            echo_uri = reply.get_text("AGENT-URI")
            # Seal only the application conversation, not the launch.
            driver.wrappers = WrapperStack([SealingWrapper(CONFIG)])
            request = Briefcase({"BODY": ["the plan"]})
            answer = yield from driver.meet(AgentUri.parse(echo_uri),
                                            request, timeout=60)
            stop = Briefcase()
            stop.put(wellknown.OP, "stop")
            yield from driver.send(AgentUri.parse(echo_uri), stop)
            return answer.get_text("ECHO")

        assert pair_cluster.run(scenario()) == "the plan"
        # The remote firewall saw sealed traffic only: no intercepted
        # briefcase exposes the plaintext BODY.
        data_messages = [bc for bc in intercepted if bc.has(SEALED_FOLDER)]
        assert data_messages, "sealed traffic must have crossed the wire"
        for bc in intercepted:
            for folder in bc:
                for element in folder:
                    assert b"the plan" not in element.data
