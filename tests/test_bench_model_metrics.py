"""Unit tests for the analytic cost model and the report renderer."""

import pytest

from repro.bench import model
from repro.bench.metrics import ExperimentReport, PaperClaim, render_table
from repro.sim.network import BANDWIDTH_1MBIT, BANDWIDTH_100MBIT


WORKLOAD = model.CrawlWorkload(pages=900, total_page_bytes=3_000_000)
MACHINE = model.MachineParams()
AGENT = model.AgentParams()
LAN = model.LinkParams(0.0005, BANDWIDTH_100MBIT)
WAN = model.LinkParams(0.05, BANDWIDTH_1MBIT)


class TestCostModel:
    def test_stationary_slower_on_worse_links(self):
        assert model.stationary_seconds(WORKLOAD, WAN, MACHINE) > \
            model.stationary_seconds(WORKLOAD, LAN, MACHINE)

    def test_mobile_nearly_link_independent(self):
        lan = model.mobile_seconds(WORKLOAD, LAN, MACHINE, AGENT)
        wan = model.mobile_seconds(WORKLOAD, WAN, MACHINE, AGENT)
        assert wan < lan * 1.2

    def test_speedup_grows_with_volume(self):
        small = model.CrawlWorkload(pages=10, total_page_bytes=33_000)
        large = model.CrawlWorkload(pages=2000, total_page_bytes=6_600_000)
        assert model.predicted_speedup(large, LAN, MACHINE, AGENT) > \
            model.predicted_speedup(small, LAN, MACHINE, AGENT)

    def test_speedup_grows_as_bandwidth_falls(self):
        assert model.predicted_speedup(WORKLOAD, WAN, MACHINE, AGENT) > \
            model.predicted_speedup(WORKLOAD, LAN, MACHINE, AGENT)

    def test_crossover_pages_monotone_in_overheads(self):
        cheap = model.AgentParams(agent_bytes=1_000, report_bytes=100,
                                  launch_overhead=0.001)
        costly = model.AgentParams(agent_bytes=10_000_000,
                                   report_bytes=100,
                                   launch_overhead=0.001)
        assert model.crossover_pages(WAN, MACHINE, cheap, 3300) <= \
            model.crossover_pages(WAN, MACHINE, costly, 3300)

    def test_crossover_pages_boundary_is_real(self):
        pages = model.crossover_pages(WAN, MACHINE, AGENT, 3300)
        if 1 < pages < 1_000_000:
            at = model.CrawlWorkload(pages, int(pages * 3300))
            below = model.CrawlWorkload(pages - 1, int((pages - 1) * 3300))
            assert model.predicted_speedup(at, WAN, MACHINE, AGENT) > 1
            assert model.predicted_speedup(below, WAN, MACHINE,
                                           AGENT) <= 1

    def test_crossover_bandwidth_brackets(self):
        # With zero link latency, the only thing the stationary robot
        # saves is the mobile agent's one-time shipping + launch cost —
        # so at extreme bandwidths stationary wins and a real crossover
        # exists (mobile wins below it).
        zero_lat = 0.0
        crossover = model.crossover_bandwidth(WORKLOAD, zero_lat,
                                              MACHINE, AGENT)
        assert 1e3 < crossover < 1e12
        faster = model.LinkParams(zero_lat, crossover * 10)
        slower = model.LinkParams(zero_lat, crossover / 10)
        assert model.predicted_speedup(WORKLOAD, faster, MACHINE,
                                       AGENT) <= 1
        assert model.predicted_speedup(WORKLOAD, slower, MACHINE,
                                       AGENT) >= 1

    def test_overweight_agent_never_pays(self):
        # Shipping a 50 MB agent to fetch 4 KB cannot pay at any
        # bandwidth: both costs scale identically with the link.
        tiny = model.CrawlWorkload(pages=2, total_page_bytes=4_000)
        heavy = model.AgentParams(agent_bytes=50_000_000)
        for bandwidth in (1e3, 1e6, 1e9):
            link = model.LinkParams(0.0005, bandwidth)
            assert model.predicted_speedup(tiny, link, MACHINE,
                                           heavy) < 1

    def test_machine_params_from_models(self):
        from repro.web.client import ClientModel
        from repro.web.server import ServerModel
        params = model.MachineParams.from_models(ServerModel(),
                                                 ClientModel())
        assert params.server_per_request == 0.003
        assert params.handshake_rtts == 1


class TestReportRendering:
    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = table.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "30" in table and "0.001000" in table

    def test_experiment_report_render(self):
        report = ExperimentReport("X1", "demo")
        report.headers = ["k", "v"]
        report.add_row("speed", 1.5)
        report.add_claim("it works", "it did", True)
        text = report.render()
        assert "X1" in text and "REPRODUCED" in text and "speed" in text
        assert report.all_claims_hold

    def test_diverged_claim_renders_and_flags(self):
        report = ExperimentReport("X2", "demo")
        report.add_claim("should hold", "did not", False)
        assert not report.all_claims_hold
        assert "DIVERGED" in report.render()

    def test_paper_claim_render(self):
        claim = PaperClaim("E9", "paper says", "we saw", True)
        assert "paper says" in claim.render()
