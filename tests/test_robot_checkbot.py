"""Tests for the second robot (Checkbot) and its wrapper glue."""

import pytest

from repro.robot.checkbot import (
    Checkbot,
    CheckbotConfig,
    absolutize,
    find_hrefs,
    host_of,
    run_checkbot,
)
from repro.mining.generality import condense_checkbot_result


class FakeResponse:
    def __init__(self, status, body="", location=None,
                 content_type="text/html"):
        self.status = status
        self.body = body
        self.location = location
        self.content_type = content_type
        self.ok = 200 <= status < 300


class FakeWeb:
    def __init__(self, pages=None, redirects=None):
        self.pages = pages or {}
        self.redirects = redirects or {}
        self.log = []

    def _answer(self, url, with_body):
        if url in self.redirects:
            return FakeResponse(301, location=self.redirects[url])
        if url in self.pages:
            return FakeResponse(200,
                                self.pages[url] if with_body else "")
        return FakeResponse(404)

    def get(self, url):
        self.log.append(("GET", url))
        return self._answer(url, True)

    def head(self, url):
        self.log.append(("HEAD", url))
        return self._answer(url, False)


def page(*hrefs):
    return "".join(f'<a href="{h}">x</a>' for h in hrefs)


class TestCheckbotHelpers:
    def test_find_hrefs_ignores_src(self):
        html = '<a href="/a">x</a><img src="/i.png">'
        assert find_hrefs(html) == ["/a"]

    @pytest.mark.parametrize("base,ref,expected", [
        ("http://h/d/p.html", "q.html", "http://h/d/q.html"),
        ("http://h/d/p.html", "/top", "http://h/top"),
        ("http://h/d/p.html", "http://x/y", "http://x/y"),
        ("http://h/d/p.html", "../up", "http://h/up"),
        ("http://h/d/p.html", "mailto:a@b", None),
        ("http://h/d/p.html", "#frag", None),
    ])
    def test_absolutize(self, base, ref, expected):
        assert absolutize(base, ref) == expected

    def test_host_of(self):
        assert host_of("http://WWW.X.COM/path") == "www.x.com"
        assert host_of("ftp://x/") is None

    def test_config_defaults_hosts_from_starts(self):
        config = CheckbotConfig(["http://a/x", "http://b/y"])
        assert config.allowed_hosts == ["a", "b"]

    def test_config_requires_start(self):
        with pytest.raises(ValueError):
            CheckbotConfig([])


class TestCheckbotCrawl:
    def world(self):
        return FakeWeb({
            "http://s/index.html": page("/a.html", "http://ext/alive",
                                        "http://ext/dead"),
            "http://s/a.html": page("/missing.html", "/index.html"),
            "http://ext/alive": page(),
        })

    def run(self, web=None, **kwargs):
        web = web or self.world()
        config = CheckbotConfig(["http://s/index.html"],
                                allowed_hosts=["s"], **kwargs)
        return Checkbot(config, web).run(), web

    def test_breadth_first_order(self):
        web = FakeWeb({
            "http://s/index.html": page("/a.html", "/b.html"),
            "http://s/a.html": page("/a-child.html"),
            "http://s/b.html": page(),
            "http://s/a-child.html": page(),
        })
        _result, web = self.run(web)
        gets = [u for verb, u in web.log if verb == "GET"]
        # BFS: /b.html before /a.html's child.
        assert gets.index("http://s/b.html") < \
            gets.index("http://s/a-child.html")

    def test_internal_dead_found_via_get(self):
        result, _web = self.run()
        broken = {r["href"]: r for r in result["broken"]}
        assert "http://s/missing.html" in broken
        assert broken["http://s/missing.html"]["code"] == 404
        assert broken["http://s/missing.html"]["parent"] == \
            "http://s/a.html"

    def test_offsite_validated_inline_not_crawled(self):
        result, web = self.run()
        assert ("HEAD", "http://ext/dead") in web.log
        assert ("GET", "http://ext/alive") not in web.log
        broken = {r["href"] for r in result["broken"]}
        assert "http://ext/dead" in broken
        assert "http://ext/alive" not in broken

    def test_offsite_head_cached(self):
        web = FakeWeb({
            "http://s/index.html": page("/a.html", "http://ext/dead"),
            "http://s/a.html": page("http://ext/dead"),
        })
        self.run(web)
        heads = [u for verb, u in web.log if u == "http://ext/dead"]
        assert len(heads) == 1

    def test_no_page_visited_twice(self):
        _result, web = self.run()
        gets = [u for verb, u in web.log if verb == "GET"]
        assert len(gets) == len(set(gets))

    def test_redirects_followed(self):
        web = FakeWeb(
            pages={"http://s/index.html": page("/moved"),
                   "http://s/new.html": page()},
            redirects={"http://s/moved": "http://s/new.html"})
        result, _web = self.run(web)
        assert result["broken"] == []
        assert result["ok"] == 2

    def test_max_pages(self):
        result, _web = self.run(max_pages=1)
        assert result["checked"] == 1

    def test_entry_point(self):
        class Env:
            http = self.world()
        result = run_checkbot({"start_urls": ["http://s/index.html"],
                               "allowed_hosts": ["s"]}, Env)
        assert result["version"].startswith("repro-checkbot")
        assert result["checked"] >= 2


class TestCondenser:
    def test_maps_to_common_report(self):
        result = {
            "ok": 7, "bytes_fetched": 1000, "checked": 9,
            "offsite_checked": 3,
            "broken": [{"href": "http://s/x", "parent": "http://s/",
                        "code": 404}],
        }
        condensed = condense_checkbot_result(result, {"site": "s"})
        assert condensed["site"] == "s"
        assert condensed["pages_scanned"] == 7
        assert condensed["invalid"] == [{
            "url": "http://s/x", "referrer": "http://s/",
            "reason": "http", "status": 404}]
        assert condensed["links_seen"] == 12
