"""Tests for the standard service agents."""

import base64

import pytest

from repro.core.briefcase import Briefcase
from repro.core.errors import ServiceError, TaxError
from repro.core import wellknown
from repro.core.uri import AgentUri
from repro.services.vfs import VirtualFS
from repro.vm import loader


def call(cluster, service, op, briefcase=None, host="solo.test",
         principal="system", driver=None):
    driver = driver or cluster.node(host).driver(
        name=f"caller-{op}", principal=principal)

    def scenario():
        reply = yield from driver.call_service(service, op,
                                               briefcase or Briefcase())
        return reply
    return cluster.run(scenario())


class TestVirtualFS:
    def test_write_read_round_trip(self):
        vfs = VirtualFS()
        vfs.write("/a/b.txt", b"data", owner="alice")
        assert vfs.read("/a/b.txt") == b"data"
        assert vfs.owner_of("/a/b.txt") == "alice"

    def test_missing_file(self):
        with pytest.raises(ServiceError):
            VirtualFS().read("/nope")

    def test_path_validation(self):
        vfs = VirtualFS()
        for bad in ("relative.txt", "/a/../b"):
            with pytest.raises(ServiceError):
                vfs.write(bad, b"")

    def test_quota_enforced(self):
        vfs = VirtualFS(quota_bytes=10)
        vfs.write("/a", b"12345")
        with pytest.raises(ServiceError, match="quota"):
            vfs.write("/b", b"123456")
        # Overwriting within quota is fine.
        vfs.write("/a", b"1234567890")

    def test_delete_and_listdir(self):
        vfs = VirtualFS()
        vfs.write("/d/x", b"1")
        vfs.write("/d/y", b"2")
        vfs.write("/other", b"3")
        assert vfs.listdir("/d") == ["/d/x", "/d/y"]
        assert vfs.delete("/d/x") and not vfs.delete("/d/x")

    def test_stat(self):
        vfs = VirtualFS()
        vfs.write("/f", b"abc", owner="bob")
        assert vfs.stat("/f") == {"path": "/f", "size": 3, "owner": "bob"}


class TestAgFs:
    def test_write_then_read(self, single_cluster):
        briefcase = Briefcase()
        briefcase.put(wellknown.ARGS, {
            "path": "/notes.txt",
            "data_b64": base64.b64encode(b"hello").decode()})
        call(single_cluster, "ag_fs", "write", briefcase)

        read_request = Briefcase()
        read_request.put(wellknown.ARGS, {"path": "/notes.txt"})
        reply = call(single_cluster, "ag_fs", "read", read_request)
        results = reply.get_json(wellknown.RESULTS)
        assert base64.b64decode(results["data_b64"]) == b"hello"

    def test_owner_protection(self, single_cluster):
        briefcase = Briefcase()
        briefcase.put(wellknown.ARGS, {
            "path": "/mine.txt",
            "data_b64": base64.b64encode(b"v1").decode()})
        call(single_cluster, "ag_fs", "write", briefcase,
             principal="alice")
        overwrite = Briefcase()
        overwrite.put(wellknown.ARGS, {
            "path": "/mine.txt",
            "data_b64": base64.b64encode(b"v2").decode()})
        with pytest.raises(TaxError, match="may not modify"):
            call(single_cluster, "ag_fs", "write", overwrite,
                 principal="bob")

    def test_list_and_stat_and_delete(self, single_cluster):
        briefcase = Briefcase()
        briefcase.put(wellknown.ARGS, {
            "path": "/dir/a.txt",
            "data_b64": base64.b64encode(b"xy").decode()})
        call(single_cluster, "ag_fs", "write", briefcase)

        list_request = Briefcase()
        list_request.put(wellknown.ARGS, {"path": "/dir"})
        reply = call(single_cluster, "ag_fs", "list", list_request)
        assert reply.get_json(wellknown.RESULTS)["paths"] == ["/dir/a.txt"]

        stat_request = Briefcase()
        stat_request.put(wellknown.ARGS, {"path": "/dir/a.txt"})
        reply = call(single_cluster, "ag_fs", "stat", stat_request)
        assert reply.get_json(wellknown.RESULTS)["size"] == 2

        delete_request = Briefcase()
        delete_request.put(wellknown.ARGS, {"path": "/dir/a.txt"})
        reply = call(single_cluster, "ag_fs", "delete", delete_request)
        assert reply.get_json(wellknown.RESULTS)["deleted"] is True

    def test_missing_args_is_error(self, single_cluster):
        with pytest.raises(TaxError, match="path"):
            call(single_cluster, "ag_fs", "read", Briefcase())


class TestAgCabinet:
    def test_put_get_round_trip(self, single_cluster):
        briefcase = Briefcase({"DATA": ["v1", "v2"]})
        briefcase.put("DRAWER", "d1")
        call(single_cluster, "ag_cabinet", "put", briefcase)

        get_request = Briefcase()
        get_request.put("DRAWER", "d1")
        reply = call(single_cluster, "ag_cabinet", "get", get_request)
        assert reply.get("DATA").texts() == ["v1", "v2"]

    def test_drawers_are_principal_scoped(self, single_cluster):
        briefcase = Briefcase({"SECRET": ["alice-data"]})
        briefcase.put("DRAWER", "d")
        call(single_cluster, "ag_cabinet", "put", briefcase,
             principal="alice")
        get_request = Briefcase()
        get_request.put("DRAWER", "d")
        with pytest.raises(TaxError, match="no drawer"):
            call(single_cluster, "ag_cabinet", "get", get_request,
                 principal="bob")

    def test_list_and_drop(self, single_cluster):
        briefcase = Briefcase({"X": ["1"]})
        briefcase.put("DRAWER", "keepsake")
        call(single_cluster, "ag_cabinet", "put", briefcase)
        reply = call(single_cluster, "ag_cabinet", "list")
        assert "keepsake" in reply.get_json(wellknown.RESULTS)["drawers"]

        drop_request = Briefcase()
        drop_request.put("DRAWER", "keepsake")
        reply = call(single_cluster, "ag_cabinet", "drop", drop_request)
        assert reply.get_json(wellknown.RESULTS)["dropped"] is True

    def test_missing_drawer_field(self, single_cluster):
        with pytest.raises(TaxError, match="DRAWER"):
            call(single_cluster, "ag_cabinet", "put", Briefcase())


class TestAgExec:
    def exec_binary(self, cluster, program_source, entry, args,
                    principal="vendor", trusted=True):
        cluster.add_principal(principal, trusted=trusted)
        inner = loader.compile_source(
            loader.pack_source(program_source, entry))
        payload = loader.pack_binary_list(
            [("x86-unix", inner)], cluster.keychain, principal)
        briefcase = Briefcase()
        loader.install_payload(briefcase, payload)
        briefcase.put(wellknown.ARGS, args)
        return call(cluster, "ag_exec", "exec", briefcase)

    def test_runs_program_and_returns_result(self, single_cluster):
        source = ("def main(args, env):\n"
                  "    return {'doubled': args['n'] * 2}\n")
        reply = self.exec_binary(single_cluster, source, "main", {"n": 21})
        assert reply.get_json(wellknown.RESULTS) == {"doubled": 42}

    def test_untrusted_program_refused(self, single_cluster):
        source = "def main(args, env):\n    return 1\n"
        with pytest.raises(TaxError, match="not trusted"):
            self.exec_binary(single_cluster, source, "main", {},
                             principal="shady", trusted=False)

    def test_program_crash_reported(self, single_cluster):
        source = "def main(args, env):\n    raise KeyError('oops')\n"
        with pytest.raises(TaxError, match="KeyError"):
            self.exec_binary(single_cluster, source, "main", {})

    def test_program_charges_env_ledger(self, single_cluster):
        source = ("def main(args, env):\n"
                  "    env.ledger.add_cpu(5.0)\n"
                  "    return 'done'\n")
        before = single_cluster.kernel.now
        self.exec_binary(single_cluster, source, "main", {})
        assert single_cluster.kernel.now - before >= 5.0

    def test_program_uses_vfs(self, single_cluster):
        source = ("def main(args, env):\n"
                  "    env.fs.write('/out.txt', b'written', 'vendor')\n"
                  "    return 'ok'\n")
        self.exec_binary(single_cluster, source, "main", {})
        node = single_cluster.node("solo.test")
        assert node.vfs.read("/out.txt") == b"written"

    def test_http_unavailable_without_web(self, single_cluster):
        source = ("def main(args, env):\n"
                  "    return env.http.get('http://x/').status\n")
        with pytest.raises(TaxError, match="web deployment"):
            self.exec_binary(single_cluster, source, "main", {})

    def test_tool_op_compiles(self, single_cluster):
        briefcase = Briefcase()
        briefcase.put("TOOL", "cc")
        loader.install_payload(
            briefcase, loader.pack_source("def f():\n    return 9\n", "f"))
        reply = call(single_cluster, "ag_exec", "tool", briefcase)
        compiled = loader.read_payload(reply)
        assert compiled.kind == loader.KIND_MARSHAL
        assert loader.materialize_marshal(compiled)() == 9

    def test_unknown_tool(self, single_cluster):
        briefcase = Briefcase()
        briefcase.put("TOOL", "linker")
        loader.install_payload(briefcase, loader.pack_source("x = 1", "x"))
        with pytest.raises(TaxError, match="no installed tool"):
            call(single_cluster, "ag_exec", "tool", briefcase)

    def test_exec_requires_binary_kind(self, single_cluster):
        briefcase = Briefcase()
        loader.install_payload(briefcase, loader.pack_source("x = 1", "x"))
        with pytest.raises(TaxError, match="signed binary"):
            call(single_cluster, "ag_exec", "exec", briefcase)


class TestAgCron:
    def test_deferred_delivery(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            request = Briefcase({"NOTE": ["wake up"]})
            request.put(wellknown.ARGS,
                        {"delay": 10, "target": str(driver.uri)})
            reply = yield from driver.call_service("ag_cron", "schedule",
                                                   request)
            job = reply.get_json(wellknown.RESULTS)["job_id"]
            message = yield from driver.recv(timeout=60)
            return job, single_cluster.kernel.now, \
                message.briefcase.get_text("NOTE")
        job, now, note = single_cluster.run(scenario())
        assert job.startswith("job-")
        assert now >= 10
        assert note == "wake up"

    def test_cancel_prevents_delivery(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            request = Briefcase({"NOTE": ["never"]})
            request.put(wellknown.ARGS,
                        {"delay": 10, "target": str(driver.uri)})
            reply = yield from driver.call_service("ag_cron", "schedule",
                                                   request)
            job = reply.get_json(wellknown.RESULTS)["job_id"]
            cancel = Briefcase()
            cancel.put(wellknown.ARGS, {"job_id": job})
            reply = yield from driver.call_service("ag_cron", "cancel",
                                                   cancel)
            assert reply.get_json(wellknown.RESULTS)["cancelled"] is True
            from repro.core.errors import CommTimeoutError
            with pytest.raises(CommTimeoutError):
                yield from driver.recv(timeout=20)
            return "quiet"
        assert single_cluster.run(scenario()) == "quiet"

    def test_bad_schedule_args(self, single_cluster):
        request = Briefcase()
        request.put(wellknown.ARGS, {"delay": -1, "target": "x"})
        with pytest.raises(TaxError):
            call(single_cluster, "ag_cron", "schedule", request)

    def test_list_jobs(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            request = Briefcase()
            request.put(wellknown.ARGS,
                        {"delay": 1000, "target": str(driver.uri)})
            yield from driver.call_service("ag_cron", "schedule", request)
            reply = yield from driver.call_service("ag_cron", "list")
            return reply.get_json(wellknown.RESULTS)["jobs"]
        assert len(single_cluster.run(scenario())) == 1


class TestAgLocator:
    def test_update_and_lookup(self, single_cluster):
        request = Briefcase()
        request.put(wellknown.ARGS,
                    {"name": "roamer", "uri": "tacoma://h//bot:1f"})
        call(single_cluster, "ag_locator", "update", request)

        lookup = Briefcase()
        lookup.put(wellknown.ARGS, {"name": "roamer"})
        reply = call(single_cluster, "ag_locator", "lookup", lookup)
        assert reply.get_json(wellknown.RESULTS)["uri"] == \
            "tacoma://h//bot:1f"

    def test_lookup_unknown(self, single_cluster):
        lookup = Briefcase()
        lookup.put(wellknown.ARGS, {"name": "ghost"})
        with pytest.raises(TaxError, match="no location"):
            call(single_cluster, "ag_locator", "lookup", lookup)

    def test_name_ownership(self, single_cluster):
        request = Briefcase()
        request.put(wellknown.ARGS, {"name": "n", "uri": "tacoma://a//x"})
        call(single_cluster, "ag_locator", "update", request,
             principal="alice")
        steal = Briefcase()
        steal.put(wellknown.ARGS, {"name": "n", "uri": "tacoma://b//y"})
        with pytest.raises(TaxError, match="may not update"):
            call(single_cluster, "ag_locator", "update", steal,
                 principal="mallory")

    def test_remove(self, single_cluster):
        request = Briefcase()
        request.put(wellknown.ARGS, {"name": "n", "uri": "tacoma://a//x"})
        call(single_cluster, "ag_locator", "update", request,
             principal="alice")
        remove = Briefcase()
        remove.put(wellknown.ARGS, {"name": "n"})
        reply = call(single_cluster, "ag_locator", "remove", remove,
                     principal="alice")
        assert reply.get_json(wellknown.RESULTS)["removed"] is True

    def test_list_entries(self, single_cluster):
        request = Briefcase()
        request.put(wellknown.ARGS, {"name": "m", "uri": "tacoma://a//x"})
        call(single_cluster, "ag_locator", "update", request)
        reply = call(single_cluster, "ag_locator", "list")
        assert reply.get_json(wellknown.RESULTS)["entries"]["m"] == \
            "tacoma://a//x"


class TestServiceProtocol:
    def test_unknown_op_is_error_reply(self, single_cluster):
        with pytest.raises(TaxError, match="unknown op"):
            call(single_cluster, "ag_cabinet", "teleport")

    def test_missing_op_is_error_reply(self, single_cluster):
        driver = single_cluster.node("solo.test").driver()

        def scenario():
            request = Briefcase()  # no OP folder at all
            reply = yield from driver.meet(AgentUri.parse("ag_fs"),
                                           request, timeout=30)
            return (reply.get_text(wellknown.STATUS),
                    reply.get_text(wellknown.ERROR))
        status, error = single_cluster.run(scenario())
        assert status == "error" and "unknown op" in error

    def test_failure_counters(self, single_cluster):
        service = single_cluster.node("solo.test").services["ag_fs"]
        before_failed = service.requests_failed
        with pytest.raises(TaxError):
            call(single_cluster, "ag_fs", "bogus")
        assert service.requests_failed == before_failed + 1
