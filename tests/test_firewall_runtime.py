"""Integration-level tests for the firewall as a reference monitor."""

import pytest

from repro.core import codec, wellknown
from repro.core.briefcase import Briefcase
from repro.core.errors import AccessDeniedError
from repro.core.uri import AgentUri
from repro.firewall.firewall import code_signing_bytes
from repro.firewall.message import Message, SenderInfo
from repro.firewall.policy import OP_SEND
from repro.vm import loader


def collector(node, name="sink"):
    """A raw registered mailbox for observing deliveries."""
    from repro.agent.mailbox import Mailbox
    mailbox = Mailbox(node.kernel)
    node.firewall.register_agent(
        name=name, principal="system", vm_name="vm_python",
        deliver_fn=mailbox.deliver)
    return mailbox


class TestLocalDispatch:
    def test_delivery_to_registered_agent(self, single_cluster):
        node = single_cluster.node("solo.test")
        mailbox = collector(node)
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("sink"),
                                   Briefcase({"X": ["1"]}))
        single_cluster.run(scenario())
        assert len(mailbox) == 1

    def test_queue_ahead_of_arrival(self, single_cluster):
        """Messages can be sent before the receiving agent exists."""
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("late-agent"),
                                   Briefcase({"X": ["early"]}),
                                   queue_timeout=30)
            yield single_cluster.kernel.timeout(5)
            mailbox = collector(node, "late-agent")
            yield single_cluster.kernel.timeout(0)
            return len(mailbox)
        assert single_cluster.run(scenario()) == 1
        assert node.firewall.stats.queued == 1

    def test_queued_message_expires(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("never"),
                                   Briefcase(), queue_timeout=2)
            yield single_cluster.kernel.timeout(5)
            mailbox = collector(node, "never")
            yield single_cluster.kernel.timeout(1)
            return len(mailbox)
        assert single_cluster.run(scenario()) == 0
        assert node.firewall.stats.expired == 1

    def test_zero_timeout_message_dropped_when_absent(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            ok = yield from driver.send(AgentUri.parse("absent"),
                                        Briefcase(), queue_timeout=0)
            return ok
        assert single_cluster.run(scenario()) is False
        assert node.firewall.stats.rejected >= 1

    def test_policy_denial_raises(self, single_cluster):
        node = single_cluster.node("solo.test")
        collector(node)
        node.firewall.policy.deny("system", OP_SEND)
        driver = node.driver()

        def scenario():
            with pytest.raises(AccessDeniedError):
                yield from driver.send(AgentUri.parse("sink"), Briefcase())
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_local_dispatch_costs_time(self, single_cluster):
        node = single_cluster.node("solo.test")
        collector(node)
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("sink"), Briefcase())
            return single_cluster.kernel.now
        assert single_cluster.run(scenario()) > 0


class TestRemoteForwarding:
    def test_bytes_charged_match_encoding(self, pair_cluster):
        alpha = pair_cluster.node("alpha.test")
        beta = pair_cluster.node("beta.test")
        collector(beta, "remote-sink")
        driver = alpha.driver()
        briefcase = Briefcase({"PAYLOAD": [b"z" * 1000]})

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/remote-sink"),
                briefcase)
        pair_cluster.run(scenario())
        stats = pair_cluster.network.stats_between("alpha.test", "beta.test")
        # The driver's send snapshots and adds nothing, so the wire size
        # is the encoded briefcase + envelope overhead.
        from repro.firewall.message import ENVELOPE_OVERHEAD_BYTES
        assert stats.payload_bytes == \
            codec.encoded_size(briefcase) + ENVELOPE_OVERHEAD_BYTES
        assert alpha.firewall.stats.forwarded_remote == 1
        assert beta.firewall.stats.received_remote == 1

    def test_briefcase_isolated_across_transport(self, pair_cluster):
        beta = pair_cluster.node("beta.test")
        mailbox = collector(beta, "remote-sink")
        driver = pair_cluster.node("alpha.test").driver()
        briefcase = Briefcase({"F": ["original"]})

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/remote-sink"), briefcase)
        pair_cluster.run(scenario())
        briefcase.folder("F").replace(["mutated-after-send"])
        delivered = mailbox.try_receive()
        assert delivered.briefcase.get_text("F") == "original"

    def test_self_addressed_remote_uri_is_local(self, single_cluster):
        node = single_cluster.node("solo.test")
        mailbox = collector(node)
        driver = node.driver()

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://solo.test/sink"), Briefcase())
        single_cluster.run(scenario())
        assert len(mailbox) == 1
        assert single_cluster.network.total_remote_bytes() == 0


class TestAuthentication:
    def signed_briefcase(self, cluster, principal, tamper=False):
        cluster.add_principal(principal)
        payload = loader.pack_source("def f(ctx, bc):\n    return 1\n", "f")
        briefcase = Briefcase()
        loader.install_payload(briefcase, payload, agent_name="agent")
        signature = cluster.keychain.sign(
            principal, code_signing_bytes(briefcase))
        briefcase.put(wellknown.SIGNATURE, signature.to_text())
        if tamper:
            briefcase.folder(wellknown.CODE).replace([b"evil"])
        return briefcase

    def test_valid_signature_authenticates(self, pair_cluster):
        briefcase = self.signed_briefcase(pair_cluster, "alice")
        beta = pair_cluster.node("beta.test")
        mailbox = collector(beta, "sink")
        driver = pair_cluster.node("alpha.test").driver(principal="alice")

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/sink"), briefcase)
        pair_cluster.run(scenario())
        message = mailbox.try_receive()
        assert message.sender.principal == "alice"
        assert message.sender.authenticated

    def test_tampered_code_rejected_at_arrival(self, pair_cluster):
        briefcase = self.signed_briefcase(pair_cluster, "alice",
                                          tamper=True)
        beta = pair_cluster.node("beta.test")
        mailbox = collector(beta, "sink")
        driver = pair_cluster.node("alpha.test").driver(principal="alice")

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/sink"), briefcase)
        pair_cluster.run(scenario())
        assert len(mailbox) == 0
        assert beta.firewall.stats.rejected == 1

    def test_unsigned_briefcase_is_unauthenticated(self, pair_cluster):
        beta = pair_cluster.node("beta.test")
        mailbox = collector(beta, "sink")
        driver = pair_cluster.node("alpha.test").driver(principal="alice")
        pair_cluster.add_principal("alice")

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/sink"),
                Briefcase({"X": ["unsigned"]}))
        pair_cluster.run(scenario())
        message = mailbox.try_receive()
        assert message.sender.principal == "alice"
        assert not message.sender.authenticated


class TestAdminAgent:
    def admin_call(self, cluster, op, args=None):
        driver = cluster.node("solo.test").driver()

        def scenario():
            briefcase = Briefcase()
            if args is not None:
                briefcase.put(wellknown.ARGS, args)
            reply = yield from driver.call_service("firewall", op,
                                                   briefcase)
            return reply.get_json(wellknown.RESULTS)
        return cluster.run(scenario())

    def test_list_shows_standard_agents(self, single_cluster):
        results = self.admin_call(single_cluster, "list")
        names = {a["name"] for a in results["agents"]}
        assert {"vm_python", "vm_bin", "vm_source", "ag_exec", "ag_cc",
                "ag_fs", "ag_cabinet", "ag_cron", "ag_locator",
                "firewall"} <= names

    def test_stat_reports_runtime(self, single_cluster):
        agents = self.admin_call(single_cluster, "list")["agents"]
        instance = agents[0]["instance"]
        stat = self.admin_call(single_cluster, "stat",
                               {"instance": instance})
        assert stat["instance"] == instance
        assert stat["alive"] is True

    def test_kill_unregisters(self, single_cluster):
        node = single_cluster.node("solo.test")
        mailbox = collector(node, "victim")
        registration = node.firewall.registry.matches(
            AgentUri.parse("victim"), "system")[0]
        result = self.admin_call(single_cluster, "kill",
                                 {"instance": registration.instance})
        assert result["killed"] is True
        assert node.firewall.registry.matches(
            AgentUri.parse("victim"), "system") == []
        del mailbox

    def test_stop_and_resume(self, single_cluster):
        node = single_cluster.node("solo.test")
        mailbox = collector(node, "pausee")
        registration = node.firewall.registry.matches(
            AgentUri.parse("pausee"), "system")[0]
        assert self.admin_call(single_cluster, "stop",
                               {"instance": registration.instance})["stopped"]
        driver = node.driver(name="d2")

        def scenario():
            yield from driver.send(AgentUri.parse("pausee"), Briefcase())
        single_cluster.run(scenario())
        assert len(mailbox) == 0  # buffered, not delivered
        assert self.admin_call(single_cluster, "resume",
                               {"instance": registration.instance})["resumed"]
        assert len(mailbox) == 1

    def test_admin_denied_for_unprivileged(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver(name="rando", principal="rando")
        from repro.core.errors import TaxError

        def scenario():
            with pytest.raises(TaxError, match="not.*authorized|denied"):
                yield from driver.call_service("firewall", "list")
            return "done"
        assert single_cluster.run(scenario()) == "done"

    def test_kill_running_agent_interrupts_process(self, single_cluster):
        node = single_cluster.node("solo.test")
        driver = node.driver()
        briefcase = Briefcase()
        loader.install_payload(
            briefcase, loader.pack_ref(sleeper_agent), agent_name="sleeper")

        def scenario():
            reply = yield from driver.meet(
                single_cluster.vm_uri("solo.test"), briefcase, timeout=30)
            uri = AgentUri.parse(reply.get_text("AGENT-URI"))
            args = Briefcase()
            args.put(wellknown.ARGS, {"instance": uri.instance})
            args.put(wellknown.OP, "kill")
            reply2 = yield from driver.meet(AgentUri.parse("firewall"),
                                            args, timeout=30)
            return reply2.get_json(wellknown.RESULTS)
        result = single_cluster.run(scenario())
        assert result["killed"] is True


class TestTelemetryCounters:
    """The firewall feeds the system metrics registry when enabled."""

    def test_queue_timeout_increments_expired_counter(self, single_cluster):
        single_cluster.telemetry.enable()
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("never"),
                                   Briefcase(), queue_timeout=2)
            yield single_cluster.kernel.timeout(5)
        single_cluster.run(scenario())
        metrics = single_cluster.telemetry.metrics
        assert metrics.value("fw.queue_expired", host="solo.test") == 1
        wait = metrics.value("fw.queue_wait_seconds",
                             host="solo.test", outcome="expired")
        assert wait.count == 1
        spans = single_cluster.telemetry.tracer.find(
            name="fw.queue_wait", track="fw:solo.test")
        assert [s.args["outcome"] for s in spans] == ["expired"]
        assert spans[0].duration == pytest.approx(2.0)

    def test_queue_delivery_increments_delivered_outcome(self,
                                                         single_cluster):
        single_cluster.telemetry.enable()
        node = single_cluster.node("solo.test")
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("late"),
                                   Briefcase(), queue_timeout=30)
            yield single_cluster.kernel.timeout(5)
            collector(node, "late")
            yield single_cluster.kernel.timeout(0)
        single_cluster.run(scenario())
        metrics = single_cluster.telemetry.metrics
        wait = metrics.value("fw.queue_wait_seconds",
                             host="solo.test", outcome="delivered")
        assert wait.count == 1
        assert metrics.value("fw.queue_expired", host="solo.test") is None

    def test_auth_failure_increments_rejected_counter(self, pair_cluster):
        pair_cluster.telemetry.enable()
        case = TestAuthentication()
        briefcase = case.signed_briefcase(pair_cluster, "alice",
                                          tamper=True)
        beta = pair_cluster.node("beta.test")
        collector(beta, "sink")
        driver = pair_cluster.node("alpha.test").driver(principal="alice")

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/sink"), briefcase)
        pair_cluster.run(scenario())
        metrics = pair_cluster.telemetry.metrics
        assert metrics.value("fw.auth", host="beta.test",
                             outcome="rejected") == 1
        assert metrics.value("fw.auth", host="beta.test",
                             outcome="verified") is None

    def test_successful_auth_increments_verified(self, pair_cluster):
        pair_cluster.telemetry.enable()
        case = TestAuthentication()
        briefcase = case.signed_briefcase(pair_cluster, "alice")
        beta = pair_cluster.node("beta.test")
        collector(beta, "sink")
        driver = pair_cluster.node("alpha.test").driver(principal="alice")

        def scenario():
            yield from driver.send(
                AgentUri.parse("tacoma://beta.test/sink"), briefcase)
        pair_cluster.run(scenario())
        metrics = pair_cluster.telemetry.metrics
        assert metrics.value("fw.auth", host="beta.test",
                             outcome="verified") == 1

    def test_delivery_and_per_agent_counters(self, single_cluster):
        single_cluster.telemetry.enable()
        node = single_cluster.node("solo.test")
        collector(node)
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("sink"),
                                   Briefcase({"X": ["1"]}))
        single_cluster.run(scenario())
        metrics = single_cluster.telemetry.metrics
        assert metrics.value("fw.delivered", host="solo.test") == 1
        assert metrics.value("agent.messages_in", agent="sink") == 1
        assert metrics.value("agent.messages_out", agent="driver") == 1

    def test_admin_stat_includes_agent_telemetry(self, single_cluster):
        single_cluster.telemetry.enable()
        node = single_cluster.node("solo.test")
        collector(node, "watched")
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("watched"), Briefcase())
        single_cluster.run(scenario())
        registration = node.firewall.registry.matches(
            AgentUri.parse("watched"), "system")[0]
        stat = TestAdminAgent().admin_call(
            single_cluster, "stat", {"instance": registration.instance})
        assert stat["telemetry"]["enabled"] is True
        assert stat["telemetry"]["messages_in"] == 1
        assert stat["telemetry"]["hops"] == 0

    def test_disabled_telemetry_records_nothing(self, single_cluster):
        node = single_cluster.node("solo.test")
        collector(node)
        driver = node.driver()

        def scenario():
            yield from driver.send(AgentUri.parse("sink"), Briefcase())
        single_cluster.run(scenario())
        assert single_cluster.telemetry.metrics.snapshot() == {}
        assert single_cluster.telemetry.tracer.spans == []


def sleeper_agent(ctx, bc):
    yield from ctx.sleep(10_000)
    return "overslept"
