"""Unit tests for principals, agent ids, and the Figure-2 URI grammar."""

import pytest

from repro.core.errors import IdentityError, UriSyntaxError
from repro.core.identity import (
    AgentId,
    InstanceAllocator,
    Principal,
    principal_name,
    validate_agent_name,
    validate_instance,
)
from repro.core.uri import AgentUri


class TestIdentity:
    def test_agent_name_allows_paper_examples(self):
        for name in ("vm_c", "ag_cron", "mwWebbot", "agent-1", "x.y"):
            assert validate_agent_name(name) == name

    def test_agent_name_rejects_garbage(self):
        for bad in ("", " space", "a/b", "a:b", None, "-lead"):
            with pytest.raises(IdentityError):
                validate_agent_name(bad)

    def test_instance_is_hex_lowercased(self):
        assert validate_instance("933821661") == "933821661"
        assert validate_instance("DEADBEEF") == "deadbeef"

    def test_instance_rejects_non_hex(self):
        for bad in ("", "xyz", "12 34", None):
            with pytest.raises(IdentityError):
                validate_instance(bad)

    def test_agent_id_str_and_parse(self):
        agent_id = AgentId("worker", "1f")
        assert str(agent_id) == "worker:1f"
        assert AgentId.parse("worker:1f") == agent_id

    def test_agent_id_parse_rejects_partial(self):
        for bad in ("worker", ":1f", "worker:", ""):
            with pytest.raises(IdentityError):
                AgentId.parse(bad)

    def test_allocator_unique_and_site_scoped(self):
        a = InstanceAllocator(site_ordinal=1)
        b = InstanceAllocator(site_ordinal=2)
        issued = {a.next_instance() for _ in range(10)}
        issued |= {b.next_instance() for _ in range(10)}
        assert len(issued) == 20

    def test_allocator_is_deterministic(self):
        assert InstanceAllocator(3).next_instance() == \
            InstanceAllocator(3).next_instance()

    def test_principal_validation(self):
        assert Principal("tacoma@cl2.cs.uit.no").name == \
            "tacoma@cl2.cs.uit.no"
        assert Principal("system").is_system
        with pytest.raises(IdentityError):
            Principal("bad principal!")

    def test_principal_name_coercion(self):
        assert principal_name(None) is None
        assert principal_name("user") == "user"
        assert principal_name(Principal("user")) == "user"
        with pytest.raises(IdentityError):
            principal_name(42)


class TestUriParsing:
    """The grammar of Figure 2, including the paper's own examples."""

    def test_paper_example_1_full_remote(self):
        uri = AgentUri.parse("tacoma://cl2.cs.uit.no:27017//vm_c:933821661")
        assert uri.host == "cl2.cs.uit.no"
        assert uri.port == 27017
        assert uri.principal is None  # the "//" empty-principal form
        assert uri.name == "vm_c"
        assert uri.instance == "933821661"

    def test_paper_example_2_principal_no_instance(self):
        uri = AgentUri.parse(
            "tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron")
        assert uri.host == "cl2.cs.uit.no"
        assert uri.port is None
        assert uri.principal == "tacoma@cl2.cs.uit.no"
        assert uri.name == "ag_cron"
        assert uri.instance is None

    def test_paper_example_3_local_instance_only(self):
        uri = AgentUri.parse("tacomaproject/:933821661")
        assert uri.host is None
        assert uri.principal == "tacomaproject"
        assert uri.name is None
        assert uri.instance == "933821661"

    def test_bare_name(self):
        uri = AgentUri.parse("ag_fs")
        assert (uri.host, uri.principal, uri.name, uri.instance) == \
            (None, None, "ag_fs", None)

    def test_bare_instance(self):
        uri = AgentUri.parse(":beef")
        assert uri.name is None and uri.instance == "beef"

    def test_name_and_instance(self):
        uri = AgentUri.parse("worker:2a")
        assert uri.name == "worker" and uri.instance == "2a"

    @pytest.mark.parametrize("text", [
        "",
        "tacoma:///agent",                 # empty host
        "tacoma://host",                   # missing '/' after host part
        "tacoma://host:notaport/agent",
        "tacoma://host/p/agent/extra",     # too many segments
        "tacoma://host/p/",                # missing agent id
        "worker:",                         # empty instance
        ":",                               # nothing at all
        "p/q/worker",                      # local with two segments
    ])
    def test_rejected_syntax(self, text):
        with pytest.raises(UriSyntaxError):
            AgentUri.parse(text)

    def test_round_trips(self):
        for text in (
                "tacoma://cl2.cs.uit.no:27017//vm_c:933821661",
                "tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron",
                "tacomaproject/:933821661",
                "ag_fs",
                "worker:2a",
                ":beef"):
            assert str(AgentUri.parse(text)) == text

    def test_construction_validation(self):
        with pytest.raises(UriSyntaxError):
            AgentUri()  # neither name nor instance
        with pytest.raises(UriSyntaxError):
            AgentUri(port=80, name="x")  # port without host
        with pytest.raises(UriSyntaxError):
            AgentUri(host="h", port=0, name="x")

    def test_instance_normalised_to_lowercase(self):
        assert AgentUri(name="x", instance="BEEF").instance == "beef"


class TestUriSemantics:
    def test_is_remote(self):
        assert AgentUri.parse("tacoma://h/x").is_remote
        assert not AgentUri.parse("x").is_remote

    def test_agent_id_property(self):
        assert AgentUri.parse("w:1f").agent_id == AgentId("w", "1f")
        assert AgentUri.parse("w").agent_id is None

    def test_at_and_local(self):
        uri = AgentUri.parse("w:1f").at("h", 27017)
        assert uri.host == "h" and uri.port == 27017
        back = uri.local()
        assert back.host is None and back.name == "w"

    def test_matching_name_only(self):
        pattern = AgentUri.parse("ag_fs")
        assert pattern.matches_agent("ag_fs", "1a", "system")
        assert not pattern.matches_agent("ag_exec", "1a", "system")

    def test_matching_instance_only(self):
        pattern = AgentUri.parse(":1a")
        assert pattern.matches_agent("whatever", "1a", "anyone")
        assert not pattern.matches_agent("whatever", "1b", "anyone")

    def test_matching_with_principal(self):
        pattern = AgentUri.parse("alice/w")
        assert pattern.matches_agent("w", "1", "alice")
        assert not pattern.matches_agent("w", "1", "bob")

    def test_specificity(self):
        assert AgentUri.parse("w").specificity == 1
        assert AgentUri.parse("alice/w:1f").specificity == 3

    def test_for_agent_helper(self):
        uri = AgentUri.for_agent("svc", host="h")
        assert str(uri) == "tacoma://h//svc"
