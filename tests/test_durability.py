"""The crash-durability subsystem: disk, journal, auditor, replay fold.

These are the unit layers under ``repro crashtest`` (see
``tests/test_crashtest.py`` for the end-to-end scenarios): the virtual
disk's fsync/crash semantics including the seeded storage faults, the
WAL framing and its torn-tail contract, segment compaction, the durable
roundtrips of the firewall's dedup/landing structures, the
agent-conservation auditor, and the pure journal fold
(:func:`repro.durability.recovery.replay_image`).
"""

import json

import pytest

from repro.durability.conservation import ConservationAuditor
from repro.durability.journal import (
    HostJournal,
    frame_record,
    iter_frames,
)
from repro.durability.recovery import QUEUE_COUNTERS, replay_image
from repro.durability.store import VirtualDisk
from repro.firewall.dedup import DedupWindow, LandingRegistry
from repro.sim.faults import FaultInjector, FaultPlan, StorageFaults


def storage_injector(**faults):
    plan = FaultPlan()
    plan.storage = StorageFaults(**faults)
    return FaultInjector(plan, seed_or_stream=7)


class TestVirtualDisk:
    def test_read_sees_unsynced_writes(self, kernel):
        disk = VirtualDisk(kernel, "h")
        disk.append("f", b"abc")
        assert disk.read("f") == b"abc"

    def test_crash_loses_unsynced_keeps_fsynced(self, kernel):
        disk = VirtualDisk(kernel, "h")
        disk.append("f", b"durable")
        disk.fsync("f")
        disk.append("f", b"volatile")
        damage = disk.crash()
        assert disk.read("f") == b"durable"
        assert damage == {"lost_writes": 1, "torn_tails": 0,
                          "lost_suffix_bytes": 0}

    def test_honest_fsync_is_instantly_durable(self, kernel):
        disk = VirtualDisk(kernel, "h")
        disk.append("f", b"x")
        disk.fsync("f")
        disk.crash()
        assert disk.read("f") == b"x"

    def test_slow_fsync_window_loses_acked_write(self, kernel):
        disk = VirtualDisk(kernel, "h", injector=storage_injector(
            slow_fsync_probability=1.0, slow_fsync_delay=0.5))
        disk.append("f", b"acked")
        disk.fsync("f")
        # Crash inside the device-cache window: the fsync lied.
        disk.crash()
        assert disk.read("f") == b""
        assert disk.lost_writes == 1

    def test_slow_fsync_settles_after_the_window(self, kernel):
        disk = VirtualDisk(kernel, "h", injector=storage_injector(
            slow_fsync_probability=1.0, slow_fsync_delay=0.5))
        disk.append("f", b"acked")
        disk.fsync("f")

        def proc():
            yield kernel.timeout(1.0)
        kernel.run_process(proc())
        disk.crash()
        assert disk.read("f") == b"acked"

    def test_torn_tail_keeps_partial_first_lost_write(self, kernel):
        disk = VirtualDisk(kernel, "h", injector=storage_injector(
            torn_tail_probability=1.0))
        disk.append("f", b"durable|")
        disk.fsync("f")
        disk.append("f", b"0123456789")
        disk.crash()
        content = disk.read("f")
        assert content.startswith(b"durable|")
        # A strict prefix of the torn write survived, never all of it.
        tail = content[len(b"durable|"):]
        assert b"0123456789".startswith(tail)
        assert tail != b"0123456789"
        assert disk.torn_tails == 1

    def test_lost_suffix_eats_durable_bytes(self, kernel):
        disk = VirtualDisk(kernel, "h", injector=storage_injector(
            lost_suffix_probability=1.0, lost_suffix_max_bytes=4))
        disk.append("f", b"0123456789")
        disk.fsync("f")
        disk.crash()
        content = disk.read("f")
        assert b"0123456789".startswith(content)
        assert len(content) < 10
        assert disk.lost_suffix_bytes == 10 - len(content)

    def test_crash_damage_is_seed_deterministic(self):
        from repro.sim.eventloop import Kernel

        def run():
            kernel = Kernel()
            disk = VirtualDisk(kernel, "h", injector=storage_injector(
                torn_tail_probability=0.5, lost_suffix_probability=0.5))
            for i in range(4):
                disk.append("f", bytes(range(32)))
                disk.fsync("f")
                disk.append("f", b"tail-tail-tail")
                disk.crash()
            return disk.read("f"), disk.stats()
        assert run() == run()

    def test_delete_and_files_listing(self, kernel):
        disk = VirtualDisk(kernel, "h")
        disk.append("b", b"1")
        disk.append("a", b"2")
        assert disk.files() == ["a", "b"]
        disk.delete("a")
        assert disk.files() == ["b"]
        assert not disk.exists("a")


class TestFraming:
    RECORDS = [{"kind": "one", "t": 0.0}, {"kind": "two", "n": 7},
               {"kind": "three", "deep": {"a": [1, 2]}}]

    def encoded(self):
        return b"".join(frame_record(r) for r in self.RECORDS)

    def test_roundtrip(self):
        records, torn = iter_frames(self.encoded())
        assert records == self.RECORDS
        assert torn is False

    def test_empty(self):
        assert iter_frames(b"") == ([], False)

    def test_every_truncation_is_a_clean_prefix(self):
        data = self.encoded()
        for cut in range(len(data)):
            records, torn = iter_frames(data[:cut])
            assert records == self.RECORDS[:len(records)]
            # Only whole-frame cuts are not torn.
            if torn is False:
                assert b"".join(frame_record(r) for r in records) == \
                    data[:cut]

    def test_crc_mismatch_stops_cleanly(self):
        data = bytearray(self.encoded())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        records, torn = iter_frames(bytes(data))
        assert records == self.RECORDS[:2]
        assert torn is True

    def test_giant_length_field_is_torn_not_alloc(self):
        bogus = (2 ** 31).to_bytes(4, "big") + b"\x00" * 8
        records, torn = iter_frames(frame_record({"kind": "ok"}) + bogus)
        assert records == [{"kind": "ok"}]
        assert torn is True


class TestHostJournal:
    def journal(self, kernel, snapshot_interval=1000):
        disk = VirtualDisk(kernel, "h")
        journal = HostJournal(disk, "h",
                              snapshot_interval=snapshot_interval)
        return disk, journal

    def test_records_fsynced_and_replayable(self, kernel):
        disk, journal = self.journal(kernel)
        journal.record("ping", n=1)
        journal.record("ping", n=2)
        disk.crash()  # nothing unsynced: the write-ahead barrier held
        records, torn, segment = journal.read_active()
        assert [r["n"] for r in records] == [1, 2]
        assert torn is False and segment == "segment-000000.wal"

    def test_suspend_drops_records(self, kernel):
        disk, journal = self.journal(kernel)
        journal.record("kept")
        journal.suspend()
        journal.record("dropped")
        journal.resume()
        records, _, _ = journal.read_active()
        assert [r["kind"] for r in records] == ["kept"]

    def test_compaction_switches_segment_with_snapshot_head(self, kernel):
        disk, journal = self.journal(kernel)
        journal.state_provider = lambda: {"marker": 42}
        journal.record("before")
        journal.compact()
        journal.record("after")
        records, torn, segment = journal.read_active()
        assert segment == "segment-000001.wal"
        assert [r["kind"] for r in records] == ["snapshot", "after"]
        assert records[0]["state"] == {"marker": 42}
        # The previous segment is retained as the fallback.
        assert disk.exists("segment-000000.wal")

    def test_compaction_deletes_older_than_previous(self, kernel):
        disk, journal = self.journal(kernel)
        journal.state_provider = lambda: {}
        journal.compact()
        journal.compact()
        assert not disk.exists("segment-000000.wal")
        assert disk.exists("segment-000001.wal")
        assert disk.exists("segment-000002.wal")

    def test_auto_compaction_at_interval(self, kernel):
        disk, journal = self.journal(kernel, snapshot_interval=3)
        journal.state_provider = lambda: {}
        for n in range(3):
            journal.record("r", n=n)
        assert journal.snapshots == 1
        assert journal.active_segment() == "segment-000001.wal"

    def test_lost_manifest_suffix_falls_back_one_segment(self, kernel):
        # The newest switch record dies with the crash: recovery must
        # land on the previous segment, which was retained for exactly
        # this case.
        disk = VirtualDisk(kernel, "h", injector=storage_injector(
            lost_suffix_probability=1.0, lost_suffix_max_bytes=4))
        journal = HostJournal(disk, "h")
        journal.state_provider = lambda: {"gen": journal.snapshots}
        journal.record("one")
        for _ in range(3):
            journal.record("pad")  # sacrificial tail bytes
        journal.compact()
        # Every file loses 1-4 durable tail bytes: the manifest's only
        # switch record tears, so recovery must fall back.
        disk.crash()
        records, torn, segment = journal.replay()
        assert segment == "segment-000000.wal"
        assert torn is True
        assert records[0]["kind"] == "one"
        assert all(r["kind"] == "pad" for r in records[1:])

    def test_replay_reanchors_segment_numbering(self, kernel):
        disk, journal = self.journal(kernel)
        journal.state_provider = lambda: {}
        journal.compact()
        restarted = HostJournal(disk, "h")
        restarted.state_provider = lambda: {}
        restarted.replay()
        restarted.compact()
        assert restarted.active_segment() == "segment-000002.wal"


class TestDurableRoundtrips:
    def test_dedup_window_roundtrip(self):
        window = DedupWindow(capacity=8)
        for seq in (1, 2, 2, 3, 100, 4):
            window.observe("peer.a", seq)
        window.observe("peer.b", 1)
        window.forget("peer.b", 1)
        clone = DedupWindow.from_durable(window.to_durable())
        assert clone.to_durable() == window.to_durable()
        assert clone.snapshot() == window.snapshot()
        # The clone keeps making identical decisions.
        assert clone.observe("peer.a", 100) == "duplicate"
        assert clone.observe("peer.a", 5) == "reject"  # below window

    def test_landing_registry_roundtrip(self):
        registry = LandingRegistry()
        registry.acquire("L1")
        registry.record_launch("L1", "tax://h/p/a:1")
        registry.tombstone("L2", "aborted")
        registry.acquire("L1")  # duplicate
        registry.acquire("L2")  # refusal
        clone = LandingRegistry.from_durable(registry.to_durable())
        assert clone.to_durable() == registry.to_durable()
        assert clone.acquire("L1") == ("launched", "tax://h/p/a:1")
        assert clone.acquire("L2") == ("tombstoned", "aborted")

    def test_pending_slots_are_volatile(self):
        registry = LandingRegistry()
        assert registry.acquire("L1") == ("new", None)
        clone = LandingRegistry.from_durable(registry.to_durable())
        # The in-flight slot did not survive: the origin's retry gets
        # a fresh claim instead of waiting on a slot nobody holds.
        assert clone.acquire("L1") == ("new", None)


class TestConservationAuditor:
    def test_completed_and_moved_are_terminal(self):
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "a", "p")
        auditor.spawned("h", "i2", "a", "p")
        auditor.ended("i1", "finished")
        auditor.ended("i2", "moved")
        report = auditor.report()
        assert report["holds"] is True
        assert report["buckets"] == {"completed": 1, "moved": 1}

    def test_crashed_instance_violates(self):
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "a", "p")
        auditor.crashed("i1", "h")
        assert auditor.holds() is False
        assert auditor.violations() == [
            {"instance": "i1", "name": "a", "principal": "p",
             "host": "h"}]

    def test_respawn_resolves_oldest_crashed_same_name(self):
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "a", "p")
        auditor.crashed("i1")
        auditor.spawned("h", "i2", "a", "p")  # the resurrection
        report = auditor.report()
        assert report["holds"] is True
        assert report["buckets"] == {"alive": 1, "relaunched": 1}

    def test_respawn_of_different_name_does_not_resolve(self):
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "a", "p")
        auditor.crashed("i1")
        auditor.spawned("h", "i2", "other", "p")
        assert auditor.holds() is False

    def test_dead_letter_resolves_departing_instance(self):
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "a", "p")
        auditor.departing("i1", "L1")
        auditor.crashed("i1")
        auditor.transport_dead_lettered("L1")
        assert auditor.report()["buckets"] == {"dead_lettered": 1}

    def test_failed_depart_clears_landing(self):
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "a", "p")
        auditor.departing("i1", "L1")
        auditor.depart_failed("i1")
        auditor.crashed("i1")
        auditor.transport_dead_lettered("L1")
        assert auditor.holds() is False  # the agent was home, and lost

    def test_system_principal_exempt(self):
        from repro.core.identity import SYSTEM_PRINCIPAL
        auditor = ConservationAuditor()
        auditor.spawned("h", "i1", "vm_python", SYSTEM_PRINCIPAL)
        assert auditor.report()["agents"] == 0


class TestReplayImage:
    def test_dedup_records_rebuild_identical_window(self):
        live = DedupWindow()
        records = []
        for peer, seq in (("a", 1), ("a", 2), ("a", 2), ("b", 1)):
            live.observe(peer, seq)
            records.append({"kind": "dedup-observe", "peer": peer,
                            "seq": seq})
        image = replay_image(records, False, "s", now=9.0)
        assert image.dedup.to_durable() == live.to_durable()

    def test_snapshot_seeds_then_records_extend(self):
        live = DedupWindow()
        live.observe("a", 1)
        records = [
            {"kind": "snapshot", "state": {"dedup": live.to_durable()}},
            {"kind": "dedup-observe", "peer": "a", "seq": 2},
        ]
        image = replay_image(records, False, "s", now=9.0)
        live.observe("a", 2)
        assert image.dedup.to_durable() == live.to_durable()

    def test_open_park_becomes_host_crash_dead_letter(self):
        records = [{"kind": "queue-park", "park": 1, "t": 1.0,
                    "landing": "L1"}]
        image = replay_image(records, False, "s", now=5.0)
        assert image.open_parks == {}
        assert len(image.dead) == 1
        assert image.dead[0]["reason"] == "host-crash"
        assert image.dead[0]["died_at"] == 5.0
        assert image.counters["crashed"] == 1

    def test_claimed_park_does_not_die(self):
        records = [{"kind": "queue-park", "park": 1, "t": 1.0},
                   {"kind": "queue-claim", "park": 1}]
        image = replay_image(records, False, "s", now=5.0)
        assert image.dead == []
        assert image.counters["claimed"] == 1

    def test_expired_park_counts_expired(self):
        records = [{"kind": "queue-park", "park": 1, "t": 1.0},
                   {"kind": "queue-dead-letter", "park": 1, "t": 2.0,
                    "reason": "expired"}]
        image = replay_image(records, False, "s", now=5.0)
        assert image.counters["expired"] == 1
        assert image.dead[0]["reason"] == "expired"

    def test_dead_letter_take_removes_from_ledger(self):
        records = [{"kind": "queue-park", "park": 1, "t": 1.0},
                   {"kind": "queue-dead-letter", "park": 1,
                    "reason": "expired"},
                   {"kind": "dead-letter-take", "park": 1}]
        image = replay_image(records, False, "s", now=5.0)
        assert image.dead == []

    def test_resident_survives_to_restoration(self):
        records = [{"kind": "agent-arrive", "instance": "i1",
                    "name": "a", "principal": "p", "vm": "vm",
                    "landing": "L1", "blob": ""}]
        image = replay_image(records, False, "s", now=5.0)
        assert sorted(image.table.residents) == ["i1"]
        assert image.ambiguous == []

    def test_unresolved_depart_intent_is_ambiguous(self):
        records = [{"kind": "agent-arrive", "instance": "i1",
                    "name": "a", "principal": "p", "vm": "vm",
                    "landing": "L1", "blob": ""},
                   {"kind": "depart-intent", "instance": "i1",
                    "landing": "L2"}]
        image = replay_image(records, False, "s", now=5.0)
        assert image.table.residents == {}
        assert image.ambiguous == ["i1"]

    def test_failed_depart_keeps_resident(self):
        records = [{"kind": "agent-arrive", "instance": "i1",
                    "name": "a", "principal": "p", "vm": "vm",
                    "landing": "L1", "blob": ""},
                   {"kind": "depart-intent", "instance": "i1",
                    "landing": "L2"},
                   {"kind": "depart-failed", "instance": "i1"}]
        image = replay_image(records, False, "s", now=5.0)
        assert sorted(image.table.residents) == ["i1"]

    def test_relaunch_supersede_retires_old_instance(self):
        arrive = {"kind": "agent-arrive", "name": "a", "principal": "p",
                  "vm": "vm", "blob": ""}
        records = [
            dict(arrive, instance="i1", landing="L1"),
            {"kind": "relaunch-intent", "instance": "i1",
             "landing": "L1"},
            dict(arrive, instance="i2", landing="L1"),
        ]
        image = replay_image(records, False, "s", now=5.0)
        assert sorted(image.table.residents) == ["i2"]

    def test_unknown_record_kinds_are_skipped(self):
        records = [{"kind": "from-the-future", "x": 1},
                   {"kind": "dedup-observe", "peer": "a", "seq": 1}]
        image = replay_image(records, False, "s", now=5.0)
        assert image.dedup.accepted == 1

    def test_restart_record_applies_interior_crash_boundary(self):
        records = [{"kind": "queue-park", "park": 1, "t": 1.0},
                   {"kind": "restart", "t": 2.0},
                   {"kind": "queue-park", "park": 2, "t": 3.0}]
        image = replay_image(records, False, "s", now=5.0)
        assert [d["died_at"] for d in image.dead] == [2.0, 5.0]
        assert image.restarts == 1

    def test_counters_start_from_queue_counter_names(self):
        image = replay_image([], False, "s", now=0.0)
        assert sorted(image.counters) == sorted(QUEUE_COUNTERS)

    def test_fold_is_pure_and_repeatable(self):
        records = [
            {"kind": "dedup-observe", "peer": "a", "seq": 1},
            {"kind": "queue-park", "park": 1, "t": 1.0},
            {"kind": "agent-arrive", "instance": "i1", "name": "a",
             "principal": "p", "vm": "vm", "landing": "L1", "blob": ""},
        ]

        def digest():
            image = replay_image([dict(r) for r in records], True, "s",
                                 now=7.0)
            return json.dumps({
                "dedup": image.dedup.to_durable(),
                "landings": image.landings.to_durable(),
                "residents": image.table.to_durable(),
                "counters": image.queue_counters(),
                "dead": image.dead,
            }, sort_keys=True)
        assert digest() == digest()
